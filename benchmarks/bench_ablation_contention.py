"""Ablation: the context-switch storm term (DESIGN.md section 4.2).

Zero the per-dispatch disturbance and the UMT collapse shrinks toward
the raw IKC round-trip overhead — showing the collapse is driven by
proxy-scheduling thrash, not by the offload hop itself.
"""

from dataclasses import replace

from repro.apps import UMT2013
from repro.cluster import simulate_app
from repro.config import OSConfig
from repro.params import default_params


def bench_ablation_context_switch(benchmark):
    def run():
        out = {}
        for switch_us in (0.0, 25.0, 75.0):
            params = default_params()
            params = params.with_overrides(
                ikc=replace(params.ikc,
                            context_switch_cost=switch_us * 1e-6))
            linux = simulate_app(UMT2013, 8, OSConfig.LINUX, params=params)
            mck = simulate_app(UMT2013, 8, OSConfig.MCKERNEL, params=params)
            out[switch_us] = mck.figure_of_merit / linux.figure_of_merit
        return out

    rel = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nUMT2013 @ 8 nodes, McKernel relative perf vs per-dispatch "
          "disturbance:")
    for us, value in rel.items():
        print(f"  switch={us:5.1f}us -> {100 * value:5.1f}% of Linux")
        benchmark.extra_info[f"switch_{int(us)}us"] = round(value, 3)
    assert rel[0.0] > 2.5 * rel[75.0]     # thrash is the dominant term
