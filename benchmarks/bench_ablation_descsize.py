"""Ablation: the SDMA descriptor-size mechanism (DESIGN.md section 4.1).

Cap the hardware's maximum SDMA request at PAGE_SIZE and the PicoDriver
loses its Figure 4 bandwidth advantage — isolating descriptor coalescing
as the cause of the large-message gain.
"""

from dataclasses import replace

from repro.apps.imb import PingPong
from repro.config import OSConfig
from repro.experiments import build_machine
from repro.params import default_params
from repro.units import MiB, PAGE_SIZE


def _bandwidth(params, config, size=4 * MiB):
    machine = build_machine(2, config, params=params)
    return PingPong(machine, repetitions=3).run([size])[size]


def bench_ablation_descriptor_size(benchmark):
    def run():
        base = default_params()
        capped = base.with_overrides(
            nic=replace(base.nic, sdma_max_request=PAGE_SIZE))
        return {
            "linux": _bandwidth(base, OSConfig.LINUX),
            "pico_10k": _bandwidth(base, OSConfig.MCKERNEL_HFI),
            "pico_4k": _bandwidth(capped, OSConfig.MCKERNEL_HFI),
        }

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    gain_10k = bw["pico_10k"] / bw["linux"]
    gain_4k = bw["pico_4k"] / bw["linux"]
    print(f"\n4MB ping-pong bandwidth (GB/s): linux={bw['linux'] / 1e9:.2f} "
          f"pico(10KB descs)={bw['pico_10k'] / 1e9:.2f} "
          f"pico(capped 4KB)={bw['pico_4k'] / 1e9:.2f}")
    print(f"HFI gain over Linux: {gain_10k:.3f} with 10KB descriptors, "
          f"{gain_4k:.3f} when capped at PAGE_SIZE")
    benchmark.extra_info["gain_10k"] = round(gain_10k, 3)
    benchmark.extra_info["gain_4k"] = round(gain_4k, 3)
    assert gain_10k > 1.08                 # the paper's mechanism
    assert gain_4k < gain_10k - 0.05       # vanishes without coalescing
