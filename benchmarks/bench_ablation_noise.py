"""Ablation: Linux residual noise (DESIGN.md section 4.4).

Silence the noise model and the McKernel advantage on synchronization-
heavy workloads (Nekbone; QBOX at scale) disappears — isolating noise
amplification as its cause.
"""

from dataclasses import replace

from repro.apps import NEKBONE, QBOX
from repro.cluster import simulate_app
from repro.config import OSConfig
from repro.params import default_params


def _quiet_params():
    params = default_params()
    return params.with_overrides(
        noise=replace(params.noise, tick_rate_hz=0.0, burst_rate_hz=0.0))


def _rel(spec, n, params):
    linux = simulate_app(spec, n, OSConfig.LINUX, params=params)
    mck = simulate_app(spec, n, OSConfig.MCKERNEL_HFI, params=params)
    return mck.figure_of_merit / linux.figure_of_merit


def bench_ablation_noise(benchmark):
    def run():
        noisy = default_params()
        quiet = _quiet_params()
        return {
            "nekbone_noisy": _rel(NEKBONE, 128, noisy),
            "nekbone_quiet": _rel(NEKBONE, 128, quiet),
            "qbox_noisy": _rel(QBOX, 256, noisy),
            "qbox_quiet": _rel(QBOX, 256, quiet),
        }

    rel = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nMcKernel+HFI relative performance, Linux noise on vs off:")
    print(f"  Nekbone @128 nodes: {100 * rel['nekbone_noisy']:.1f}% vs "
          f"{100 * rel['nekbone_quiet']:.1f}% (quiet)")
    print(f"  QBOX    @256 nodes: {100 * rel['qbox_noisy']:.1f}% vs "
          f"{100 * rel['qbox_quiet']:.1f}% (quiet)")
    for k, v in rel.items():
        benchmark.extra_info[k] = round(v, 3)
    assert rel["nekbone_noisy"] > rel["nekbone_quiet"]
    assert rel["qbox_noisy"] > rel["qbox_quiet"] + 0.05
