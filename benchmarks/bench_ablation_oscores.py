"""Ablation: OS-CPU pool size vs the UMT2013 collapse (DESIGN.md 4.2).

The offload bottleneck is the handful of Linux CPUs serving 32 ranks;
giving Linux more cores softens the collapse monotonically.
"""

from dataclasses import replace

from repro.apps import UMT2013
from repro.cluster import simulate_app
from repro.config import OSConfig
from repro.params import default_params


def bench_ablation_os_cores(benchmark):
    def run():
        out = {}
        for os_cores in (2, 4, 8, 16):
            params = default_params()
            params = params.with_overrides(
                node=replace(params.node, os_cores=os_cores))
            linux = simulate_app(UMT2013, 8, OSConfig.LINUX, params=params)
            mck = simulate_app(UMT2013, 8, OSConfig.MCKERNEL, params=params)
            out[os_cores] = mck.figure_of_merit / linux.figure_of_merit
        return out

    rel = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nUMT2013 @ 8 nodes, McKernel relative performance vs OS cores:")
    for cores, value in rel.items():
        print(f"  {cores:2d} Linux CPUs -> {100 * value:5.1f}% of Linux")
        benchmark.extra_info[f"os_cores_{cores}"] = round(value, 3)
    values = list(rel.values())
    assert values == sorted(values)        # monotone relief
    assert rel[16] > 2 * rel[2]            # and substantial