"""Derivation of the offload context-switch constant (DESIGN.md 4.2).

Runs the oversubscribed-core scheduling micro-model at increasing proxy
counts and compares the derived per-dispatch disturbance with the
calibrated ``IkcParams.context_switch_cost`` at the paper's operating
point (32 ranks on 4 OS CPUs = 8 proxies per core).
"""

from repro.linux.scheduler import derived_switch_cost
from repro.params import default_params


def bench_ablation_proxy_scheduling(benchmark):
    def run():
        return {n: derived_switch_cost(n) for n in (1, 2, 4, 8, 16, 32)}

    derived = benchmark.pedantic(run, rounds=1, iterations=1)
    params = default_params()
    calibrated = params.ikc.context_switch_cost * min(
        8.0 - 1.0, params.ikc.contention_cap)  # at depth 8 per CPU
    print("\nDerived per-dispatch disturbance vs proxies per OS core:")
    for n, cost in derived.items():
        print(f"  {n:3d} proxies/core -> {cost * 1e6:6.1f}us")
        benchmark.extra_info[f"proxies_{n}"] = round(cost * 1e6, 2)
    at_operating_point = derived[8]
    print(f"\nmacro model charges up to {calibrated * 1e6:.0f}us of queue-"
          f"visible disturbance at the paper's 8-proxies-per-core point")
    benchmark.extra_info["calibrated_us"] = round(
        params.ikc.context_switch_cost * 1e6, 1)
    # disturbance saturates once working sets fully evict each other
    assert derived[1] < 5e-6   # single proxy: only the initial cold switch
    assert derived[8] > 10 * derived[1] + 50e-6
    assert abs(derived[8] - derived[32]) < 20e-6
    # the calibrated constant is within the derived regime
    assert derived[4] < params.ikc.context_switch_cost * 2
