"""Ablation: the PSM rendezvous window size (DESIGN.md section 4).

Smaller windows mean more TID registrations and writev calls per
message; on McKernel each extra call is another offload, so shrinking
the window deepens the expected-receive penalty, while Linux is far less
sensitive.
"""

from dataclasses import replace

from repro.apps.imb import PingPong
from repro.config import OSConfig
from repro.experiments import build_machine
from repro.params import default_params
from repro.units import KiB, MiB


def bench_ablation_window_size(benchmark):
    def run():
        out = {}
        for window in (64 * KiB, 256 * KiB, 1 * MiB):
            params = default_params()
            params = params.with_overrides(
                psm=replace(params.psm, window_size=window))
            bw = {}
            for config in (OSConfig.LINUX, OSConfig.MCKERNEL):
                machine = build_machine(2, config, params=params)
                bw[config] = PingPong(machine, repetitions=3).run(
                    [4 * MiB])[4 * MiB]
            out[window] = bw[OSConfig.MCKERNEL] / bw[OSConfig.LINUX]
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n4MB ping-pong, McKernel/Linux bandwidth vs rendezvous window:")
    for window, ratio in ratios.items():
        print(f"  window={window // 1024:5d}KB -> {ratio:.3f}")
        benchmark.extra_info[f"window_{window // 1024}k"] = round(ratio, 3)
    # more windows -> more offloads -> relatively slower McKernel
    assert ratios[64 * KiB] < ratios[1 * MiB]
