"""Offload contention on the detailed simulator (paper section 4.3).

Measures the caller-visible latency of an offloaded TID_UPDATE as the
number of concurrently-issuing McKernel ranks grows past the 4 Linux
CPUs — the amplification that produces the UMT2013/HACC collapse — and
compares the macro model's closed form against the measurement.
"""

import pytest

from repro.experiments.contention import run_contention


def bench_contention_study(benchmark):
    result = benchmark.pedantic(run_contention, rounds=1, iterations=1)
    print()
    print(result.render())
    for n in result.rank_counts:
        benchmark.extra_info[f"ranks_{n}_us"] = round(
            result.measured[n] * 1e6, 2)
    assert result.amplification(32) > 100
    assert result.measured[4] == pytest.approx(result.measured[1],
                                               rel=0.05)
