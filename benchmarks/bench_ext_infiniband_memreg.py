"""Extension benchmark: InfiniBand memory registration (paper section 6
future work).

Registers and deregisters a 16MB region under each OS configuration and
reports the registration latency plus the MTT footprint: the PicoDriver
port avoids both the offload round-trip and per-page MTT programming.
"""

from repro.config import ALL_CONFIGS, OSConfig
from repro.core.mlx_pico import MlxMemRegPicoDriver
from repro.experiments import build_machine
from repro.linux.mlx import MLX_CMD_DEREG_MR, MLX_CMD_REG_MR, MlxDriver
from repro.units import MiB, fmt_time

SIZE = 16 * MiB


def _reg_latency(config):
    machine = build_machine(1, config)
    mlx = MlxDriver()
    machine.nodes[0].linux.load_driver(mlx)
    if config is OSConfig.MCKERNEL_HFI:
        machine.nodes[0].mckernel.register_picodriver(
            MlxMemRegPicoDriver(mlx))
    task = machine.spawn_rank(0, 0)
    out = {}

    def body():
        fd = yield from task.syscall("open", mlx.device_path)
        buf = yield from task.syscall("mmap", SIZE)
        t0 = machine.sim.now
        keys = yield from task.syscall("ioctl", fd, MLX_CMD_REG_MR,
                                       {"vaddr": buf, "length": SIZE})
        out["latency"] = machine.sim.now - t0
        out["mtt"] = mlx.mtt_entries_used
        yield from task.syscall("ioctl", fd, MLX_CMD_DEREG_MR,
                                {"lkey": keys["lkey"]})

    machine.sim.run(until=machine.sim.process(body()))
    return out


def bench_ext_infiniband_memreg(benchmark):
    results = benchmark.pedantic(
        lambda: {c: _reg_latency(c) for c in ALL_CONFIGS},
        rounds=1, iterations=1)
    print(f"\nreg_mr of {SIZE // MiB}MB:")
    for config, r in results.items():
        print(f"  {config.label:14s} latency={fmt_time(r['latency']):>8s}  "
              f"MTT entries={r['mtt']}")
        benchmark.extra_info[f"{config.value}_latency_us"] = round(
            r["latency"] * 1e6, 2)
        benchmark.extra_info[f"{config.value}_mtt"] = r["mtt"]
    lat = {c: results[c]["latency"] for c in ALL_CONFIGS}
    assert lat[OSConfig.MCKERNEL] > lat[OSConfig.LINUX]     # offload hurts
    assert lat[OSConfig.MCKERNEL_HFI] < lat[OSConfig.LINUX]  # pico wins
    assert (results[OSConfig.MCKERNEL_HFI]["mtt"]
            < 0.05 * results[OSConfig.LINUX]["mtt"])
