"""Extension benchmark: projection to 2,048 nodes / 65,536 ranks (paper
section 6: "plans to perform a much larger scale evaluation").

The qualitative story must persist at scale: UMT's McKernel collapse
stays collapsed, the HFI advantage holds or grows (noise amplification
strengthens the noise-free kernels' edge), and Nekbone's McKernel win
widens.
"""

from repro.config import OSConfig
from repro.experiments.scale_projection import run_projection


def bench_ext_scale_projection(benchmark):
    result = benchmark.pedantic(run_projection, rounds=1, iterations=1)
    print()
    print(result.render())
    umt_mck = result.series("UMT2013", OSConfig.MCKERNEL)
    umt_hfi = result.series("UMT2013", OSConfig.MCKERNEL_HFI)
    nek_mck = result.series("Nekbone", OSConfig.MCKERNEL)
    qbox_hfi = result.series("QBOX", OSConfig.MCKERNEL_HFI)
    benchmark.extra_info["umt_mck_2048"] = round(umt_mck[-1], 3)
    benchmark.extra_info["umt_hfi_2048"] = round(umt_hfi[-1], 3)
    benchmark.extra_info["qbox_hfi_2048"] = round(qbox_hfi[-1], 3)
    assert all(v < 0.25 for v in umt_mck)       # collapse persists
    assert all(v > 1.0 for v in umt_hfi)        # HFI advantage persists
    assert nek_mck[-1] > nek_mck[0]             # noise edge widens
    assert qbox_hfi[-1] > qbox_hfi[0]
