"""Figure 4: MPI ping-pong bandwidth, regenerated on the detailed DES.

Paper shape: parity below 64KB (PIO); McKernel ~90% of Linux above it;
McKernel+HFI above Linux, peaking ~+15% at 4MB.
"""

from repro.config import OSConfig
from repro.experiments import run_fig4
from repro.experiments.fig4 import DEFAULT_SIZES
from repro.units import MiB


def bench_fig4_pingpong(benchmark):
    result = benchmark.pedantic(run_fig4, kwargs={"sizes": DEFAULT_SIZES},
                                rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info["linux_4MB_MBps"] = round(
        result.series[OSConfig.LINUX][4 * MiB] / 1e6, 1)
    benchmark.extra_info["mck_over_linux_4MB"] = round(
        result.ratio(OSConfig.MCKERNEL, 4 * MiB), 3)
    benchmark.extra_info["hfi_over_linux_4MB"] = round(
        result.ratio(OSConfig.MCKERNEL_HFI, 4 * MiB), 3)
    assert result.ratio(OSConfig.MCKERNEL_HFI, 4 * MiB) > 1.05
