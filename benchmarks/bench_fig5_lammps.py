"""Figure 5a: LAMMPS weak scaling (64 ranks/node x 2 threads).

Paper shape: McKernel performs like Linux with or without the PicoDriver
— the driver introduces no regression on unaffected workloads.
"""

from repro.config import OSConfig
from repro.experiments import run_fig5a


def bench_fig5a_lammps(benchmark):
    result = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    print()
    print(result.render("Figure 5a: LAMMPS relative performance (%)"))
    for config in (OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI):
        series = result.series(config)
        benchmark.extra_info[f"{config.value}_min"] = round(min(series), 3)
        benchmark.extra_info[f"{config.value}_max"] = round(max(series), 3)
        assert all(0.94 < v < 1.08 for v in series)
