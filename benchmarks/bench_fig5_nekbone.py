"""Figure 5b: Nekbone weak scaling (32 ranks/node x 4 threads).

Paper shape: a small McKernel improvement from the start (noise-free
allreduces), preserved by the HFI PicoDriver.
"""

from repro.config import OSConfig
from repro.experiments import run_fig5b


def bench_fig5b_nekbone(benchmark):
    result = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    print()
    print(result.render("Figure 5b: Nekbone relative performance (%)"))
    mck = result.series(OSConfig.MCKERNEL)
    hfi = result.series(OSConfig.MCKERNEL_HFI)
    benchmark.extra_info["mckernel_max"] = round(max(mck), 3)
    benchmark.extra_info["hfi_max"] = round(max(hfi), 3)
    assert max(mck) > 1.0 and max(hfi) > 1.0
    assert all(v > 0.97 for v in mck + hfi)
