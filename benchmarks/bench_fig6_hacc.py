"""Figure 6b: HACC weak scaling.

Paper shape: parity on one node; the original McKernel averages ~71% of
Linux on multi-node runs; McKernel+HFI beats Linux.
"""

from repro.config import OSConfig
from repro.experiments import run_fig6b


def bench_fig6b_hacc(benchmark):
    result = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    print()
    print(result.render("Figure 6b: HACC relative performance (%)"))
    mck = result.relative[OSConfig.MCKERNEL]
    hfi = result.relative[OSConfig.MCKERNEL_HFI]
    multi = [mck[n] for n in result.node_counts if n > 1]
    avg = sum(multi) / len(multi)
    benchmark.extra_info["mck_multinode_avg"] = round(avg, 3)
    benchmark.extra_info["hfi_max"] = round(max(hfi.values()), 3)
    assert 0.93 < mck[1] < 1.10          # single-node parity
    assert 0.60 < avg < 0.85             # paper: 71% on average
    assert all(v > 1.0 for n, v in hfi.items() if n > 1)
