"""Figure 6a: UMT2013 weak scaling — the headline collapse.

Paper shape: parity on one node; the original McKernel collapses on
multi-node runs (driver-call offloading under 32-rank contention on 4
Linux CPUs); McKernel+HFI outperforms Linux.
"""

from repro.config import OSConfig
from repro.experiments import run_fig6a


def bench_fig6a_umt(benchmark):
    result = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    print()
    print(result.render("Figure 6a: UMT2013 relative performance (%)"))
    mck = result.relative[OSConfig.MCKERNEL]
    hfi = result.relative[OSConfig.MCKERNEL_HFI]
    benchmark.extra_info["mck_1node"] = round(mck[1], 3)
    benchmark.extra_info["mck_128nodes"] = round(mck[128], 3)
    benchmark.extra_info["hfi_128nodes"] = round(hfi[128], 3)
    assert 0.93 < mck[1] < 1.07          # single-node parity
    assert mck[128] < 0.25               # the collapse
    assert hfi[128] > 1.04               # PicoDriver beats Linux
