"""Figure 7: QBOX weak scaling (4+ nodes).

Paper shape: the original McKernel is not dramatically below Linux;
McKernel+HFI shows substantial speedups growing with scale (up to +30%
in the paper).
"""

from repro.config import OSConfig
from repro.experiments import run_fig7


def bench_fig7_qbox(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    print()
    print(result.render("Figure 7: QBOX relative performance (%)"))
    mck = result.relative[OSConfig.MCKERNEL]
    hfi = result.relative[OSConfig.MCKERNEL_HFI]
    benchmark.extra_info["mck_min"] = round(min(mck.values()), 3)
    benchmark.extra_info["hfi_256nodes"] = round(hfi[256], 3)
    assert min(mck.values()) > 0.6       # no UMT-style collapse
    assert hfi[256] > 1.10               # substantial speedup at scale
    assert hfi[256] > hfi[4]             # gains grow with node count
