"""Figure 8: UMT2013 kernel-level syscall breakdown (McKernel profiler).

Paper shape: ioctl()+writev() dominate the original McKernel's kernel
time (>70%); with the HFI PicoDriver they fall below 30% and total
kernel time collapses to a few percent of the original (paper: 7%).
"""

from repro.experiments import run_fig8


def bench_fig8_umt_syscalls(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    print()
    print(result.render("Figure 8"))
    mck, hfi = result.mckernel, result.mckernel_hfi
    driver_share_mck = mck.share("ioctl") + mck.share("writev")
    driver_share_hfi = hfi.share("ioctl") + hfi.share("writev")
    benchmark.extra_info["mck_ioctl_writev_share"] = round(driver_share_mck, 3)
    benchmark.extra_info["hfi_ioctl_writev_share"] = round(driver_share_hfi, 3)
    benchmark.extra_info["hfi_kernel_time_ratio"] = round(
        result.kernel_time_ratio, 3)
    assert driver_share_mck > 0.70
    assert driver_share_hfi < 0.30
    assert result.kernel_time_ratio < 0.15
