"""Figure 9: QBOX kernel-level syscall breakdown (McKernel profiler).

Paper shape: the same ioctl/writev reduction as UMT, but munmap()
dominates the remaining kernel time — the McKernel memory-management
cost the paper flags as future work.
"""

from repro.experiments import run_fig9


def bench_fig9_qbox_syscalls(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    print()
    print(result.render("Figure 9"))
    benchmark.extra_info["hfi_dominant_syscall"] = result.mckernel_hfi.dominant()
    benchmark.extra_info["hfi_munmap_share"] = round(
        result.mckernel_hfi.share("munmap"), 3)
    benchmark.extra_info["hfi_kernel_time_ratio"] = round(
        result.kernel_time_ratio, 3)
    assert result.mckernel_hfi.dominant() == "munmap"
    assert result.kernel_time_ratio < 0.8
