"""Porting-effort inventory (paper: <3K of ~50K driver SLOC ported).

Measures the LWK fast path's size against the Linux-resident stack it
cooperates with, and the claimed syscall surface (2 of 7 file operations,
3 of 13 ioctl commands).
"""

from repro.experiments import run_sloc


def bench_sloc_inventory(benchmark):
    result = benchmark.pedantic(run_sloc, rounds=1, iterations=1)
    print()
    print(result.render())
    benchmark.extra_info["pico_sloc"] = result.pico_sloc
    benchmark.extra_info["linux_stack_sloc"] = result.linux_stack_sloc
    benchmark.extra_info["fraction"] = round(result.sloc_fraction, 3)
    assert result.sloc_fraction < 0.5
    assert result.claimed_ioctls == 3
