"""Table 1: communication profiles of UMT2013, HACC and QBOX on 8 nodes.

Paper shapes: McKernel's MPI_Wait explodes on UMT/HACC; McKernel+HFI
spends less in Wait than Linux; MPI_Init is inflated on McKernel+HFI;
HACC's Linux profile is dominated by MPI_Cart_create.
"""

from repro.config import OSConfig
from repro.experiments import run_table1


def bench_table1_profiles(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(result.render())
    wait_l = result.time_in("UMT2013", OSConfig.LINUX, "Wait")
    wait_m = result.time_in("UMT2013", OSConfig.MCKERNEL, "Wait")
    wait_h = result.time_in("UMT2013", OSConfig.MCKERNEL_HFI, "Wait")
    benchmark.extra_info["umt_wait_linux_s"] = round(wait_l, 1)
    benchmark.extra_info["umt_wait_mckernel_s"] = round(wait_m, 1)
    benchmark.extra_info["umt_wait_hfi_s"] = round(wait_h, 1)
    assert wait_m > 4 * wait_l           # the order-of-magnitude blowup
    assert wait_h < wait_l               # HFI waits less than Linux
    assert (result.top("HACC", OSConfig.LINUX, 1)[0].call
            == "Cart_create")
