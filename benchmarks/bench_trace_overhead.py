"""Tracing overhead: Figure-4 wall clock with spans off versus on.

Two properties keep the observability layer honest:

* **Disabled is free of record-keeping** — with a collector *installed
  but not enabled* the PD011 gates must skip every emission, so the
  collector ends the run with zero spans and zero flows.
* **Enabled is bounded** — span emission is plain Python bookkeeping
  (no extra simulation events, no RNG draws), so the traced run must
  stay under a documented slowdown bound versus the untraced run.
"""

import time

from repro.config import TRACE, enable_tracing
from repro.experiments import run_fig4
from repro.obs import SpanCollector
from repro.units import KiB

#: sizes kept small: this benchmark times the harness, not the figure
SIZES = (16 * KiB, 256 * KiB)

#: documented bound: traced runs may cost at most this factor over
#: untraced ones (measured ~1.3-1.8x; the slack absorbs CI jitter).
#: Tightened from 3.0x after the engine's precomputed no-op dispatch
#: removed the per-event monitor branches from the untraced hot path.
MAX_SLOWDOWN = 2.5


def _fig4_seconds() -> float:
    """Best-of-two wall-clock seconds for one small fig4 regeneration."""
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        run_fig4(sizes=SIZES, repetitions=1)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_trace_overhead(benchmark):
    """Compare fig4 wall clock untraced vs traced; check both bounds."""
    # installed-but-disabled: the gates must keep the collector empty
    idle = SpanCollector()
    TRACE.collector = idle
    TRACE.enabled = False
    try:
        t_off = _fig4_seconds()
    finally:
        enable_tracing(None)
    assert idle.spans == [] and idle.flows == [], \
        "disabled run leaked span emissions past the TRACE gates"

    collector = SpanCollector()
    enable_tracing(collector)
    try:
        t_on = benchmark.pedantic(_fig4_seconds, rounds=1, iterations=1)
    finally:
        enable_tracing(None)
    assert collector.spans, "traced run recorded no spans"

    slowdown = t_on / t_off if t_off > 0 else 1.0
    print()
    print(f"fig4 {[s // KiB for s in SIZES]}KiB: untraced {t_off:.3f}s, "
          f"traced {t_on:.3f}s ({slowdown:.2f}x, "
          f"{len(collector.spans)} spans / {len(collector.flows)} flows)")
    benchmark.extra_info["untraced_s"] = round(t_off, 4)
    benchmark.extra_info["traced_s"] = round(t_on, 4)
    benchmark.extra_info["slowdown"] = round(slowdown, 3)
    benchmark.extra_info["spans"] = len(collector.spans)
    assert slowdown < MAX_SLOWDOWN, \
        f"tracing slowed fig4 by {slowdown:.2f}x (bound {MAX_SLOWDOWN}x)"
