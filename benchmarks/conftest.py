"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures and prints
the series it produces (run with ``pytest benchmarks/ --benchmark-only -s``
to see them; key numbers are also attached as ``extra_info`` on the
benchmark records).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time one deterministic regeneration (simulations are exact
    replays, so one round is meaningful)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _run
