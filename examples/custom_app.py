#!/usr/bin/env python
"""Evaluate your own application signature on both simulators.

Signatures are small declarative objects; the same spec runs through

* the **micro** backend — the full discrete-event stack (real PSM
  endpoints, real driver syscalls, real SDMA descriptors) at a small
  scale, and
* the **macro** backend — the closed-form cluster model at up to
  thousands of ranks,

so you can sanity-check a workload's OS sensitivity before writing any
MPI code.  Here: a made-up seismic stencil code with medium halos, a
pressure solve (allreduces) and periodic snapshot buffering.

Run:  python examples/custom_app.py
"""

from repro.apps import AppSpec, CollectivePhase, HaloExchange, MemChurn, run_micro
from repro.cluster import simulate_app
from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments import build_machine
from repro.units import KiB, MiB

SEISMIC = AppSpec(
    name="SeismicStencil",
    ranks_per_node=32,
    threads_per_rank=4,
    iterations=6,
    compute_seconds=20e-3,
    phases=(
        # 3D stencil halos: expected-receive sized -> driver involvement
        HaloExchange(neighbors=6, msg_bytes=256 * KiB),
        # pressure solve reductions
        CollectivePhase("allreduce", nbytes=8, count=2),
        # snapshot staging buffers
        MemChurn(mmaps=2, nbytes=4 * MiB),
    ),
    imbalance_cv=0.04,
    lwk_compute_factor=0.97,
)


def micro_check():
    """Scaled-down run through the full DES (2 nodes, 2 ranks/node)."""
    print("micro (detailed DES, 2 nodes x 2 ranks, scaled compute):")
    from dataclasses import replace
    tiny = replace(SEISMIC, ranks_per_node=2, iterations=2)
    for config in ALL_CONFIGS:
        machine = build_machine(2, config)
        runtime, stats = run_micro(machine, tiny, compute_scale=0.05)
        print(f"  {config.label:14s} runtime={runtime * 1e3:7.2f}ms  "
              f"Wait={stats.time_in('Wait') * 1e3:6.2f}ms  "
              f"Init={stats.time_in('Init') * 1e3:6.2f}ms")


def macro_sweep():
    print("\nmacro (cluster model), relative performance to Linux (%):")
    print(f"{'nodes':>6s} {'McKernel':>10s} {'McKernel+HFI':>13s}")
    for n in (1, 4, 16, 64, 256):
        res = {c: simulate_app(SEISMIC, n, c) for c in ALL_CONFIGS}
        linux = res[OSConfig.LINUX].figure_of_merit
        print(f"{n:6d} "
              f"{100 * res[OSConfig.MCKERNEL].figure_of_merit / linux:9.1f}% "
              f"{100 * res[OSConfig.MCKERNEL_HFI].figure_of_merit / linux:12.1f}%")
    print("\n256KB halos sit on the expected-receive path: this workload")
    print("would suffer on a plain multi-kernel and wants the PicoDriver.")


if __name__ == "__main__":
    micro_check()
    macro_sweep()
