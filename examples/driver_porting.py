#!/usr/bin/env python
"""The PicoDriver porting workflow, end to end (paper section 3).

Demonstrates, against the real simulated stack:

1. ``dwarf-extract-struct``: pull exactly the fields the fast path needs
   out of the driver binary's DWARF — including the paper's Listing 1
   (``sdma_state``) — and emit the generated padded header;
2. layout drift across driver releases: a hand-copied header silently
   reads garbage after an update, the extracted layout does not;
3. the attach-time safety checks: a PicoDriver refuses to attach without
   a unified kernel address space (section 3.1) or with layouts extracted
   from the wrong driver version (section 3.2);
4. cross-kernel cooperation: McKernel reading/writing live Linux driver
   structures through the extracted offsets.

Run:  python examples/driver_porting.py
"""

from repro.config import OSConfig
from repro.core import (HFIPicoDriver, StructView, dwarf_extract_struct,
                        generate_header)
from repro.core.hfi_pico import EXTRACTION_MANIFEST
from repro.errors import DriverError, LayoutError
from repro.experiments import build_machine
from repro.linux.hfi1.debuginfo import build_module, struct_defs
from repro.hw import SharedHeap


def step1_extract():
    print("=" * 70)
    print("1. dwarf-extract-struct on the shipped hfi1 module (v1.0.0)")
    print("=" * 70)
    binary = build_module("1.0.0")
    layout = dwarf_extract_struct(
        binary, "sdma_state",
        ["current_state", "go_s99_running", "previous_state"])
    print(generate_header(layout))
    print(f"\n(offsets {', '.join(str(f.offset) for f in layout.fields)} — "
          f"the paper's Listing 1)")


def step2_version_drift():
    print("\n" + "=" * 70)
    print("2. Driver update: hand-copied header vs DWARF extraction")
    print("=" * 70)
    heap = SharedHeap(4096, base=0)
    # the *new* driver writes a field using its own (v1.1.1) layout
    from repro.core.structs import StructInstance
    new_defs = struct_defs("1.1.1")
    state = StructInstance(new_defs["sdma_state"], heap)
    state.set("go_s99_running", 1)

    stale = dwarf_extract_struct(build_module("1.0.0"), "sdma_state",
                                 ["go_s99_running"])
    fresh = dwarf_extract_struct(build_module("1.1.1"), "sdma_state",
                                 ["go_s99_running"])
    print(f"driver (v1.1.1) wrote go_s99_running = 1")
    print(f"  stale v1.0.0 header reads: "
          f"{StructView(stale, heap, state.addr).get('go_s99_running')}"
          f"   <- silent corruption")
    print(f"  fresh extraction reads:    "
          f"{StructView(fresh, heap, state.addr).get('go_s99_running')}"
          f"   <- correct")


def step3_attach_checks():
    print("\n" + "=" * 70)
    print("3. Attach-time verification")
    print("=" * 70)
    # (a) original (non-unified) address-space layout is refused
    machine = build_machine(1, OSConfig.MCKERNEL)  # original layout
    pico = HFIPicoDriver(machine.nodes[0].driver)
    try:
        machine.nodes[0].mckernel.register_picodriver(pico)
    except LayoutError as exc:
        print(f"non-unified address space  -> LayoutError: {exc}")
    # (b) stale extraction source is refused
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    mck = machine.nodes[0].mckernel
    mck.pico.unregister("/dev/hfi1_0")
    pico = HFIPicoDriver(machine.nodes[0].driver)
    pico.module = build_module("1.1.1")   # wrong release
    try:
        mck.register_picodriver(pico)
    except DriverError as exc:
        print(f"stale DWARF source         -> DriverError: {exc}")


def step4_cross_kernel():
    print("\n" + "=" * 70)
    print("4. Cross-kernel structure access on a live machine")
    print("=" * 70)
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    pico = machine.nodes[0].pico
    driver = machine.nodes[0].driver
    print(f"extraction manifest: "
          f"{ {k: len(v) for k, v in EXTRACTION_MANIFEST.items()} } "
          f"fields only")
    engine0 = driver.engine_states[0]
    view = pico._view("sdma_state", engine0.addr)
    print(f"McKernel reads Linux sdma_state[0].current_state = "
          f"{view.get('current_state')} (S99_RUNNING), "
          f"go_s99_running = {view.get('go_s99_running')}")
    print("...through offsets recovered from DWARF, over shared kernel")
    print("memory made mutually addressable by the unified VA layout.")


if __name__ == "__main__":
    step1_extract()
    step2_version_drift()
    step3_attach_checks()
    step4_cross_kernel()
