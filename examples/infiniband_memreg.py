#!/usr/bin/env python
"""Extending PicoDriver to a second device: InfiniBand memory registration.

The paper closes with: "we intend to further extend this work by porting
memory registration routines from the Mellanox Infiniband driver"
(section 6).  This example does that port on the simulated stack and
shows the framework's generality claims hold:

* the unmodified mlx5 verbs driver keeps serving the whole command
  surface; the LWK fast path claims only REG_MR/DEREG_MR (2 of 9);
* structure layouts again come from DWARF extraction of the module;
* McKernel's pinned, physically contiguous memory collapses the MTT
  footprint from one entry per 4KB page to one per span.

Run:  python examples/infiniband_memreg.py
"""

from repro.config import ALL_CONFIGS, OSConfig
from repro.core.mlx_pico import MlxMemRegPicoDriver
from repro.experiments import build_machine
from repro.linux.mlx import (ALL_VERB_COMMANDS, MEMREG_COMMANDS,
                             MLX_CMD_DEREG_MR, MLX_CMD_REG_MR, MlxDriver)
from repro.units import MiB, fmt_time

SIZE = 16 * MiB


def register_region(config):
    machine = build_machine(1, config)
    mlx = MlxDriver()
    machine.nodes[0].linux.load_driver(mlx)
    if config is OSConfig.MCKERNEL_HFI:
        machine.nodes[0].mckernel.register_picodriver(
            MlxMemRegPicoDriver(mlx))
    task = machine.spawn_rank(0, 0)
    out = {}

    def body():
        fd = yield from task.syscall("open", mlx.device_path)
        buf = yield from task.syscall("mmap", SIZE)
        t0 = machine.sim.now
        keys = yield from task.syscall("ioctl", fd, MLX_CMD_REG_MR,
                                       {"vaddr": buf, "length": SIZE})
        out["reg"] = machine.sim.now - t0
        out["mtt"] = mlx.mtt_entries_used
        t0 = machine.sim.now
        yield from task.syscall("ioctl", fd, MLX_CMD_DEREG_MR,
                                {"lkey": keys["lkey"]})
        out["dereg"] = machine.sim.now - t0

    machine.sim.run(until=machine.sim.process(body()))
    return out


def main():
    print(f"ibv_reg_mr() of a {SIZE // MiB}MB buffer "
          f"(fast path claims {len(MEMREG_COMMANDS)} of "
          f"{len(ALL_VERB_COMMANDS)} verbs commands)\n")
    print(f"{'configuration':16s} {'reg_mr':>10s} {'dereg_mr':>10s} "
          f"{'MTT entries':>12s}")
    for config in ALL_CONFIGS:
        r = register_region(config)
        print(f"{config.label:16s} {fmt_time(r['reg']):>10s} "
              f"{fmt_time(r['dereg']):>10s} {r['mtt']:12d}")
    print("\nLinux pins and programs one MTT entry per 4KB page; offloading")
    print("adds the IKC round trip on top.  The LWK fast path walks pinned")
    print("page tables and programs one entry per contiguous span — for a")
    print("fully contiguous 16MB region, a single entry.")


if __name__ == "__main__":
    main()
