#!/usr/bin/env python
"""Quickstart: a two-node OmniPath cluster under three operating systems.

Builds the full simulated stack (KNL nodes, HFI NICs, Linux + HFI1 driver,
and for the multi-kernel configurations IHK/McKernel with or without the
HFI PicoDriver), sends one 4MB MPI-style message, and shows where the
performance difference comes from: the SDMA descriptor sizes each driver
submits to the hardware.

Run:  python examples/quickstart.py
"""

from repro.config import ALL_CONFIGS
from repro.experiments import build_machine
from repro.psm import Endpoint, TagMatcher
from repro.units import MiB, fmt_time

SIZE = 4 * MiB


def transfer(machine):
    """One rendezvous transfer between rank 0 (node 0) and rank 1 (node 1).

    Returns (elapsed seconds, mean SDMA descriptor bytes).
    """
    sim = machine.sim
    sender_task = machine.spawn_rank(0, 0, 0)
    receiver_task = machine.spawn_rank(1, 0, 1)
    sender = Endpoint(sim, machine.params, machine.nodes[0].node.hfi,
                      sender_task, tracer=machine.tracer)
    receiver = Endpoint(sim, machine.params, machine.nodes[1].node.hfi,
                        receiver_task, tracer=machine.tracer)
    done = {}

    def rx():
        yield from receiver.open()
        buf = yield from receiver_task.syscall("mmap", SIZE)
        req = receiver.mq_irecv(TagMatcher(tag="quickstart"), (buf, SIZE))
        got = yield req.event
        done["received"] = got.nbytes

    def tx():
        yield from sender.open()
        buf = yield from sender_task.syscall("mmap", SIZE)
        while receiver.addr is None:
            yield sim.timeout(1e-6)
        t0 = sim.now
        yield from sender.mq_send(receiver.addr, "quickstart", buf, SIZE)
        done["elapsed"] = sim.now - t0

    p_rx = sim.process(rx())
    sim.process(tx())
    sim.run(until=p_rx)
    sim.run()
    assert done["received"] == SIZE
    return done["elapsed"], machine.tracer.get_mean("hfi.sdma_desc_bytes")


def main():
    print(f"Sending one {SIZE // MiB}MB message node 0 -> node 1\n")
    print(f"{'configuration':16s} {'elapsed':>10s} {'bandwidth':>12s} "
          f"{'mean SDMA descriptor':>22s}")
    baseline = None
    for config in ALL_CONFIGS:
        machine = build_machine(2, config)
        elapsed, desc = transfer(machine)
        bw = SIZE / elapsed / 1e9
        if baseline is None:
            baseline = elapsed
        print(f"{config.label:16s} {fmt_time(elapsed):>10s} "
              f"{bw:9.2f}GB/s {desc:18.0f}B "
              f"({elapsed / baseline * 100:.0f}% of Linux time)")
    print("\nThe Linux HFI1 driver chops every transfer into 4KB SDMA")
    print("requests (it cannot assume physical contiguity); offloading those")
    print("syscalls over IKC makes McKernel slower still.  The HFI")
    print("PicoDriver walks McKernel's pinned, contiguous page tables and")
    print("submits 10KB requests from the LWK core - no offload, fewer")
    print("descriptors, higher bandwidth (the paper's Figure 4).")


if __name__ == "__main__":
    main()
