#!/usr/bin/env python
"""Anatomy of the UMT2013 collapse (paper Figure 6a + Table 1 + Figure 8).

UMT2013's transport sweeps chain expected-receive messages: every hop
costs a writev (sender) plus TID registration ioctls (receiver).  On the
original McKernel all of those offload to the node's 4 Linux CPUs while
32 ranks hammer them — queueing and context-switch storms inflate every
call, and the dependency chain puts that latency straight on the critical
path.  The HFI PicoDriver runs the same calls locally on the LWK cores.

This example reproduces the collapse at increasing node counts and digs
into *why* with the communication profile and the kernel-time breakdown.

Run:  python examples/umt_collapse.py
"""

from repro.apps import UMT2013
from repro.cluster import simulate_app
from repro.config import ALL_CONFIGS, OSConfig
from repro.profiling.kernel_profiler import profile_from_mapping


def scaling_story():
    print("UMT2013 weak scaling: relative performance to Linux (%)")
    print(f"{'nodes':>6s} {'McKernel':>10s} {'McKernel+HFI':>13s}")
    for n in (1, 2, 8, 32, 128):
        res = {c: simulate_app(UMT2013, n, c) for c in ALL_CONFIGS}
        linux = res[OSConfig.LINUX].figure_of_merit
        print(f"{n:6d} "
              f"{100 * res[OSConfig.MCKERNEL].figure_of_merit / linux:9.1f}% "
              f"{100 * res[OSConfig.MCKERNEL_HFI].figure_of_merit / linux:12.1f}%")
    print("\nOne node is fine (intra-node messages use shared memory, no")
    print("driver); adding a second node routes the sweep through the NIC")
    print("driver and the offloaded-syscall contention takes over.\n")


def where_the_time_goes():
    print("Communication profile on 8 nodes (cumulative seconds over all "
          "256 ranks):")
    for config in ALL_CONFIGS:
        res = simulate_app(UMT2013, 8, config)
        rows = res.top_calls(3)
        cells = ", ".join(f"MPI_{r.call}={r.time:.0f}s ({r.pct_runtime:.0f}%Rt)"
                          for r in rows)
        print(f"  {config.label:14s} {cells}")
    print("\nMcKernel's time moves into MPI_Wait — the asynchronous")
    print("transfers whose driver calls are stuck behind the offload queue")
    print("(the bolded row of the paper's Table 1).\n")


def kernel_view():
    print("Kernel time by system call on 8 nodes (the paper's Figure 8):")
    for config in (OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI):
        res = simulate_app(UMT2013, 8, config)
        profile = profile_from_mapping(res.syscall_time)
        top = list(profile.shares().items())[:3]
        cells = ", ".join(f"{name}()={100 * share:.0f}%"
                          for name, share in top)
        print(f"  {config.label:14s} total={profile.total:8.1f}s   {cells}")
    mck = simulate_app(UMT2013, 8, OSConfig.MCKERNEL)
    hfi = simulate_app(UMT2013, 8, OSConfig.MCKERNEL_HFI)
    ratio = hfi.total_kernel_time / mck.total_kernel_time
    print(f"\nWith the PicoDriver the kernel time shrinks to "
          f"{100 * ratio:.0f}% of the original (paper: 7%), and the")
    print("residual is administrative (open/mmap at init), not fast-path.")


if __name__ == "__main__":
    scaling_story()
    where_the_time_goes()
    kernel_view()
