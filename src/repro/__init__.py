"""PicoDriver (HPDC'18) reproduction.

A simulation-based rebuild of *PicoDriver: Fast-path Device Drivers for
Multi-kernel Operating Systems* (Gerofi, Santogidis, Martinet, Ishikawa):
the IHK/McKernel multi-kernel, the Intel OmniPath software stack, the
PicoDriver framework and the paper's entire evaluation, as executable
models.  See README.md for a tour and DESIGN.md for the inventory.

Most users want:

* :func:`repro.experiments.build_machine` — assemble a simulated cluster
  under one of the three OS configurations and drive it through the
  detailed discrete-event stack;
* :func:`repro.cluster.simulate_app` — evaluate a CORAL application
  signature at up to 256 nodes with the calibrated macro model;
* :mod:`repro.experiments` — regenerate any of the paper's tables and
  figures (also ``python -m repro <fig4|...|table1|sloc|all>``).
"""

from .config import ALL_CONFIGS, OSConfig
from .params import Params, default_params

__version__ = "1.0.0"
__paper__ = ("PicoDriver: Fast-path Device Drivers for Multi-kernel "
             "Operating Systems, HPDC'18")

__all__ = ["ALL_CONFIGS", "OSConfig", "Params", "default_params",
           "__paper__", "__version__"]
