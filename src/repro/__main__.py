"""Command line entry: regenerate any of the paper's tables and figures.

    python -m repro fig4          # ping-pong bandwidth (detailed DES)
    python -m repro fig5 ... fig9
    python -m repro table1
    python -m repro sloc
    python -m repro all
    python -m repro lint          # PicoDriver protocol lint (PD001...)
    python -m repro sanitize fig4 # re-run with the KSan race detector
    python -m repro lockdep fig4  # re-run with the deadlock validator
    python -m repro lockgraph     # static lock-class graph (--dot)
    python -m repro vet           # whole-program effect analysis (PD015...)
    python -m repro vet --crosscheck fig4    # dynamic ⊆ static gate
    python -m repro chaos         # fault-injection sweep (--smoke for CI)
    python -m repro chaos --flap  # PicoGuard flap campaign (failover/failback)
    python -m repro trace fig4    # causal tracing (--out/--breakdown/--smoke)
    python -m repro check pingpong --smoke   # bounded model checker
    python -m repro check --replay a.sched   # replay a counterexample
    python -m repro tune pingpong --smoke    # design-space exploration
"""

from __future__ import annotations

import sys

from .experiments import (run_fig4, run_fig5a, run_fig5b, run_fig6a,
                          run_fig6b, run_fig7, run_fig8, run_fig9,
                          run_sloc, run_table1)


def _fig4() -> str:
    return run_fig4().render()


def _fig5() -> str:
    return (run_fig5a().render("Figure 5a: LAMMPS relative performance (%)")
            + "\n\n"
            + run_fig5b().render("Figure 5b: Nekbone relative performance (%)"))


def _fig6() -> str:
    return (run_fig6a().render("Figure 6a: UMT2013 relative performance (%)")
            + "\n\n"
            + run_fig6b().render("Figure 6b: HACC relative performance (%)"))


def _fig7() -> str:
    return run_fig7().render("Figure 7: QBOX relative performance (%)")


def _fig8() -> str:
    return run_fig8().render("Figure 8")


def _fig9() -> str:
    return run_fig9().render("Figure 9")


def _table1() -> str:
    return run_table1().render()


def _sloc() -> str:
    return run_sloc().render()


def _report() -> str:
    from .experiments.report import generate_report
    return generate_report()


def _contention() -> str:
    from .experiments.contention import run_contention
    return run_contention().render()


def _projection() -> str:
    from .experiments.scale_projection import run_projection
    return run_projection().render()


COMMANDS = {
    "fig4": _fig4, "fig5": _fig5, "fig6": _fig6, "fig7": _fig7,
    "fig8": _fig8, "fig9": _fig9, "table1": _table1, "sloc": _sloc,
    "contention": _contention, "projection": _projection,
    "report": _report,
}


def _dwarf_extract(argv) -> int:
    """``python -m repro dwarf <module>[:version] <struct> <field>...``

    The dwarf-extract-struct tool over the simulated module binaries
    (modules: hfi1, mlx5_ib).  Prints the generated padded header.
    """
    if len(argv) < 2:
        print("usage: python -m repro dwarf <module>[:version] "
              "<struct> <field>...")
        return 2
    from .core.extract import dwarf_extract_struct, generate_header
    module, _, version = argv[0].partition(":")
    if module == "hfi1":
        from .linux.hfi1.debuginfo import CURRENT_VERSION, build_module
    elif module == "mlx5_ib":
        from .linux.mlx.debuginfo import CURRENT_VERSION, build_module
    else:
        print(f"unknown module {module!r} (try hfi1 or mlx5_ib)")
        return 2
    binary = build_module(version or CURRENT_VERSION)
    layout = dwarf_extract_struct(binary, argv[1], list(argv[2:]))
    print(f"/* extracted from {binary.name} v{binary.version} */")
    print(generate_header(layout))
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("commands:", ", ".join([*COMMANDS, "all", "dwarf", "lint",
                                      "sanitize", "lockdep", "lockgraph",
                                      "vet", "chaos", "trace", "check",
                                      "tune"]))
        return 0
    name = argv[0]
    if name == "dwarf":
        return _dwarf_extract(argv[1:])
    if name == "lint":
        from .analysis.cli import cmd_lint
        return cmd_lint(argv[1:])
    if name == "sanitize":
        from .analysis.cli import cmd_sanitize
        return cmd_sanitize(argv[1:], COMMANDS)
    if name == "lockdep":
        from .analysis.cli import cmd_lockdep
        return cmd_lockdep(argv[1:], COMMANDS)
    if name == "lockgraph":
        from .analysis.cli import cmd_lockgraph
        return cmd_lockgraph(argv[1:])
    if name == "vet":
        from .analysis.vet import cmd_vet
        return cmd_vet(argv[1:], COMMANDS)
    if name == "chaos":
        from .experiments.chaos import cmd_chaos
        return cmd_chaos(argv[1:])
    if name == "trace":
        from .obs.cli import cmd_trace
        return cmd_trace(argv[1:])
    if name == "check":
        from .analysis.check import cmd_check
        return cmd_check(argv[1:])
    if name == "tune":
        from .tune.cli import cmd_tune
        return cmd_tune(argv[1:])
    if name == "all":
        for key, fn in COMMANDS.items():
            if key == "report":
                continue  # the report re-runs everything; request it alone
            print(f"\n{'=' * 70}\n{key}\n{'=' * 70}")
            print(fn())
        return 0
    if name not in COMMANDS:
        print(f"unknown command {name!r}; choose from "
              f"{', '.join([*COMMANDS, 'all'])}")
        return 2
    print(COMMANDS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
