"""Analysis & sanitizers: tooling that keeps the model honest.

Two cooperating layers guard the paper's central hazard — two kernels
concurrently mutating the same Linux driver state (section 3.3):

* :mod:`repro.analysis.ksan` — "KSan", a dynamic Eraser-style lockset
  race detector.  When enabled (``repro.config.ANALYSIS.race_detection``
  or ``python -m repro sanitize``) every :class:`~repro.hw.memory.SharedHeap`
  access is reported with its kernel, struct/field label and the set of
  :class:`~repro.core.sync.CrossKernelSpinLock` s held; any word written
  by both kernels whose candidate lockset goes empty is reported with
  full provenance (both access sites, sim time, lock holder history).

* :mod:`repro.analysis.lint` — a static AST lint pass
  (``python -m repro lint``, stdlib ``ast`` only) enforcing the
  PicoDriver protocol: fast-path purity, lock discipline, sim-process
  hygiene, layout-version guards and raw-heap-access confinement
  (rules PD001...PD009 + PD100, per-line ``# pd-ignore`` suppression).

* :mod:`repro.analysis.lockdep` — "PicoLockdep", cross-kernel
  lock-order analysis.  A runtime validator
  (``repro.config.ANALYSIS.lockdep`` or ``python -m repro lockdep``)
  builds the observed lock-class dependency graph and reports order
  cycles, declared-hierarchy violations, IRQ inversions and timed
  waits inside critical sections; a static ``ast`` twin
  (``python -m repro lockgraph``, lint rules PD008/PD009) extracts the
  compile-time graph the dynamic edges are checked against.
"""

from .ksan import (ACTIVE_DETECTORS, HeapAccess, RaceDetector, RaceReport,
                   active_race_reports, reset_active_detectors)
from .lint import Finding, RULES, lint_paths, lint_source
from .lockdep import (ACTIVE_VALIDATORS, LockdepReport, LockdepValidator,
                      LockGraph, active_lockdep_reports,
                      build_static_lock_graph, reset_active_validators)

__all__ = [
    "ACTIVE_DETECTORS", "ACTIVE_VALIDATORS", "Finding", "HeapAccess",
    "LockGraph", "LockdepReport", "LockdepValidator", "RULES",
    "RaceDetector", "RaceReport", "active_lockdep_reports",
    "active_race_reports", "build_static_lock_graph", "lint_paths",
    "lint_source", "reset_active_detectors", "reset_active_validators",
]
