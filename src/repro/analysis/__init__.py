"""Analysis & sanitizers: tooling that keeps the model honest.

Two cooperating layers guard the paper's central hazard — two kernels
concurrently mutating the same Linux driver state (section 3.3):

* :mod:`repro.analysis.ksan` — "KSan", a dynamic Eraser-style lockset
  race detector.  When enabled (``repro.config.ANALYSIS.race_detection``
  or ``python -m repro sanitize``) every :class:`~repro.hw.memory.SharedHeap`
  access is reported with its kernel, struct/field label and the set of
  :class:`~repro.core.sync.CrossKernelSpinLock` s held; any word written
  by both kernels whose candidate lockset goes empty is reported with
  full provenance (both access sites, sim time, lock holder history).

* :mod:`repro.analysis.lint` — a static AST lint pass
  (``python -m repro lint``, stdlib ``ast`` only) enforcing the
  PicoDriver protocol: fast-path purity, lock discipline, sim-process
  hygiene, layout-version guards and raw-heap-access confinement
  (rules PD001...PD006, per-line ``# pd-ignore`` suppression).
"""

from .ksan import (ACTIVE_DETECTORS, HeapAccess, RaceDetector, RaceReport,
                   active_race_reports, reset_active_detectors)
from .lint import Finding, RULES, lint_paths, lint_source

__all__ = [
    "ACTIVE_DETECTORS", "Finding", "HeapAccess", "RULES", "RaceDetector",
    "RaceReport", "active_race_reports", "lint_paths", "lint_source",
    "reset_active_detectors",
]
