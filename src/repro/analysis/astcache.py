"""Single-parse AST cache shared by the static-analysis tools.

``lint``, ``lockgraph`` and ``vet`` all walk the same source tree, and
before this cache existed each of them opened and ``ast.parse``d every
file on its own — a lint run that also builds the static lock graph
parsed the tree twice, and a ``vet --crosscheck`` run three times.  The
cache keys on ``(mtime_ns, size)`` so an editor save invalidates exactly
the file it touched, and one process-wide instance is enough: the tools
run in the same interpreter, and the analyses only ever *read* the
trees.

Parse failures are cached too (as the :class:`SyntaxError`), so a broken
file costs one parse attempt per invocation rather than one per tool.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class ParsedModule:
    """One source file, read and parsed exactly once."""

    path: str
    source: str
    tree: Optional[ast.Module]
    error: Optional[SyntaxError]

    @property
    def ok(self) -> bool:
        return self.tree is not None


#: path -> ((mtime_ns, size), parsed module)
_CACHE: Dict[str, Tuple[Tuple[int, int], ParsedModule]] = {}
#: observability counters, asserted on by the cache tests
STATS = {"hits": 0, "parses": 0}


def parse_source(source: str, path: str = "<string>") -> ParsedModule:
    """Parse source text (uncached — there is no file to key on)."""
    STATS["parses"] += 1
    try:
        return ParsedModule(path, source, ast.parse(source, filename=path),
                            None)
    except SyntaxError as exc:
        return ParsedModule(path, source, None, exc)


def parse_module(path: str) -> ParsedModule:
    """Read and parse ``path``, memoized on ``(mtime_ns, size)``."""
    stat = os.stat(path)
    key = (stat.st_mtime_ns, stat.st_size)
    cached = _CACHE.get(path)
    if cached is not None and cached[0] == key:
        STATS["hits"] += 1
        return cached[1]
    with open(path, encoding="utf-8") as handle:
        parsed = parse_source(handle.read(), path)
    _CACHE[path] = (key, parsed)
    return parsed


def clear() -> None:
    """Drop the cache (tests; long-lived sessions editing sources)."""
    _CACHE.clear()
    STATS["hits"] = STATS["parses"] = 0
