"""PicoCheck: a bounded model checker for the cross-kernel protocols.

KSan, PicoLockdep and the chaos sweep check what *did* happen on one
seeded schedule; the protocol machines they watch (McKernel dispatcher
vs. hfi1 IRQ top/bottom halves, SDMA halt/restart, fast-path->offload
fallback) can still hide bugs in interleavings that schedule never
samples.  PicoCheck closes the gap with small-bound systematic
exploration in the style of stateless model checkers (CHESS, dBug):

* **Choice points.**  The discrete-event simulator fires same-timestamp
  events in pinned FIFO insertion order (see :mod:`repro.sim.engine`).
  With a :class:`ControlledScheduler` installed on ``sim.scheduler``,
  every same-time ready set with more than one event becomes an
  explicit *choice point*; pick 0 reproduces the default schedule
  exactly, and a :class:`Schedule` is a sparse vector of deviations
  from it.  Re-executing from the root with the same seeds and a pick
  vector is the replay mechanism — no state snapshotting.

* **Exploration.**  DFS over deviation vectors, bounded by ``depth``
  (only the first N choice points are eligible), ``preemptions``
  (number of deviations per schedule) and ``max_runs``.  Two
  reductions keep the bound honest: a *DPOR-lite* commutation check
  skips an alternative pick when the event it would promote is provably
  independent of everything it would overtake (disjoint resumed
  processes and no shared-heap footprint conflict), and a canonical
  *run fingerprint* dedups schedules that linearize the same partial
  order.  Both are heuristic approximations — communication through
  plain Python objects is invisible to the footprint — so they only
  ever *prune re-exploration*, never the violation check of a run that
  already executed.

* **Adversarial fault placement.**  Instead of Bernoulli rates, the
  explorer enumerates *where* a bounded budget of faults lands: the
  root run doubles as an opportunity census (a deterministic
  :class:`~repro.faults.FaultPlan` counts every ``fires()`` site), and
  each placement :class:`~repro.faults.ScheduledFault` seeds its own
  deviation subtree.

* **Oracles.**  The existing machinery, run in-harness per schedule:
  KSan race reports, lockdep cycles/inversions, the chaos sweep's
  typed-failure-or-byte-intact delivery contract, and quiescence (the
  event queue must drain within the step budget — a live queue at the
  bound is a deadlock/livelock report).

* **Counterexamples.**  On violation, a ddmin delta-debugging shrinker
  minimizes the dense (choice, fault) vector, then replays the minimal
  schedule with ``TRACE`` enabled, exporting a Perfetto trace plus a
  human-readable ``.sched`` script so the repro is one command::

      python -m repro check --replay artifacts/<scenario>_<config>.sched

The whole plane follows the repo's opt-in instrumentation pattern:
nothing here runs unless ``repro.config.ANALYSIS.check`` is on, the
simulator hooks are gated on the default-``None`` ``sim.scheduler``
(lint rule PD012), and with the gate closed every experiment is
bit-identical to a build without the hooks.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import (ALL_CONFIGS, ANALYSIS, FAULTS, TRACE,
                      enable_check, enable_fault_injection,
                      enable_lockdep, enable_race_detection,
                      enable_tracing)
from ..errors import ReproError
from ..faults import FaultPlan, ScheduledFault
from .ksan import reset_active_detectors
from .lockdep import reset_active_validators

#: OSConfig by its CLI/script name ("linux", "mckernel", "mckernel_hfi")
_OS_BY_NAME = {cfg.value: cfg for cfg in ALL_CONFIGS}

#: same-time groups larger than this skip canonicalization (the greedy
#: linearization is quadratic per group); dedup just misses more, which
#: is the safe direction
_CANON_GROUP_CAP = 32


# --- schedules --------------------------------------------------------------


@dataclass(frozen=True)
class Choice:
    """One scheduling deviation: at choice point ``point`` (0-based,
    in order of occurrence), fire ready-set entry ``pick`` instead of
    the FIFO default 0."""

    point: int
    pick: int

    def __post_init__(self) -> None:
        if self.point < 0 or self.pick < 0:
            raise ReproError(f"choice indices must be >= 0: {self}")

    def describe(self) -> str:
        """The ``.sched`` script line for this choice."""
        return f"choice {self.point} {self.pick}"


@dataclass(frozen=True)
class Schedule:
    """A (schedule-choice, fault-placement) vector — the unit the
    explorer enumerates, the shrinker minimizes and the ``.sched``
    script serializes.  Choice points not named in ``choices`` take the
    FIFO default, so the empty schedule is the uncontrolled run."""

    choices: Tuple[Choice, ...] = ()
    faults: Tuple[ScheduledFault, ...] = ()

    @classmethod
    def empty(cls) -> "Schedule":
        return cls()

    @property
    def size(self) -> int:
        """Shrinker metric: total vector length."""
        return len(self.choices) + len(self.faults)

    def pick_map(self) -> Dict[int, int]:
        """choice-point index -> pick override."""
        return {c.point: c.pick for c in self.choices}

    def describe(self) -> str:
        """One-line human summary of the whole vector."""
        parts = [c.describe() for c in self.choices]
        parts.extend(f"fault {f.describe()}" for f in self.faults)
        return "; ".join(parts) if parts else "default schedule"


@dataclass(frozen=True)
class ChoicePoint:
    """One recorded same-time ready set with more than one event."""

    index: int                     #: 0-based occurrence order
    time: float                    #: simulated time of the ready set
    ready_seqs: Tuple[int, ...]    #: event heap ``seq`` keys, FIFO order
    pick: int                      #: the entry that fired
    step_index: int                #: index of the fired step in the trace

    @property
    def n_ready(self) -> int:
        return len(self.ready_seqs)


class _StepRecord:
    """Footprint of one executed simulator step: which processes it
    resumed and which shared-heap words it touched.  This is the raw
    material of the independence relation."""

    __slots__ = ("when", "seq", "resumed_ids", "resumed_names",
                 "reads", "writes")

    def __init__(self, when: float, seq: int):
        self.when = when
        self.seq = seq
        #: process identity within this run (independence check)
        self.resumed_ids: Set[int] = set()
        #: stable code names (fingerprint labels, comparable across runs)
        self.resumed_names: Set[str] = set()
        self.reads: Set[Tuple[str, int, int]] = set()
        self.writes: Set[Tuple[str, int, int]] = set()


class ControlledScheduler:
    """The explorer's hook object: install on ``sim.scheduler`` and as
    a heap monitor (``heap.add_monitor``) on every shared heap.

    As the simulator's scheduler it turns same-time ready sets into
    recorded choice points, answering each with the schedule's override
    (default 0 = FIFO).  As a heap monitor it records per-step
    read/write footprints; :meth:`on_process_resumed` records which
    processes a step resumed.  Together those give the independence
    relation behind the DPOR-lite reduction and the run fingerprint.

    An override naming a pick the replayed run no longer offers (the
    shrinker probes sub-vectors whose executions diverge) falls back to
    the FIFO default and is counted in ``divergences`` rather than
    raising: the oracle verdict of the run that actually executed is
    what the shrinker needs.
    """

    def __init__(self, schedule: Schedule):
        self.schedule = schedule
        self._overrides = schedule.pick_map()
        self.choice_points: List[ChoicePoint] = []
        self.steps: List[_StepRecord] = []
        self.divergences = 0
        self._current: Optional[_StepRecord] = None

    # -- simulator scheduler protocol ------------------------------------

    def choose_ready(self, when: float, ready: Sequence[tuple]) -> int:
        """Record the choice point and return the (possibly overridden)
        pick; an override the ready set no longer offers degrades to the
        FIFO default and counts as a divergence."""
        index = len(self.choice_points)
        pick = self._overrides.get(index, 0)
        if pick >= len(ready):
            self.divergences += 1
            pick = 0
        self.choice_points.append(ChoicePoint(
            index=index, time=when,
            ready_seqs=tuple(entry[1] for entry in ready),
            pick=pick, step_index=len(self.steps)))
        if TRACE.enabled:
            # counterexample replays carry the choice points as instant
            # markers so the Perfetto view shows *where* the schedule
            # deviated from FIFO
            TRACE.collector.complete_span(
                f"choice[{index}] pick {pick}/{len(ready)}",
                "check/scheduler", when, when, cat="check",
                args={"point": index, "pick": pick,
                      "ready": len(ready),
                      "deviation": pick != 0})
        return pick

    def on_step_begin(self, when: float, seq: int, event: object) -> None:
        """Open the footprint record for the step about to execute."""
        self._current = _StepRecord(when, seq)
        self.steps.append(self._current)

    def on_step_end(self) -> None:
        """Close the current step record."""
        self._current = None

    def on_process_resumed(self, process: object) -> None:
        """Tag the current step with the resumed process (identity and
        generator qualname, for labels and independence)."""
        if self._current is None:  # pragma: no cover - defensive
            return
        gen = getattr(process, "_gen", None)
        code = getattr(gen, "gi_code", None)
        name = getattr(code, "co_qualname",
                       getattr(code, "co_name", "process"))
        self._current.resumed_ids.add(id(process))
        self._current.resumed_names.add(name)

    # -- heap monitor protocol -------------------------------------------
    # Only on_access matters; the rest are explicit no-ops because a heap
    # with a sole monitor calls it directly (no fan to skip the hooks).

    def on_access(self, kind: str, addr: int, size: int, heap) -> None:
        """Accumulate the executing step's read/write heap footprint."""
        if self._current is None:
            return
        word = (heap.name, addr, size)
        if kind == "write":
            self._current.writes.add(word)
        else:
            self._current.reads.add(word)

    def annotate(self, *args, **kwargs) -> None:
        """No-op: kernel/label annotations are KSan's concern."""

    def on_lock_acquired(self, *args, **kwargs) -> None:
        """No-op: lock events are the race detector's concern."""

    def on_lock_released(self, *args, **kwargs) -> None:
        """No-op: lock events are the race detector's concern."""

    def on_lockdep_acquire(self, *args, **kwargs) -> None:
        """No-op: lock-order tracking is lockdep's concern."""

    def on_lockdep_release(self, *args, **kwargs) -> None:
        """No-op: lock-order tracking is lockdep's concern."""


# --- independence, fingerprints, reduction ----------------------------------


def _dependent(a: _StepRecord, b: _StepRecord) -> bool:
    """Conservative step dependence: steps that resumed no process at
    all (bare callbacks — invisible to the footprint) are dependent
    with everything; otherwise dependence is a shared resumed process
    or a write/access conflict on a shared-heap word."""
    if not a.resumed_ids or not b.resumed_ids:
        return True
    if a.resumed_ids & b.resumed_ids:
        return True
    if a.writes & (b.reads | b.writes):
        return True
    if b.writes & a.reads:
        return True
    return False


def _step_label(step: _StepRecord) -> Tuple:
    """A stable, execution-order-free label for one step."""
    digest = hashlib.sha1(
        (repr(sorted(step.reads)) + "|"
         + repr(sorted(step.writes))).encode()).hexdigest()[:12]
    return (tuple(sorted(step.resumed_names)), digest)


def _canonical_group(group: List[_StepRecord]) -> List[Tuple]:
    """Greedy minimal-label linearization of one same-time group,
    respecting the dependence partial order — two runs that interleave
    the same independent steps differently canonicalize identically."""
    if len(group) > _CANON_GROUP_CAP:
        return [_step_label(s) for s in group]
    labels = [_step_label(s) for s in group]
    order: List[Tuple] = []
    remaining = list(range(len(group)))
    while remaining:
        best = None
        for i in remaining:
            if any(j < i and _dependent(group[j], group[i])
                   for j in remaining):
                continue  # a dependent predecessor must go first
            if best is None or labels[i] < labels[best]:
                best = i
        if best is None:  # pragma: no cover - cycle-free by construction
            best = remaining[0]
        order.append(labels[best])
        remaining.remove(best)
    return order


def run_fingerprint(steps: Sequence[_StepRecord]) -> str:
    """Canonical hash of a run: per-time-group minimal linearizations,
    concatenated in time order.  Schedules that merely permute provably
    independent same-time steps collide here and are deduped; any
    imprecision makes fingerprints *differ*, which only costs re-runs."""
    h = hashlib.sha256()
    group: List[_StepRecord] = []
    when: Optional[float] = None
    for step in steps:
        if when is not None and step.when != when:
            h.update(repr((when, _canonical_group(group))).encode())
            group = []
        when = step.when
        group.append(step)
    if group:
        h.update(repr((when, _canonical_group(group))).encode())
    return h.hexdigest()


def _commutes(result: "RunResult", cp: ChoicePoint, alt_seq: int) -> bool:
    """DPOR-lite: would picking ``alt_seq`` at ``cp`` reach a state the
    explored run already visited?  True when the step that executed
    ``alt_seq`` later in this run is independent of every step it would
    overtake — promoting it to the front of that block commutes."""
    steps = result.step_records
    j = None
    for k in range(cp.step_index, len(steps)):
        if steps[k].seq == alt_seq:
            j = k
            break
    if j is None:
        return False  # the event never fired here; cannot prove anything
    for k in range(cp.step_index, j):
        if _dependent(steps[k], steps[j]):
            return False
    return True


# --- one run ----------------------------------------------------------------


@dataclass
class RunResult:
    """Everything the explorer needs from one executed schedule."""

    schedule: Schedule             #: the sparse vector as requested
    violations: List[str]
    steps: int
    quiesced: bool
    choice_points: List[ChoicePoint]
    step_records: List[_StepRecord]
    fingerprint: str
    census: Dict[str, int]         #: fault-point -> opportunity count
    divergences: int

    @property
    def dense(self) -> Schedule:
        """The *dense* schedule: every recorded choice point with the
        pick actually made, explicit zeros included.  This is the
        "first violating schedule" the shrinker starts from — and the
        baseline the minimal counterexample must be strictly smaller
        than."""
        return Schedule(
            choices=tuple(Choice(cp.index, cp.pick)
                          for cp in self.choice_points),
            faults=self.schedule.faults)


def _drive(sim, step_budget: int) -> Tuple[int, bool]:
    """Step the simulator until it quiesces or the budget runs out."""
    steps = 0
    while sim.peek() != float("inf"):
        if steps >= step_budget:
            return steps, False
        sim.step()
        steps += 1
    return steps, True


def execute_run(scenario, config: str, schedule: Schedule, bounds: "Bounds",
                collector=None) -> RunResult:
    """Execute one schedule of ``scenario`` under the full oracle set.

    Sets up the process-wide config for a check run (KSan + lockdep +
    check mode + a deterministic fault plan carrying the schedule's
    placements), hands the scenario a fresh harness, and restores every
    global on the way out so check runs compose with the rest of the
    test suite.
    """
    prev = (ANALYSIS.race_detection, ANALYSIS.lockdep, ANALYSIS.check,
            FAULTS.enabled, FAULTS.plan, TRACE.enabled, TRACE.collector)
    reset_active_detectors()
    reset_active_validators()
    enable_race_detection(True)
    enable_lockdep(True)
    enable_check(True)
    enable_fault_injection(FaultPlan.placed(*schedule.faults))
    enable_tracing(collector)
    try:
        return scenario.run(config, schedule, bounds)
    finally:
        (ANALYSIS.race_detection, ANALYSIS.lockdep, ANALYSIS.check,
         FAULTS.enabled, FAULTS.plan, TRACE.enabled,
         TRACE.collector) = prev
        reset_active_detectors()
        reset_active_validators()


def make_result(scheduler: ControlledScheduler, schedule: Schedule,
                violations: List[str], steps: int, quiesced: bool,
                census: Optional[Dict[str, int]] = None) -> RunResult:
    """Assemble a :class:`RunResult` from a finished harness (shared by
    every scenario implementation)."""
    return RunResult(
        schedule=schedule, violations=violations, steps=steps,
        quiesced=quiesced, choice_points=scheduler.choice_points,
        step_records=scheduler.steps,
        fingerprint=run_fingerprint(scheduler.steps),
        census=dict(census or {}), divergences=scheduler.divergences)


# --- scenarios --------------------------------------------------------------


class PingpongScenario:
    """The fig4-class workload: a two-node ping-pong exchanging one
    message per protocol regime (eager PIO, eager SDMA, rendezvous)
    over a 2-engine SDMA pool, checked for byte-intact-or-typed-error
    delivery on top of the race/lockdep/quiescence oracles."""

    name = "pingpong"
    description = "two-node fig4-class send/recv, one message per regime"
    configs = tuple(cfg.value for cfg in ALL_CONFIGS)
    expect_violation = False
    n_messages = 3

    def run(self, config: str, schedule: Schedule,
            bounds: "Bounds") -> RunResult:
        """One controlled execution of the ping-pong protocol on the
        named OS config, judged by all four oracles."""
        from ..errors import DeviceTimeout, TransferCorrupt
        from ..experiments.chaos import MESSAGE_SIZES, _chaos_params
        from ..experiments.common import build_machine
        from ..psm import Endpoint, TagMatcher

        os_config = _OS_BY_NAME[config]
        scheduler = ControlledScheduler(schedule)
        machine = build_machine(2, os_config, params=_chaos_params())
        sim = machine.sim
        sim.scheduler = scheduler
        for mnode in machine.nodes:
            mnode.node.kheap.add_monitor(scheduler)
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        msgs = [(i, MESSAGE_SIZES[i % len(MESSAGE_SIZES)])
                for i in range(self.n_messages)]
        bufsize = 2 * max(MESSAGE_SIZES)
        send_out: Dict[int, str] = {}
        recv_reqs: Dict[int, object] = {}

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            for i, size in msgs:
                try:
                    yield from ep0.mq_send(ep1.addr, ("check", i), buf,
                                           size, payload=("tok", i, size))
                    send_out[i] = "ok"
                except (DeviceTimeout, TransferCorrupt) as exc:
                    send_out[i] = type(exc).__name__

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for i, _size in msgs:
                recv_reqs[i] = ep1.mq_irecv(
                    TagMatcher(tag=("check", i)), (buf, bufsize))

        sim.process(receiver())
        sim.process(sender())
        steps, quiesced = _drive(sim, bounds.step_budget)

        violations: List[str] = []
        if not quiesced:
            violations.append(
                f"no quiescence: event queue still live after "
                f"{bounds.step_budget} steps (deadlock/livelock at bound)")
        else:
            typed = ("DeviceTimeout", "TransferCorrupt")
            for i, size in msgs:
                req = recv_reqs.get(i)
                s_out = send_out.get(i, "hung")
                label = f"{os_config.label} msg {i} ({size}B)"
                if req is not None and req.event.triggered \
                        and req.event.exception is None:
                    if req.payload == ("tok", i, size) and req.nbytes == size:
                        continue
                    violations.append(
                        f"{label}: delivered corrupt (payload="
                        f"{req.payload!r}, nbytes={req.nbytes})")
                    continue
                r_exc = (req.event.exception
                         if req is not None and req.event.triggered else None)
                if (r_exc is not None and type(r_exc).__name__ in typed) \
                        or s_out in typed:
                    continue
                if r_exc is not None:
                    violations.append(
                        f"{label}: untyped receive error {r_exc!r}")
                else:
                    violations.append(
                        f"{label}: never delivered and no typed error "
                        f"(sender: {s_out})")
        violations.extend(r.render() for r in machine.race_reports())
        violations.extend(r.render() for r in machine.lockdep_reports())
        census = (machine.injector.occurrences
                  if machine.injector is not None else {})
        return make_result(scheduler, schedule, violations, steps,
                           quiesced, census)


def get_scenarios() -> Dict[str, object]:
    """The scenario registry (fixtures imported lazily to keep the
    explorer importable without the test rigs)."""
    from .check_fixtures import FlagRaceScenario
    from .check_guard import GuardBreakerScenario
    from .check_pxd import PxdFallbackScenario
    scenarios = {}
    for scenario in (PingpongScenario(), FlagRaceScenario(),
                     GuardBreakerScenario(), PxdFallbackScenario()):
        scenarios[scenario.name] = scenario
    return scenarios


# --- exploration ------------------------------------------------------------


@dataclass(frozen=True)
class Bounds:
    """The exploration bound: what "exhaustive" means for one run."""

    depth: int            #: max post-reduction deviations pushed per run
    preemptions: int      #: max deviations per schedule
    faults: int           #: fault-placement budget per schedule (0 or 1)
    occ_cap: int          #: max occurrence index enumerated per fault point
    max_runs: int         #: hard cap on executions per config
    step_budget: int      #: quiescence bound per run

    def describe(self) -> str:
        """One-line summary for reports and script headers."""
        return (f"depth={self.depth} preemptions={self.preemptions} "
                f"faults={self.faults} occ-cap={self.occ_cap} "
                f"max-runs={self.max_runs} step-budget={self.step_budget}")


SMOKE_BOUNDS = Bounds(depth=6, preemptions=1, faults=1, occ_cap=1,
                      max_runs=200, step_budget=400_000)
FULL_BOUNDS = Bounds(depth=32, preemptions=2, faults=1, occ_cap=2,
                     max_runs=1000, step_budget=800_000)


@dataclass
class ConfigOutcome:
    """Exploration result for one OS configuration (or rig)."""

    config: str
    runs: int = 0
    explored: int = 0
    deduped: int = 0
    reduced: int = 0
    root_choice_points: int = 0
    exhausted: bool = False
    skipped: bool = False
    violation: Optional[str] = None
    first_schedule: Optional[Schedule] = None  #: dense, at violation
    minimal: Optional[Schedule] = None         #: after shrinking
    shrink_runs: int = 0
    sched_path: Optional[str] = None
    trace_path: Optional[str] = None


def explore_config(scenario, config: str, bounds: Bounds) -> ConfigOutcome:
    """Bounded DFS over (choice, fault) vectors for one configuration.

    Returns at the first violation (the counterexample is the
    deliverable) with the dense violating schedule attached; otherwise
    reports explored/deduped/reduced counts and whether the frontier
    was exhausted within ``max_runs``.
    """
    out = ConfigOutcome(config=config)

    def execute(schedule: Schedule) -> RunResult:
        out.runs += 1
        return execute_run(scenario, config, schedule, bounds)

    root = execute(Schedule.empty())
    out.explored += 1
    out.root_choice_points = len(root.choice_points)
    if root.violations:
        out.violation = "\n".join(root.violations)
        out.first_schedule = root.dense
        return out

    seen = {root.fingerprint}
    stack: List[Schedule] = []

    def expand(schedule: Schedule, result: RunResult) -> None:
        """Push this run's eligible deviations (DFS order: earliest
        choice point explored first, so append in reverse).

        ``depth`` caps the deviations pushed per run *after* reduction:
        the early choice points of a real workload are commuting
        process-startup events the DPOR check prunes wholesale, so an
        index-based depth bound would never reach the protocol-phase
        interleavings the checker exists for.
        """
        if len(schedule.choices) >= bounds.preemptions:
            return
        last = max((c.point for c in schedule.choices), default=-1)
        children: List[Schedule] = []
        for cp in result.choice_points:
            if cp.index <= last:
                continue
            for pick in range(1, cp.n_ready):
                if _commutes(result, cp, cp.ready_seqs[pick]):
                    out.reduced += 1
                    continue
                children.append(Schedule(
                    choices=schedule.choices + (Choice(cp.index, pick),),
                    faults=schedule.faults))
            if len(children) >= bounds.depth:
                break
        stack.extend(reversed(children[:bounds.depth]))

    expand(Schedule.empty(), root)
    # adversarial fault placement: each placement from the census seeds
    # its own deviation subtree
    if bounds.faults >= 1:
        for point in sorted(root.census, reverse=True):
            cap = min(root.census[point], bounds.occ_cap)
            for occ in reversed(range(cap)):
                stack.append(Schedule(
                    faults=(ScheduledFault(point, occ),)))

    while stack:
        if out.runs >= bounds.max_runs:
            return out  # bound hit: frontier not exhausted
        schedule = stack.pop()
        result = execute(schedule)
        out.explored += 1
        if result.violations:
            out.violation = "\n".join(result.violations)
            out.first_schedule = result.dense
            return out
        if result.fingerprint in seen:
            out.deduped += 1
            continue
        seen.add(result.fingerprint)
        expand(schedule, result)
    out.exhausted = True
    return out


# --- counterexample shrinking -----------------------------------------------


def shrink(scenario, config: str, dense: Schedule,
           bounds: Bounds) -> Tuple[Schedule, int]:
    """ddmin over the dense (choice, fault) vector: the classic
    delta-debugging loop (Zeller & Hildebrandt), with "test fails" =
    "re-executing the sub-vector still violates an oracle".  Returns
    the 1-minimal schedule and the number of replays spent."""
    elements: List[Tuple[str, object]] = \
        [("choice", c) for c in dense.choices] \
        + [("fault", f) for f in dense.faults]
    runs = 0

    def build(subset: Sequence[Tuple[str, object]]) -> Schedule:
        return Schedule(
            choices=tuple(e for kind, e in subset if kind == "choice"),
            faults=tuple(e for kind, e in subset if kind == "fault"))

    def violates(subset: Sequence[Tuple[str, object]]) -> bool:
        nonlocal runs
        runs += 1
        return bool(execute_run(scenario, config, build(subset),
                                bounds).violations)

    current = list(elements)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            trial = current[:start] + current[start + chunk:]
            if trial and violates(trial):
                current = trial
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return build(current), runs


# --- schedule scripts and counterexample export -----------------------------


def write_schedule_script(path: str, scenario_name: str, config: str,
                          schedule: Schedule, note: str = "") -> str:
    """Serialize a schedule as the human-readable ``.sched`` script."""
    lines = ["# PicoCheck counterexample schedule"]
    if note:
        lines.append(f"# {note}")
    lines.append(f"# replay: python -m repro check --replay {path}")
    lines.append(f"scenario: {scenario_name}")
    lines.append(f"config: {config}")
    for choice in schedule.choices:
        lines.append(choice.describe())
    for fault in schedule.faults:
        lines.append(f"fault {fault.describe()}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def parse_schedule_script(text: str) -> Tuple[str, str, Schedule]:
    """Parse a ``.sched`` script back into (scenario, config, schedule)."""
    scenario_name = config = None
    choices: List[Choice] = []
    faults: List[ScheduledFault] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("scenario:"):
            scenario_name = line.split(":", 1)[1].strip()
        elif line.startswith("config:"):
            config = line.split(":", 1)[1].strip()
        elif line.startswith("choice "):
            parts = line.split()
            if len(parts) != 3:
                raise ReproError(f"line {lineno}: expected "
                                 f"'choice <point> <pick>', got {line!r}")
            choices.append(Choice(int(parts[1]), int(parts[2])))
        elif line.startswith("fault "):
            spec = line.split(None, 1)[1]
            point, _, occ = spec.partition("@")
            if not occ:
                raise ReproError(f"line {lineno}: expected "
                                 f"'fault <point>@<occurrence>', got {line!r}")
            faults.append(ScheduledFault(point.strip(), int(occ)))
        else:
            raise ReproError(f"line {lineno}: unrecognized schedule "
                             f"directive {line!r}")
    if scenario_name is None or config is None:
        raise ReproError("schedule script must name 'scenario:' and "
                         "'config:'")
    return scenario_name, config, Schedule(tuple(choices), tuple(faults))


def export_counterexample(scenario, config: str, schedule: Schedule,
                          bounds: Bounds, out_dir: str,
                          note: str = "") -> Tuple[str, str, RunResult]:
    """Replay ``schedule`` with tracing on and write both artifacts:
    the ``.sched`` script and the Perfetto/Chrome trace JSON."""
    from ..obs.export import write_chrome_trace
    from ..obs.spans import SpanCollector

    os.makedirs(out_dir, exist_ok=True)
    collector = SpanCollector()
    result = execute_run(scenario, config, schedule, bounds,
                         collector=collector)
    stem = os.path.join(out_dir, f"{scenario.name}_{config}")
    sched_path = write_schedule_script(
        f"{stem}.sched", scenario.name, config, schedule, note=note)
    trace_path = write_chrome_trace(collector, f"{stem}.trace.json")
    return sched_path, trace_path, result


# --- the check driver -------------------------------------------------------


@dataclass
class CheckResult:
    """The full exploration: per-config outcomes plus a render method."""

    scenario_name: str
    bounds: Bounds
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    expect_violation: bool = False

    @property
    def violation_found(self) -> bool:
        return any(o.violation is not None for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """Did the exploration match the scenario's expectation?"""
        return self.violation_found == self.expect_violation

    def render(self) -> str:
        """Human-readable report: per-config table, violation detail,
        artifact paths and the final verdict."""
        lines = [f"PicoCheck: scenario '{self.scenario_name}'",
                 f"  bounds: {self.bounds.describe()}", "",
                 "config          runs  explored  deduped  reduced  "
                 "root-cps  frontier"]
        for o in self.outcomes:
            if o.skipped:
                lines.append(f"{o.config:<15} skipped (violation found in "
                             f"an earlier config)")
                continue
            frontier = ("violation" if o.violation is not None
                        else "exhausted" if o.exhausted
                        else "run-capped")
            lines.append(
                f"{o.config:<15} {o.runs:>5}  {o.explored:>8}  "
                f"{o.deduped:>7}  {o.reduced:>7}  "
                f"{o.root_choice_points:>8}  {frontier}")
        lines.append("")
        for o in self.outcomes:
            if o.violation is None:
                continue
            lines.append(f"VIOLATION in config {o.config} after "
                         f"{o.explored} schedule(s):")
            lines.extend(f"  {line}" for line in o.violation.splitlines())
            if o.first_schedule is not None:
                lines.append(
                    f"first violating schedule: "
                    f"{len(o.first_schedule.choices)} choice(s), "
                    f"{len(o.first_schedule.faults)} fault(s)")
            if o.minimal is not None:
                lines.append(
                    f"shrunk counterexample ({o.shrink_runs} replays): "
                    f"{len(o.minimal.choices)} choice(s), "
                    f"{len(o.minimal.faults)} fault(s) — "
                    f"{o.minimal.describe()}")
            if o.sched_path:
                lines.append(f"  schedule: {o.sched_path}")
            if o.trace_path:
                lines.append(f"  trace:    {o.trace_path}")
            if o.sched_path:
                lines.append(f"  replay:   python -m repro check "
                             f"--replay {o.sched_path}")
        if not self.violation_found:
            lines.append("verdict: no violations within the bound")
        elif self.expect_violation:
            lines.append("verdict: seeded violation found and shrunk "
                         "(as expected for this fixture)")
        else:
            lines.append("verdict: VIOLATION — see the counterexample "
                         "artifacts above")
        return "\n".join(lines)


def run_check(scenario_name: str, bounds: Optional[Bounds] = None,
              configs: Optional[Sequence[str]] = None,
              out_dir: str = "check_artifacts") -> CheckResult:
    """Explore every configuration of a scenario; on violation, shrink
    the dense schedule, export the artifacts, and stop."""
    scenarios = get_scenarios()
    if scenario_name not in scenarios:
        raise ReproError(f"unknown check scenario {scenario_name!r}; "
                         f"choose from {', '.join(sorted(scenarios))}")
    scenario = scenarios[scenario_name]
    if bounds is None:
        bounds = FULL_BOUNDS
    if configs is None:
        configs = scenario.configs
    else:
        unknown = [c for c in configs if c not in scenario.configs]
        if unknown:
            raise ReproError(
                f"scenario {scenario_name!r} has no config(s) "
                f"{', '.join(unknown)}; choose from "
                f"{', '.join(scenario.configs)}")
    result = CheckResult(scenario_name=scenario_name, bounds=bounds,
                         expect_violation=scenario.expect_violation)
    stop = False
    for config in configs:
        if stop:
            result.outcomes.append(ConfigOutcome(config=config,
                                                 skipped=True))
            continue
        outcome = explore_config(scenario, config, bounds)
        result.outcomes.append(outcome)
        if outcome.violation is not None:
            minimal, shrink_runs = shrink(scenario, config,
                                          outcome.first_schedule, bounds)
            outcome.minimal = minimal
            outcome.shrink_runs = shrink_runs
            outcome.runs += shrink_runs
            note = (f"minimal after ddmin: {minimal.size} of "
                    f"{outcome.first_schedule.size} vector entries")
            outcome.sched_path, outcome.trace_path, _ = \
                export_counterexample(scenario, config, minimal, bounds,
                                      out_dir, note=note)
            stop = True
    return result


def replay_schedule(path: str, out_dir: str = "check_artifacts",
                    bounds: Optional[Bounds] = None):
    """Replay a ``.sched`` script with tracing enabled; returns the
    (RunResult, trace_path) pair."""
    with open(path) as fh:
        scenario_name, config, schedule = parse_schedule_script(fh.read())
    scenarios = get_scenarios()
    if scenario_name not in scenarios:
        raise ReproError(f"schedule names unknown scenario "
                         f"{scenario_name!r}")
    scenario = scenarios[scenario_name]
    if config not in scenario.configs:
        raise ReproError(f"schedule names unknown config {config!r} for "
                         f"scenario {scenario_name!r}")
    _sched_path, trace_path, result = export_counterexample(
        scenario, config, schedule, bounds or FULL_BOUNDS, out_dir)
    return result, trace_path


# --- CLI --------------------------------------------------------------------

_USAGE = """\
usage: python -m repro check <scenario> [--smoke] [--depth N] [--faults K]
                             [--preemptions N] [--max-runs N] [--config C]
                             [--out DIR]
       python -m repro check --replay FILE [--out DIR]
       python -m repro check --list
"""


def cmd_check(argv: List[str]) -> int:
    """Entry point for ``python -m repro check``.

    Exit codes: 0 when the exploration matches the scenario's
    expectation (clean for real workloads, violation-found for seeded
    fixtures), 1 on a mismatch, 2 on usage errors.
    """
    args = list(argv)
    if "--list" in args:
        for name, scenario in sorted(get_scenarios().items()):
            expect = ("expects a violation (seeded fixture)"
                      if scenario.expect_violation else "expects clean")
            print(f"{name:<18} {scenario.description} — {expect}")
        return 0

    def take_value(flag: str) -> Optional[str]:
        if flag not in args:
            return None
        idx = args.index(flag)
        if idx + 1 >= len(args):
            raise ReproError(f"{flag} needs a value")
        args.pop(idx)
        return args.pop(idx)

    try:
        replay = take_value("--replay")
        out_dir = take_value("--out") or "check_artifacts"
        depth = take_value("--depth")
        faults = take_value("--faults")
        preemptions = take_value("--preemptions")
        max_runs = take_value("--max-runs")
        config = take_value("--config")
    except ReproError as exc:
        print(f"{exc}\n{_USAGE}")
        return 2
    smoke = "--smoke" in args
    args = [a for a in args if a != "--smoke"]
    unknown = [a for a in args if a.startswith("-")]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n{_USAGE}")
        return 2

    if replay is not None:
        if args:
            print(f"--replay takes no scenario argument\n{_USAGE}")
            return 2
        result, trace_path = replay_schedule(replay, out_dir=out_dir)
        print(f"replayed {replay}: {result.steps} steps, "
              f"{len(result.choice_points)} choice points, "
              f"{result.divergences} divergences")
        print(f"trace: {trace_path}")
        if result.violations:
            print(f"violations ({len(result.violations)}):")
            for violation in result.violations:
                for line in violation.splitlines():
                    print(f"  {line}")
            return 1
        print("no violations on this schedule")
        return 0

    if not args:
        print(_USAGE)
        print("scenarios:", ", ".join(sorted(get_scenarios())))
        return 2
    scenario_name = args[0]
    if scenario_name not in get_scenarios():
        print(f"unknown check scenario {scenario_name!r}; choose from "
              f"{', '.join(sorted(get_scenarios()))}")
        return 2
    bounds = SMOKE_BOUNDS if smoke else FULL_BOUNDS
    overrides = {}
    if depth is not None:
        overrides["depth"] = int(depth)
    if faults is not None:
        overrides["faults"] = int(faults)
    if preemptions is not None:
        overrides["preemptions"] = int(preemptions)
    if max_runs is not None:
        overrides["max_runs"] = int(max_runs)
    if overrides:
        from dataclasses import replace
        bounds = replace(bounds, **overrides)
    configs = [config] if config is not None else None
    result = run_check(scenario_name, bounds=bounds, configs=configs,
                       out_dir=out_dir)
    print(result.render())
    return 0 if result.ok else 1
