"""Seeded-bug fixtures for the PicoCheck explorer (test-only rigs).

The checker's own correctness needs a bug it is *guaranteed* to find:
a scenario whose default FIFO schedule is clean but where some bounded
deviation violates an oracle.  :class:`FlagRaceScenario` re-introduces
the class of bug KSan exists for (paper section 3.3): a cross-kernel
write to driver state without the shared lock — the ``sdma_state``
scribble the porting rules forbid — behind a test-only flag.

The rig is a two-"kernel" publish protocol on one shared heap:

* the **producer** (McKernel side) raises ``flag`` to claim the
  publish window, later writes ``data`` and drops ``flag`` — all on
  the same timestamp, so the interleaving is a chain of PicoCheck
  choice points;
* the **consumer** (Linux side) samples ``flag`` once; the seeded bug
  is a "scrub" path that, on seeing the window open, writes ``data``
  *without taking ownership*.

Under the pinned FIFO default the consumer samples before the producer
raises the flag and never scrubs: no race, ``data`` ends at the
producer's value.  Deviating at the very first choice point promotes
the producer, the consumer sees the open window, and the scrub becomes
a cross-kernel unlocked write-write race on ``data`` (KSan reports
both sites and kernels) plus a final-value invariant violation.  The
minimal counterexample is exactly one deviation and zero faults, so
the shrinker provably beats the dense first-violating schedule.

With ``bug_enabled=False`` the scrub path is compiled out and the
explorer must report the bound clean — the negative control.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import TRACE
from ..hw.memory import SharedHeap
from ..sim import Simulator
from .check import Bounds, ControlledScheduler, RunResult, Schedule, \
    _drive, make_result
from .ksan import RaceDetector

#: the producer's published value; the invariant oracle checks ``data``
#: ends here (the scrub overwrites it after publication)
PUBLISHED_VALUE = 1

#: what the seeded scrub path writes without owning the word
SCRUB_VALUE = 2


class _FlagRaceRig:
    """The bare two-process rig: one simulator, one shared heap, one
    KSan detector, no machine — small enough that the smoke bound
    explores it exhaustively in well under a second."""

    def __init__(self, bug_enabled: bool = True):
        self.bug_enabled = bug_enabled
        self.sim = Simulator()
        self.heap = SharedHeap(4096, name="rig.kheap")
        self.detector = RaceDetector(self.sim, name="rig.kheap",
                                     register=False)
        self.heap.monitor = self.detector
        self.flag = self.heap.kmalloc(4)
        self.data = self.heap.kmalloc(4)
        #: consumer-private scratch word (benign traffic so the rig has
        #: same-time steps that are *independent*, exercising the
        #: explorer's reduction on top of the seeded dependence)
        self.scratch = self.heap.kmalloc(4)

    # -- annotated heap access (the accessor-layer idiom, by hand) ------

    def _write(self, kernel: str, label: str, addr: int,
               value: int) -> None:
        monitor = self.heap.monitor
        if monitor is not None:
            monitor.annotate(kernel, label)
        self.heap.write_u(addr, 4, value)
        if TRACE.enabled:
            TRACE.collector.complete_span(
                f"{kernel}: {label} <- {value}", f"rig/{kernel}",
                self.sim.now, self.sim.now, cat="rig")

    def _read(self, kernel: str, label: str, addr: int) -> int:
        monitor = self.heap.monitor
        if monitor is not None:
            monitor.annotate(kernel, label)
        value = self.heap.read_u(addr, 4)
        if TRACE.enabled:
            TRACE.collector.complete_span(
                f"{kernel}: {label} == {value}", f"rig/{kernel}",
                self.sim.now, self.sim.now, cat="rig")
        return value

    # -- the two kernels -------------------------------------------------

    def consumer(self):
        """Linux side: sample the flag; the seeded bug scrubs ``data``
        when it catches the publish window open."""
        window_open = self._read("linux", "rig.flag", self.flag) != 0
        if window_open and self.bug_enabled:
            yield self.sim.timeout(0.0)
            # the seeded bug: a cross-kernel write to protocol state
            # without taking ownership (no shared lock, not atomic).
            # Annotated inline so the race report attributes this exact
            # site rather than a helper frame.
            self.heap.monitor.annotate("linux", "rig.data")
            self.heap.write_u(self.data, 4, SCRUB_VALUE)
        yield self.sim.timeout(0.0)
        self._write("linux", "rig.scratch", self.scratch, 1)

    def producer(self):
        """McKernel side: claim the window, publish, release."""
        self._write("mckernel", "rig.flag", self.flag, 1)
        yield self.sim.timeout(0.0)
        self.heap.monitor.annotate("mckernel", "rig.data")
        self.heap.write_u(self.data, 4, PUBLISHED_VALUE)
        self._write("mckernel", "rig.flag", self.flag, 0)

    def start(self) -> None:
        # the consumer is inserted first on purpose: under the pinned
        # FIFO tie-break it samples the flag before the producer raises
        # it, so choice 0 pick 0 (the default schedule) is clean
        self.sim.process(self.consumer())
        self.sim.process(self.producer())

    def final_data(self) -> int:
        """Unannotated post-mortem read (not part of the protocol)."""
        return self.heap.read_u(self.data, 4)


class FlagRaceScenario:
    """The seeded-bug fixture as a PicoCheck scenario.

    ``expect_violation`` is True: ``python -m repro check
    seeded-flag-race`` exits 0 precisely when the explorer finds,
    shrinks and exports the seeded counterexample — which is how CI
    keeps the whole find->shrink->replay pipeline honest.
    """

    name = "seeded-flag-race"
    description = ("two-kernel publish protocol with a seeded unlocked "
                   "cross-kernel scrub write")
    configs = ("rig",)
    expect_violation = True

    def __init__(self, bug_enabled: bool = True):
        self.bug_enabled = bug_enabled

    def run(self, config: str, schedule: Schedule,
            bounds: Bounds) -> RunResult:
        """One controlled rig execution, judged by KSan plus the
        final-value invariant."""
        scheduler = ControlledScheduler(schedule)
        rig = _FlagRaceRig(bug_enabled=self.bug_enabled)
        rig.sim.scheduler = scheduler
        rig.heap.add_monitor(scheduler)
        rig.start()
        steps, quiesced = _drive(rig.sim, bounds.step_budget)
        violations: List[str] = []
        if not quiesced:
            violations.append(
                f"no quiescence: event queue still live after "
                f"{bounds.step_budget} steps (deadlock/livelock at bound)")
        violations.extend(r.render() for r in rig.detector.races)
        if quiesced and rig.final_data() != PUBLISHED_VALUE:
            violations.append(
                f"invariant broken: rig.data == {rig.final_data()} after "
                f"quiescence, expected the published value "
                f"{PUBLISHED_VALUE} (a non-owner overwrote it)")
        census: Dict[str, int] = {}
        return make_result(scheduler, schedule, violations, steps,
                           quiesced, census)
