"""PicoCheck scenario for the PicoGuard breaker FSM.

Runs a guarded single-engine McKernel+HFI1 machine through a short
eager-SDMA message train while the explorer enumerates schedules and
adversarial fault placements (``sdma.desc_error`` / ``sdma.engine_halt``
landing on any descriptor opportunity).  With one engine and a
hair-trigger policy (threshold 1, one-probe failback) every placed
fault walks the breaker around the full CLOSED -> OPEN -> PROBING ->
CLOSED cycle, and the oracles check that no interleaving breaks it:

* the standard delivery contract (every message byte-intact or typed),
* quiescence at the step bound,
* KSan races and lockdep hazards,
* breaker FSM legality (only the four legal edges, via
  :meth:`~repro.guard.manager.GuardManager.fsm_violations`) plus the
  manager's runtime invariants (no negative gate accounting, no
  admitted submit while suspended).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..config import GUARD, enable_guard
from ..units import USEC

#: hair-trigger policy so a single placed fault drives a full
#: failover/failback cycle within the smoke step budget
CHECK_POLICY_KW = dict(failure_window=4, failure_threshold=1,
                       probe_successes=1, probe_backoff=50 * USEC,
                       probe_backoff_factor=2.0,
                       probe_backoff_max=400 * USEC,
                       qdepth=16, nr_congestion_on=12, nr_congestion_off=4)


class GuardBreakerScenario:
    """Breaker FSM legality under adversarial schedules and faults."""

    name = "guard-breaker"
    description = ("guarded single-engine message train; breaker FSM "
                   "legality under adversarial fault placement")
    configs = ("mckernel_hfi",)
    expect_violation = False
    n_messages = 5

    def run(self, config: str, schedule, bounds) -> "RunResult":
        """One controlled execution of the guarded message train."""
        from ..errors import DeviceTimeout, TransferCorrupt
        from ..experiments.chaos import _chaos_params
        from ..guard import GuardPolicy
        from ..psm import Endpoint, TagMatcher
        from ..units import KiB
        from .check import ControlledScheduler, _OS_BY_NAME, _drive, \
            make_result

        os_config = _OS_BY_NAME[config]
        prev = (GUARD.enabled, GUARD.policy)
        enable_guard(GuardPolicy(**CHECK_POLICY_KW))
        try:
            from ..experiments.common import build_machine
            params = _chaos_params()
            params = params.with_overrides(
                nic=replace(params.nic, sdma_engines=1))
            scheduler = ControlledScheduler(schedule)
            machine = build_machine(2, os_config, params=params)
            sim = machine.sim
            sim.scheduler = scheduler
            for mnode in machine.nodes:
                mnode.node.kheap.add_monitor(scheduler)
            t0 = machine.spawn_rank(0, 0, 0)
            t1 = machine.spawn_rank(1, 0, 1)
            ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi,
                           t0, tracer=machine.tracer)
            ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi,
                           t1, tracer=machine.tracer)
            # eager-SDMA sized: every message crosses the guarded writev
            # fast path (PIO would bypass the breaker entirely)
            msgs = [(i, 96 * KiB) for i in range(self.n_messages)]
            bufsize = 2 * max(size for _i, size in msgs)
            send_out: Dict[int, str] = {}
            recv_reqs: Dict[int, object] = {}

            def sender():
                yield from ep0.open()
                buf = yield from t0.syscall("mmap", bufsize)
                while ep1.addr is None:
                    yield sim.timeout(1e-6)
                for i, size in msgs:
                    try:
                        yield from ep0.mq_send(ep1.addr, ("guard", i), buf,
                                               size,
                                               payload=("tok", i, size))
                        send_out[i] = "ok"
                    except (DeviceTimeout, TransferCorrupt) as exc:
                        send_out[i] = type(exc).__name__

            def receiver():
                yield from ep1.open()
                buf = yield from t1.syscall("mmap", bufsize)
                for i, _size in msgs:
                    recv_reqs[i] = ep1.mq_irecv(
                        TagMatcher(tag=("guard", i)), (buf, bufsize))

            sim.process(receiver())
            sim.process(sender())
            steps, quiesced = _drive(sim, bounds.step_budget)

            violations: List[str] = []
            if not quiesced:
                violations.append(
                    f"no quiescence: event queue still live after "
                    f"{bounds.step_budget} steps (deadlock/livelock at "
                    f"bound)")
            else:
                typed = ("DeviceTimeout", "TransferCorrupt")
                for i, size in msgs:
                    req = recv_reqs.get(i)
                    s_out = send_out.get(i, "hung")
                    label = f"guarded msg {i} ({size}B)"
                    if req is not None and req.event.triggered \
                            and req.event.exception is None:
                        if req.payload == ("tok", i, size) \
                                and req.nbytes == size:
                            continue
                        violations.append(
                            f"{label}: delivered corrupt (payload="
                            f"{req.payload!r}, nbytes={req.nbytes})")
                        continue
                    r_exc = (req.event.exception
                             if req is not None and req.event.triggered
                             else None)
                    if (r_exc is not None
                            and type(r_exc).__name__ in typed) \
                            or s_out in typed:
                        continue
                    violations.append(
                        f"{label}: never delivered and no typed error "
                        f"(sender: {s_out}, recv: {r_exc!r})")
            for mnode in machine.nodes:
                if mnode.guard is not None:
                    violations.extend(mnode.guard.fsm_violations())
                    violations.extend(mnode.guard.violations)
            violations.extend(r.render() for r in machine.race_reports())
            violations.extend(r.render() for r in machine.lockdep_reports())
            census = (machine.injector.occurrences
                      if machine.injector is not None else {})
            return make_result(scheduler, schedule, violations, steps,
                               quiesced, census)
        finally:
            GUARD.enabled, GUARD.policy = prev
