"""PicoCheck scenario for the pxd fast path and replica-eviction FSM.

Runs a guarded two-replica McKernel+HFI1 machine through a short pxd
write train — with a mid-train fast-path suspend/resume so every run
crosses the fastpath -> slowpath fallback seam — while the explorer
enumerates schedules and adversarial storage-fault placements
(``media.write_error`` / ``media.torn_write`` / ``media.read_error`` /
``pxd.path_loss`` / ``blk.irq_lost`` landing on any opportunity).  With
a hair-trigger guard policy a single placed fault walks a replica
around the full inservice -> evicted -> probing -> inservice cycle
inside the smoke step budget, and the oracles check that no
interleaving breaks the storage contract:

* every write is acknowledged or fails typed (:class:`MediaError`),
  and every acknowledged write reads back byte-intact
  (read-your-writes) or fails typed,
* every acknowledged write is byte-intact on *every* in-service
  replica at quiescence (the replication invariant),
* replica-FSM legality (only the four legal edges, via
  :meth:`~repro.linux.pxd.driver.PxdDriver.fsm_violations`) plus the
  guard plane's breaker FSM and runtime invariants,
* quiescence at the step bound, KSan races and lockdep hazards,
* the fallback seam really ran: at least one fast-path write and at
  least one suspended-fallback offload per run (harness-rot guard).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class PxdFallbackScenario:
    """pxd fallback + replica FSM legality under adversarial faults."""

    name = "pxd-fallback"
    description = ("guarded pxd write train with mid-train fast-path "
                   "suspend; replica FSM and read-your-writes under "
                   "adversarial fault placement")
    configs = ("mckernel_hfi",)
    expect_violation = False
    n_writes = 6
    #: write index wrapped in SET_SUSPEND(1)/SET_SUSPEND(0): this write
    #: must take the slow path through the dispatcher fallback seam
    suspend_at = 2

    def run(self, config: str, schedule, bounds) -> "RunResult":
        """One controlled execution of the guarded pxd write train."""
        from ..config import GUARD, enable_guard
        from ..errors import MediaError
        from ..experiments.storage import WRITE_NSECTORS, _audit_media, \
            _fsm_oracles, _storage_params
        from ..guard import GuardPolicy
        from ..linux.pxd import ioctls as ioc
        from ..sim import Event
        from .check import ControlledScheduler, _OS_BY_NAME, _drive, \
            make_result
        from .check_guard import CHECK_POLICY_KW

        os_config = _OS_BY_NAME[config]
        prev = (GUARD.enabled, GUARD.policy)
        enable_guard(GuardPolicy(**CHECK_POLICY_KW))
        try:
            from ..experiments.common import build_machine
            # two replicas: the smallest set where eviction leaves a
            # survivor to serve reads and seed the re-admission resync
            params = _storage_params(replicas=2)
            scheduler = ControlledScheduler(schedule)
            machine = build_machine(1, os_config, params=params)
            sim = machine.sim
            sim.scheduler = scheduler
            for mnode in machine.nodes:
                mnode.node.kheap.add_monitor(scheduler)
            task = machine.spawn_rank(0, 0)
            sector_size = machine.params.blk.sector_size
            payloads = {i: bytes([(11 * i + 3) & 0xFF])
                        * (WRITE_NSECTORS * sector_size)
                        for i in range(self.n_writes)}
            outcomes: Dict[int, str] = {}
            reads: Dict[int, object] = {}
            acked: Dict[int, Tuple[int, bytes]] = {}
            done: List[bool] = []

            def train():
                fd = yield from task.syscall("open", "/dev/pxd/pxd0")
                buf = yield from task.syscall("mmap", 1 << 20)
                for i in range(self.n_writes):
                    if i == self.suspend_at:
                        yield from task.syscall(
                            "ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND, 1)
                    sector = i * WRITE_NSECTORS
                    completion = Event(sim)
                    try:
                        yield from task.syscall(
                            "writev", fd,
                            [{"sector": sector, "payload": payloads[i],
                              "completion": completion},
                             (buf, len(payloads[i]))])
                        yield completion
                        outcomes[i] = "acked"
                        acked[i] = (sector, payloads[i])
                    except MediaError:
                        outcomes[i] = "typed"
                    if i == self.suspend_at:
                        yield from task.syscall(
                            "ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND, 0)
                    if outcomes[i] != "acked":
                        continue
                    try:
                        reads[i] = yield from task.syscall(
                            "ioctl", fd, ioc.PXD_IOCTL_READ,
                            {"sector": sector, "nsectors": WRITE_NSECTORS})
                    except MediaError:
                        reads[i] = "typed"
                done.append(True)

            sim.process(train())
            steps, quiesced = _drive(sim, bounds.step_budget)

            violations: List[str] = []
            if not quiesced:
                violations.append(
                    f"no quiescence: event queue still live after "
                    f"{bounds.step_budget} steps (deadlock/livelock at "
                    f"bound)")
            elif not done:
                hung = [i for i in range(self.n_writes) if i not in outcomes]
                violations.append(
                    f"write train hung before completing: writes {hung} "
                    f"never resolved (no ack, no typed error)")
            else:
                for i in range(self.n_writes):
                    if outcomes.get(i) != "acked":
                        continue
                    got = reads.get(i)
                    if got == "typed" or got == payloads[i]:
                        continue
                    violations.append(
                        f"read-your-writes broke at write {i}: acked "
                        f"payload not returned and no typed error "
                        f"(got {type(got).__name__})")
                violations.extend(_audit_media(machine, acked, self.name))
                pico_writes = machine.tracer.counters.get(
                    "pico.pxd_writes", 0)
                suspended = machine.tracer.counters.get(
                    "pico.pxd_suspended", 0)
                if pico_writes < 1:
                    violations.append(
                        "fast path never ran: pico.pxd_writes == 0 "
                        "(dispatch seam rotted)")
                if suspended < 1:
                    violations.append(
                        "fallback seam never ran: pico.pxd_suspended == 0 "
                        "(SET_SUSPEND toggle rotted)")
            violations.extend(_fsm_oracles(machine))
            violations.extend(r.render() for r in machine.race_reports())
            violations.extend(r.render() for r in machine.lockdep_reports())
            census = (machine.injector.occurrences
                      if machine.injector is not None else {})
            return make_result(scheduler, schedule, violations, steps,
                               quiesced, census)
        finally:
            GUARD.enabled, GUARD.policy = prev
