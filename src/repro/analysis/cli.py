"""Command-line drivers for the analysis layer.

``python -m repro lint [--rules] [paths...]``
    Run the PicoDriver protocol lint (default target: the installed
    ``repro`` package source).  Exit status 1 if findings remain.

``python -m repro sanitize <experiment> [<experiment>...]``
    Re-run one or more of the paper's experiments with the KSan race
    detector installed on every node's shared kernel heap, then print
    each detector's verdict.  Exit status 1 if any race was found.

``python -m repro lockdep <experiment> [<experiment>...]``
    Re-run experiments (plus the ``chaos`` smoke sweep) with the
    lockdep validator installed, print every lock-order hazard, and
    cross-check the run: every dynamically observed lock dependency
    must appear in the static lock graph.  Exit status 1 on hazards or
    on a dynamic edge the static pass missed.

``python -m repro lockgraph [--dot] [paths...]``
    Extract the compile-time lock-class graph (default target: the
    installed ``repro`` tree).  ``--dot`` emits Graphviz for the CI
    artifact.  Exit status 1 on cycles, hierarchy violations, or
    PD008/PD009 findings.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .. import config
from . import ksan
from . import lockdep as lockdep_mod
from .lint import default_lint_root, lint_paths, rules_table


def cmd_lint(argv: List[str]) -> int:
    """Entry point for ``python -m repro lint``."""
    if "--rules" in argv:
        print(rules_table())
        return 0
    args = list(argv)
    jobs = 1
    if "--jobs" in args:
        idx = args.index("--jobs")
        if idx + 1 >= len(args):
            print("--jobs needs a worker count\n"
                  "usage: python -m repro lint [--rules] [--jobs N] "
                  "[paths...]")
            return 2
        try:
            jobs = max(1, int(args[idx + 1]))
        except ValueError:
            print(f"--jobs: not a number: {args[idx + 1]!r}")
            return 2
        del args[idx:idx + 2]
    unknown = [a for a in args if a.startswith("-") and a != "--rules"]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n"
              "usage: python -m repro lint [--rules] [--jobs N] "
              "[paths...]")
        return 2
    paths = [a for a in args if not a.startswith("-")] or [default_lint_root()]
    findings = lint_paths(paths, jobs=jobs)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("pd-lint: clean")
    return 0


def cmd_sanitize(argv: List[str],
                 commands: Dict[str, Callable[[], str]]) -> int:
    """Entry point for ``python -m repro sanitize``.

    ``commands`` is the experiment table of :mod:`repro.__main__`; each
    named experiment is re-run with ``ANALYSIS.race_detection`` enabled
    so every machine built along the way installs a
    :class:`~repro.analysis.ksan.RaceDetector` on its kernel heaps.
    """
    if not argv:
        print("usage: python -m repro sanitize <experiment> [...]\n"
              f"experiments: {', '.join(commands)}")
        return 2
    unknown = [name for name in argv if name not in commands]
    if unknown:
        print(f"unknown experiment(s) {', '.join(unknown)}; choose from "
              f"{', '.join(commands)}")
        return 2
    ksan.reset_active_detectors()
    previous = config.ANALYSIS.race_detection
    config.ANALYSIS.race_detection = True
    try:
        for name in argv:
            print(f"== sanitizing {name} ==")
            print(commands[name]())
    finally:
        config.ANALYSIS.race_detection = previous
    print("\n== KSan verdict ==")
    for detector in ksan.ACTIVE_DETECTORS:
        print(detector.summary())
    reports = ksan.active_race_reports()
    for report in reports:
        print()
        print(report.render())
    if reports:
        print(f"\nKSan: {len(reports)} cross-kernel race(s) detected")
        return 1
    print("KSan: no cross-kernel races detected")
    return 0


def _chaos_smoke() -> str:
    """The ``chaos`` pseudo-experiment of ``python -m repro lockdep``:
    the fault-injection smoke sweep, which exercises the IRQ-recovery
    and error paths the figure experiments never reach."""
    from ..experiments.chaos import run_chaos
    return run_chaos("pingpong", smoke=True).render()


def cmd_lockdep(argv: List[str],
                commands: Dict[str, Callable[[], str]]) -> int:
    """Entry point for ``python -m repro lockdep``.

    Re-runs the named experiments with ``ANALYSIS.lockdep`` enabled so
    every machine installs a
    :class:`~repro.analysis.lockdep.LockdepValidator`, then verifies
    dynamic/static consistency: a dependency edge observed at runtime
    that the static pass cannot see means the static view lies.
    """
    table = dict(commands)
    table.setdefault("chaos", _chaos_smoke)
    if not argv:
        print("usage: python -m repro lockdep <experiment> [...]\n"
              f"experiments: {', '.join(table)}")
        return 2
    unknown = [name for name in argv if name not in table]
    if unknown:
        print(f"unknown experiment(s) {', '.join(unknown)}; choose from "
              f"{', '.join(table)}")
        return 2
    lockdep_mod.reset_active_validators()
    previous = config.ANALYSIS.lockdep
    config.ANALYSIS.lockdep = True
    try:
        for name in argv:
            print(f"== lockdep {name} ==")
            print(table[name]())
    finally:
        config.ANALYSIS.lockdep = previous
    print("\n== lockdep verdict ==")
    for validator in lockdep_mod.ACTIVE_VALIDATORS:
        print(validator.summary())
    reports = lockdep_mod.active_lockdep_reports()
    for report in reports:
        print()
        print(report.render())
    graph, _findings = lockdep_mod.build_static_lock_graph()
    missing = [edge for key, edge
               in sorted(lockdep_mod.active_dynamic_edges().items())
               if not graph.has_edge(*key)]
    if missing:
        print("\ndynamic edges missing from the static lock graph "
              "(the static pass is blind to them):")
        for edge in missing:
            for line in edge.describe():
                print(f"  {line}")
    if reports or missing:
        print(f"\nlockdep: {len(reports)} hazard(s), "
              f"{len(missing)} unexplained dynamic edge(s)")
        return 1
    print("lockdep: no lock-order hazards; every dynamic dependency "
          "edge is in the static graph")
    return 0


def cmd_lockgraph(argv: List[str]) -> int:
    """Entry point for ``python -m repro lockgraph``."""
    want_dot = "--dot" in argv
    unknown = [a for a in argv if a.startswith("-") and a != "--dot"]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n"
              "usage: python -m repro lockgraph [--dot] [paths...]")
        return 2
    paths = [a for a in argv if not a.startswith("-")]
    graph, findings = lockdep_mod.build_static_lock_graph(paths or None)
    bad = (bool(findings) or bool(graph.cycles())
           or bool(graph.hierarchy_violations()))
    if want_dot:
        print(graph.to_dot())
        return 1 if bad else 0
    from ..core.lockclasses import REGISTRY
    print("declared hierarchy:")
    print(REGISTRY.hierarchy_table())
    print()
    print(graph.render())
    for finding in findings:
        print(finding.render())
    if bad:
        print(f"lockgraph: {len(findings)} finding(s), "
              f"{len(graph.cycles())} cycle(s), "
              f"{len(graph.hierarchy_violations())} hierarchy "
              f"violation(s)")
        return 1
    print("lockgraph: acyclic and hierarchy-clean")
    return 0
