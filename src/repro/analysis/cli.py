"""Command-line drivers for the analysis layer.

``python -m repro lint [--rules] [paths...]``
    Run the PicoDriver protocol lint (default target: the installed
    ``repro`` package source).  Exit status 1 if findings remain.

``python -m repro sanitize <experiment> [<experiment>...]``
    Re-run one or more of the paper's experiments with the KSan race
    detector installed on every node's shared kernel heap, then print
    each detector's verdict.  Exit status 1 if any race was found.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .. import config
from . import ksan
from .lint import default_lint_root, lint_paths, rules_table


def cmd_lint(argv: List[str]) -> int:
    """Entry point for ``python -m repro lint``."""
    if "--rules" in argv:
        print(rules_table())
        return 0
    unknown = [a for a in argv if a.startswith("-") and a != "--rules"]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n"
              "usage: python -m repro lint [--rules] [paths...]")
        return 2
    paths = [a for a in argv if not a.startswith("-")] or [default_lint_root()]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("pd-lint: clean")
    return 0


def cmd_sanitize(argv: List[str],
                 commands: Dict[str, Callable[[], str]]) -> int:
    """Entry point for ``python -m repro sanitize``.

    ``commands`` is the experiment table of :mod:`repro.__main__`; each
    named experiment is re-run with ``ANALYSIS.race_detection`` enabled
    so every machine built along the way installs a
    :class:`~repro.analysis.ksan.RaceDetector` on its kernel heaps.
    """
    if not argv:
        print("usage: python -m repro sanitize <experiment> [...]\n"
              f"experiments: {', '.join(commands)}")
        return 2
    unknown = [name for name in argv if name not in commands]
    if unknown:
        print(f"unknown experiment(s) {', '.join(unknown)}; choose from "
              f"{', '.join(commands)}")
        return 2
    ksan.reset_active_detectors()
    previous = config.ANALYSIS.race_detection
    config.ANALYSIS.race_detection = True
    try:
        for name in argv:
            print(f"== sanitizing {name} ==")
            print(commands[name]())
    finally:
        config.ANALYSIS.race_detection = previous
    print("\n== KSan verdict ==")
    for detector in ksan.ACTIVE_DETECTORS:
        print(detector.summary())
    reports = ksan.active_race_reports()
    for report in reports:
        print()
        print(report.render())
    if reports:
        print(f"\nKSan: {len(reports)} cross-kernel race(s) detected")
        return 1
    print("KSan: no cross-kernel races detected")
    return 0
