"""KSan: an Eraser-style lockset race detector for the shared kernel heap.

The paper's porting rules (section 3.3) require every piece of Linux
driver state touched by the McKernel fast path to be protected by a
*shared* spin lock with compatible implementations.  Nothing in the
model enforced that — a PicoDriver could silently write ``sdma_state``
without ``hfi1.sdma_submit`` and the simulation would happily produce
numbers.  KSan closes that hole with the classic lockset discipline of
Eraser (Savage et al., SOSP '97), adapted to the two-kernel setting:

* Every :class:`~repro.hw.memory.SharedHeap` read/write is reported to
  an installed :class:`RaceDetector` (``heap.monitor``).  The accessor
  layers (:class:`~repro.core.structs.StructInstance`,
  :class:`~repro.core.structs.StructView`,
  :class:`~repro.core.sync.CrossKernelSpinLock`) annotate each access
  with the performing kernel, a ``struct.field`` label and whether the
  access models an atomic instruction (``LOCK XADD`` / ``cmpxchg``).

* The detector maintains, per heap word, the *candidate lockset* — the
  intersection of the cross-kernel spin locks held over every
  non-atomic access since the word became shared between kernels.
  Words in their single-kernel initialisation phase are exempt
  (Eraser's *exclusive* state), so Linux building driver structures in
  ``probe()``/``open()`` before handing them to the LWK does not alarm.

* A word written by two different kernels with an empty candidate
  lockset and at least one non-atomic write is a race: it is reported
  immediately with both access sites, simulation timestamps, the
  locksets held at each access, and the recent lock holder history.

Accesses that model atomic hardware instructions never refine the
candidate lockset and never count as racy writes — this is how the
driver's ``atomic_t``-style reference counts (``user_sdma_pkt_q.n_reqs``)
are expressed race-free without a lock.

Granularity note: words are keyed by ``(address, size)`` exactly as
accessed.  Driver state is only ever accessed through ABI/DWARF field
offsets, so both kernels use identical keys; overlapping accesses of
*different* widths to the same bytes are not correlated.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

#: module-level registry of live detectors, in construction order — the
#: ``python -m repro sanitize`` driver aggregates reports from here after
#: running an experiment that built machines internally.
ACTIVE_DETECTORS: List["RaceDetector"] = []

#: instrumentation-layer files skipped when attributing an access site
_SKIP_FILES = frozenset({"memory.py", "structs.py", "extract.py", "ksan.py"})


def reset_active_detectors() -> None:
    """Forget all registered detectors (start of a sanitizer run)."""
    ACTIVE_DETECTORS.clear()


def active_race_reports() -> List["RaceReport"]:
    """All races found by every registered detector, in detection order."""
    reports: List[RaceReport] = []
    for det in ACTIVE_DETECTORS:
        reports.extend(det.races)
    return reports


def _call_site(depth: int = 2) -> str:
    """``file.py:line in function`` of the first frame outside the
    instrumentation layers (the driver/experiment code that accessed)."""
    frame = sys._getframe(depth)
    while frame is not None:
        base = os.path.basename(frame.f_code.co_filename)
        if base not in _SKIP_FILES:
            return f"{base}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover - frames always bottom out


@dataclass(frozen=True)
class HeapAccess:
    """One attributed shared-heap access (a sample kept for provenance)."""

    kernel: str
    kind: str                      #: "read" or "write"
    addr: int
    size: int
    label: str                     #: "struct.field" (or "lock:<name>")
    site: str                      #: "file.py:line in function"
    time: float                    #: simulation time of the access
    lockset: FrozenSet[str]        #: cross-kernel locks held by ``kernel``
    atomic: bool                   #: models an atomic instruction

    def describe(self) -> str:
        """One-line rendering used inside race reports."""
        held = "{" + ", ".join(sorted(self.lockset)) + "}"
        return (f"{self.kind:5s} from {self.kernel:8s} at t={self.time:.6g} "
                f"locks={held}{' [atomic]' if self.atomic else ''} "
                f"— {self.site}")


@dataclass
class RaceReport:
    """A cross-kernel lockset violation on one shared-heap word."""

    addr: int
    size: int
    label: str
    #: the conflicting accesses: first write per kernel, plus the access
    #: that completed the violation
    accesses: Tuple[HeapAccess, ...]
    #: recent (time, lock, kernel, event) lock transitions for context
    holder_history: Tuple[Tuple[float, str, str, str], ...] = ()

    def render(self) -> str:
        """Multi-line human-readable report with full provenance."""
        lines = [f"race on {self.label} ({self.size} bytes at "
                 f"{self.addr:#018x}): lockset intersection is empty"]
        for acc in self.accesses:
            lines.append(f"  {acc.describe()}")
        if self.holder_history:
            lines.append("  lock holder history (oldest first):")
            for when, lock, kernel, event in self.holder_history:
                lines.append(f"    t={when:.6g} {kernel} {event} {lock}")
        return "\n".join(lines)


class _WordState:
    """Per-word Eraser state: exclusive/shared phase, candidate lockset,
    writer bookkeeping and provenance samples."""

    __slots__ = ("label", "first_kernel", "shared", "candidate", "writers",
                 "nonatomic_writers", "samples", "reported")

    def __init__(self, kernel: str, label: str):
        self.label = label
        self.first_kernel = kernel
        self.shared = False
        #: None means "top" — every lock — i.e. not refined yet
        self.candidate: Optional[Set[str]] = None
        self.writers: Set[str] = set()
        self.nonatomic_writers: Set[str] = set()
        #: first access per (kernel, kind) — the provenance samples
        self.samples: Dict[Tuple[str, str], HeapAccess] = {}
        self.reported = False


class RaceDetector:
    """The KSan monitor: install on a heap via ``heap.monitor = detector``.

    The accessor layers call :meth:`annotate` immediately before the raw
    heap operation (everything runs single-threaded inside the
    discrete-event simulator, so the one-slot annotation cannot be
    interleaved), and :class:`~repro.hw.memory.SharedHeap` calls
    :meth:`on_access` from inside ``read``/``write``.  Lock transitions
    arrive through :meth:`on_lock_acquired`/:meth:`on_lock_released`.
    """

    def __init__(self, sim=None, name: str = "ksan", register: bool = True):
        self.sim = sim
        self.name = name
        self.races: List[RaceReport] = []
        self._held: Dict[str, Set[str]] = {}
        self._words: Dict[Tuple[int, int], _WordState] = {}
        self._pending: Optional[Tuple[Optional[str], str, bool]] = None
        self._lock_history: Deque[Tuple[float, str, str, str]] = deque(
            maxlen=32)
        #: raw heap accesses seen without an annotation (unattributed —
        #: allocator bookkeeping, test pokes); excluded from the analysis
        self.unattributed = 0
        if register:
            ACTIVE_DETECTORS.append(self)

    # -- instrumentation entry points ------------------------------------

    def annotate(self, kernel: Optional[str], label: str = "",
                 atomic: bool = False) -> None:
        """Declare the attribution of the *next* heap access (one-shot)."""
        self._pending = (kernel, label, atomic)

    def on_lock_acquired(self, lock_name: str, kernel: str) -> None:
        """A :class:`CrossKernelSpinLock` was granted to ``kernel``."""
        self._held.setdefault(kernel, set()).add(lock_name)
        self._lock_history.append((self._now(), lock_name, kernel,
                                   "acquired"))

    def on_lock_released(self, lock_name: str, kernel: str) -> None:
        """``kernel`` released a :class:`CrossKernelSpinLock`."""
        self._held.get(kernel, set()).discard(lock_name)
        self._lock_history.append((self._now(), lock_name, kernel,
                                   "released"))

    def on_free(self, addr: int, size: int, heap) -> None:
        """Heap hook: an allocation was freed — drop the shadow state of
        every word inside it, so a recycled address starts a fresh
        Eraser history instead of inheriting the dead object's."""
        stale = [key for key in self._words
                 if addr <= key[0] < addr + size]
        for key in stale:
            del self._words[key]

    def on_access(self, kind: str, addr: int, size: int, heap) -> None:
        """Heap hook: fold one read/write into the lockset analysis."""
        pending, self._pending = self._pending, None
        if pending is None or pending[0] is None:
            self.unattributed += 1
            return
        kernel, label, atomic = pending
        lockset = frozenset(self._held.get(kernel, ()))
        access = HeapAccess(kernel=kernel, kind=kind, addr=addr, size=size,
                            label=label, site=_call_site(2), time=self._now(),
                            lockset=lockset, atomic=atomic)
        key = (addr, size)
        state = self._words.get(key)
        if state is None:
            state = self._words[key] = _WordState(kernel, label)
        if label:
            state.label = label
        state.samples.setdefault((kernel, kind), access)
        if kind == "write":
            state.writers.add(kernel)
            if not atomic:
                state.nonatomic_writers.add(kernel)
        # Eraser phases: no lockset refinement while a single kernel owns
        # the word; refinement starts at the access that shares it.
        if state.shared or kernel != state.first_kernel:
            state.shared = True
            if not atomic:
                if state.candidate is None:
                    state.candidate = set(lockset)
                else:
                    state.candidate &= lockset
        self._check(state, access)

    # -- results ----------------------------------------------------------

    def words_tracked(self) -> int:
        """Number of distinct shared-heap words seen with attribution."""
        return len(self._words)

    def summary(self) -> str:
        """One-line status for the sanitizer CLI."""
        status = (f"{len(self.races)} race(s)" if self.races
                  else "no races")
        return (f"[{self.name}] {status}; {self.words_tracked()} words "
                f"tracked, {self.unattributed} unattributed accesses")

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _check(self, state: _WordState, access: HeapAccess) -> None:
        """Report the word once when the Eraser condition trips."""
        if (state.reported or not state.shared
                or len(state.writers) < 2
                or not state.nonatomic_writers
                or state.candidate is None or state.candidate):
            return
        state.reported = True
        # both access sites: first write per kernel, plus the access that
        # completed the violation if it is not one of those already
        picked = [state.samples[key] for key in sorted(state.samples)
                  if key[1] == "write"]
        if access not in picked:
            picked.append(access)
        self.races.append(RaceReport(
            addr=access.addr, size=access.size, label=state.label,
            accesses=tuple(picked),
            holder_history=tuple(self._lock_history)))
