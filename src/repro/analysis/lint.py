"""PicoDriver protocol lint: static AST checks for the porting rules.

The paper's porting methodology (sections 3.1-3.4) is a *protocol*:
fast paths must stay pure (no offloading machinery reachable from them),
shared locks must be released on every path, simulation processes must
actually be generators, DWARF layouts must be version-checked before
use, and raw shared-heap word access is confined to the blessed accessor
modules.  Amani et al. ("Automatic Verification of Message-Based Device
Drivers") show this class of driver-protocol property is statically
checkable; this module checks it for our model with nothing but the
stdlib ``ast``.

Rules (each finding carries a fix-it hint):

=======  ==============================================================
PD001    fast-path purity: no offload/IKC/syscall-dispatch call is
         reachable from a ``fast_*`` method of a PicoDriver class
PD002    lock discipline: every ``yield from X.acquire(...)`` has a
         matching ``X.release(...)`` inside a ``finally`` block
PD003    sim-process hygiene: ``fast_*`` methods must be generators,
         and generator methods must not be bare-called (their process
         would be silently discarded)
PD004    layout-version guard: a PicoDriver class constructing a
         ``StructView`` must call ``require_layout_version``
PD005    raw heap access: no ``heap.read_u``/``write_u``/``read``/
         ``write`` in ``repro/core`` outside ``structs.py``/``sync.py``
PD006    pinned-memory discipline: no ``get_user_pages`` reachable from
         a fast path (LWK memory is pinned by construction, sec. 3.4)
PD007    fault-hook gating: every fault-injection draw (``*.fires(...)``)
         sits behind a ``config.FAULTS`` check, so zero-fault runs stay
         branch-cheap and bit-identical
PD008    lock-order hierarchy: nested ``acquire`` must follow the
         rank-increasing order declared in ``repro.core.lockclasses``
         (checked by the static half of :mod:`repro.analysis.lockdep`)
PD009    no timed wait in a critical section: no ``yield *.timeout/
         wait(...)`` while a cross-kernel lock is held — the peer
         kernel spins on the lock word for the whole wait
PD011    trace-hook gating: every span emission (``begin_span`` /
         ``end_span`` / ``instant_span`` / ``complete_span`` /
         ``add_flow``) sits behind a ``config.TRACE`` check, so
         untraced runs stay branch-cheap and bit-identical
PD012    choice-point-hook gating: every controlled-scheduler hook
         (``choose_ready`` / ``on_step_begin`` / ``on_step_end`` /
         ``on_process_resumed``) sits behind an ``ANALYSIS.check`` or
         ``scheduler``-is-installed check, so unchecked runs keep the
         single cheap pop path and stay bit-identical
PD013    guard-hook gating: every guard-plane hook on the data path
         (``record_success`` / ``record_failure`` / ``admits`` /
         ``pick_healthy_engine`` / ``park_if_suspended`` /
         ``acquire_slots`` / ``release_slots``) sits behind a
         ``config.GUARD`` or ``guard``-is-installed check, so
         unguarded runs stay branch-cheap and bit-identical
PD014    storage recovery-hook gating: in the replicated-storage stack
         (``repro/linux/pxd``, the ``pxd_pico`` chassis) every
         replica-recovery hook (``_maybe_probe`` / ``begin_probe`` /
         ``suspend`` / ``resume``) sits behind a ``config.GUARD`` or
         ``guard``-is-installed check; the fault-draw half of the
         storage contract is PD007 tree-wide, and the blockdev device
         model is exempt (it moves bytes unconditionally)
PD016    tune-hook gating: every PicoTune probe hook
         (``on_machine_built``) sits behind a ``config.TUNE`` or
         ``probe``-is-installed check, so untuned runs stay
         branch-cheap and bit-identical (``repro/tune`` exempt)
PD100    unused suppression: a ``# pd-ignore`` comment that suppresses
         nothing (rots silently and hides future real findings)
=======  ==============================================================

Per-line suppression: append ``# pd-ignore`` (all rules) or
``# pd-ignore[PD001, PD004]`` (specific rules) to the offending line.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: rule code -> (title, fix-it hint)
RULES: Dict[str, Tuple[str, str]] = {
    "PD000": ("parse failure",
              "fix the Python syntax; no protocol rule can run on an "
              "unparseable module"),
    "PD001": ("fast-path purity",
              "run the call on the slow path, or offload the whole "
              "syscall by returning FastPathDecision.offload()"),
    "PD002": ("lock discipline",
              "wrap the critical section in try/finally and release the "
              "lock in the finally block"),
    "PD003": ("sim-process hygiene",
              "drive the generator with 'yield from', or hand it to "
              "sim.process(...)"),
    "PD004": ("layout-version guard",
              "call self.require_layout_version(layout, module_version) "
              "in attach() before building StructViews"),
    "PD005": ("raw heap access",
              "go through StructInstance/StructView (repro.core.structs) "
              "or CrossKernelSpinLock instead of raw heap words"),
    "PD006": ("pinned-memory discipline",
              "fast paths walk pinned LWK page tables "
              "(task.pagetable.phys_spans); get_user_pages belongs to "
              "the Linux slow path"),
    "PD007": ("fault-hook gating",
              "guard the injector draw with 'if FAULTS.enabled and "
              "inj is not None and inj.fires(...)' so disabled runs "
              "never touch the fault RNG"),
    "PD008": ("lock-order hierarchy",
              "acquire lock classes in the rank-increasing order "
              "declared in repro.core.lockclasses (take the lower rank "
              "first), or fix the declaration if the order is right"),
    "PD009": ("no timed wait in critical section",
              "release the cross-kernel lock before yielding the timed "
              "wait; the peer kernel spins on the lock word until the "
              "wait elapses"),
    "PD011": ("trace-hook gating",
              "guard the span emission with 'if TRACE.enabled' (or the "
              "'... if TRACE.enabled else None' expression form) so "
              "untraced runs never touch the collector"),
    "PD012": ("choice-point-hook gating",
              "guard the scheduler hook with 'if self.scheduler is not "
              "None' (or an ANALYSIS.check test) so uncontrolled runs "
              "keep the single cheap pop path"),
    "PD013": ("guard-hook gating",
              "guard the hook with 'if GUARD.enabled' or a "
              "'guard'-is-installed test (if guard is not None: ...) so "
              "unguarded runs never consult the health manager"),
    "PD014": ("storage recovery-hook gating",
              "guard the probe/suspend recovery hook with 'if "
              "GUARD.enabled' or a 'guard'-is-installed test so "
              "unguarded storage runs never touch the health plane"),
    # The PD015 family is produced by ``python -m repro vet`` (the
    # whole-program analysis), not by lint; the entries live here so
    # vet findings share lint's Finding/hint/suppression machinery and
    # show up in the one rule table.
    "PD015.1": ("fast path transitively offloads",
                "no callee reachable from a fast_* entry point may "
                "reach the IKC offload machinery; claim less or move "
                "the work to the slow path"),
    "PD015.2": ("fast path transitively sleeps",
                "no callee reachable from a fast_* entry point may "
                "reach a sleeping service (rcu_synchronize & co); "
                "defer the sleep to the Linux slow path"),
    "PD015.3": ("fast path transitively takes page references",
                "no callee reachable from a fast_* entry point may "
                "call get_user_pages; walk the LWK's pinned page "
                "tables instead"),
    "PD015.4": ("sleep or wait in atomic context",
                "an IRQ-context function must never reach a sleeping "
                "service, and a callee that may sleep or wait must "
                "not be invoked while a spinlock class is held"),
    "PD015.5": ("static race candidate",
                "cross-kernel accesses to one struct field need a "
                "common lock class or atomic accessors; if the race "
                "is benign by construction, say why in a comment and "
                "suppress with '# pd-ignore[PD015.5]'"),
    "PD015.6": ("typed error without handler",
                "every typed error a fault point can raise needs a "
                "handler somewhere on the path to the dispatcher "
                "boundary; catch it or stop raising it"),
    "PD016": ("tune-hook gating",
              "guard the probe hook with 'if TUNE.enabled' or a "
              "'probe'-is-installed test (if probe is not None: ...) "
              "so untuned runs never touch the exploration service"),
    "PD100": ("unused suppression",
              "delete the stale '# pd-ignore' comment (or narrow its "
              "rule list to the codes actually found on the line)"),
}

#: call names that mark the offloading / syscall-dispatch machinery
_OFFLOAD_NAMES = frozenset({"_offload", "offload", "offload_syscall",
                            "dispatch_syscall", "syscall"})

#: modules in repro/core allowed to touch raw heap words
_RAW_HEAP_ALLOWED = frozenset({"structs.py", "sync.py"})

_IGNORE_RE = re.compile(r"#\s*pd-ignore(?:\[([A-Za-z0-9_.,\s]*)\])?")


def code_matches(code: str, listed: str) -> bool:
    """True if finding ``code`` is covered by suppression entry
    ``listed`` — exact, or a family prefix (``PD015`` covers
    ``PD015.2``)."""
    return code == listed or code.startswith(listed + ".")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        """The rule's fix-it hint."""
        return RULES[self.code][1]

    def render(self) -> str:
        """``path:line:col: CODE message (fix: hint)``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message} (fix: {self.hint})")


def rules_table() -> str:
    """The rule table shown by ``python -m repro lint --rules``."""
    lines = ["code     rule                                       fix",
             "-------  -----------------------------------------  "
             + "-" * 40]
    for code, (title, hint) in sorted(RULES.items()):
        lines.append(f"{code:7s}  {title:41s}  {hint}")
    return "\n".join(lines)


# --- AST helpers -------------------------------------------------------------

def _dotted(node: ast.AST) -> str:
    """Dotted path of a call target, e.g. ``self.lwk.ikc.call``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


def _walk_shallow(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.FunctionDef) -> bool:
    """True if the function body itself contains ``yield``/``yield from``."""
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _walk_shallow(fn))


def _self_calls(fn: ast.FunctionDef) -> Set[str]:
    """Names of same-instance methods called as ``self.<m>(...)``."""
    out: Set[str] = set()
    for node in _walk_shallow(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            out.add(node.func.attr)
    return out


class _ClassInfo:
    """A class definition digested for the PicoDriver rules."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.methods: Dict[str, ast.FunctionDef] = {
            item.name: item for item in node.body
            if isinstance(item, ast.FunctionDef)}
        self.fast_methods = [m for m in self.methods if m.startswith("fast_")]
        base_names = [_dotted(b).rsplit(".", 1)[-1] for b in node.bases]
        self.pico_like = (any("PicoDriver" in b for b in base_names)
                          or bool(self.fast_methods))

    def reachable_from_fast(self) -> Set[str]:
        """Method names reachable from any ``fast_*`` via self-calls."""
        seen: Set[str] = set()
        frontier = list(self.fast_methods)
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.methods:
                continue
            seen.add(name)
            frontier.extend(self._self_call_cache(name))
        return seen

    def _self_call_cache(self, name: str) -> Set[str]:
        return _self_calls(self.methods[name])


# --- rule passes -------------------------------------------------------------

def _check_fast_path_calls(path: str, cls: _ClassInfo,
                           findings: List[Finding]) -> None:
    """PD001 + PD006: scan calls in methods reachable from fast paths."""
    for mname in sorted(cls.reachable_from_fast()):
        fn = cls.methods[mname]
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            segments = dotted.split(".")
            where = (f"in {cls.node.name}.{mname} (reachable from "
                     f"{', '.join(sorted(cls.fast_methods))})")
            if segments[-1] in _OFFLOAD_NAMES or "ikc" in segments[:-1]:
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "PD001",
                    f"fast path calls offload/IKC machinery "
                    f"'{dotted}' {where}"))
            if segments[-1] == "get_user_pages":
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "PD006",
                    f"fast path takes page references via '{dotted}' "
                    f"{where}"))


def _release_sites(fn: ast.FunctionDef,
                   receiver: str) -> Tuple[bool, bool]:
    """(any release of receiver, any release inside a finally block)."""
    any_release = in_finally = False

    def matches(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
                and _dotted(node.func.value) == receiver)

    for node in _walk_shallow(fn):
        if matches(node):
            any_release = True
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if matches(sub):
                        in_finally = True
    return any_release, in_finally


def _check_lock_discipline(path: str, tree: ast.AST,
                           findings: List[Finding]) -> None:
    """PD002: every ``yield from X.acquire(...)`` pairs with a
    ``X.release(...)`` in a ``finally``."""
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef):
            continue
        for node in _walk_shallow(fn):
            if not (isinstance(node, ast.YieldFrom)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "acquire"):
                continue
            receiver = _dotted(node.value.func.value)
            any_release, in_finally = _release_sites(fn, receiver)
            if not any_release:
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "PD002",
                    f"'{receiver}.acquire' in {fn.name} has no matching "
                    f"'{receiver}.release'"))
            elif not in_finally:
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "PD002",
                    f"'{receiver}.release' in {fn.name} is not in a "
                    f"finally block; an exception leaks the lock"))


def _check_process_hygiene(path: str, cls: _ClassInfo,
                           findings: List[Finding]) -> None:
    """PD003: fast_* methods are generators; no bare generator calls."""
    generators = {name for name, fn in cls.methods.items()
                  if _is_generator(fn)}
    for name in sorted(cls.fast_methods):
        fn = cls.methods[name]
        if name not in generators:
            findings.append(Finding(
                path, fn.lineno, fn.col_offset, "PD003",
                f"fast-path method {cls.node.name}.{name} is not a "
                f"generator; it cannot run as a simulation process"))
    for mname, fn in sorted(cls.methods.items()):
        for node in _walk_shallow(fn):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.func.value.id == "self"):
                continue
            callee = node.value.func.attr
            if callee in generators:
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "PD003",
                    f"bare call to generator method 'self.{callee}' in "
                    f"{cls.node.name}.{mname}; the process is created "
                    f"and silently discarded"))


def _check_layout_guard(path: str, cls: _ClassInfo,
                        findings: List[Finding]) -> None:
    """PD004: StructView construction requires require_layout_version."""
    if not cls.pico_like:
        return
    builds: List[ast.Call] = []
    guarded = False
    for fn in cls.methods.values():
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            last = _dotted(node.func).rsplit(".", 1)[-1]
            if last == "StructView":
                builds.append(node)
            if last == "require_layout_version":
                guarded = True
    if guarded:
        return
    for node in builds:
        findings.append(Finding(
            path, node.lineno, node.col_offset, "PD004",
            f"{cls.node.name} builds a StructView but never calls "
            f"require_layout_version; a stale DWARF layout would "
            f"silently read wrong bytes"))


def _check_raw_heap(path: str, tree: ast.AST,
                    findings: List[Finding]) -> None:
    """PD005: raw heap word access confined to structs.py/sync.py."""
    parts = os.path.normpath(path).split(os.sep)
    if "core" not in parts or os.path.basename(path) in _RAW_HEAP_ALLOWED:
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("read", "write", "read_u", "write_u")):
            continue
        receiver = _dotted(node.func.value)
        if "heap" in receiver.rsplit(".", 1)[-1].lower():
            findings.append(Finding(
                path, node.lineno, node.col_offset, "PD005",
                f"raw shared-heap access '{receiver}.{node.func.attr}' "
                f"outside structs.py/sync.py"))


def _refs_config(node: ast.AST, config_names: Iterable[str]) -> bool:
    """True if the expression mentions any of the named guards anywhere."""
    names = frozenset(config_names)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in names:
            return True
    return False


def _check_config_gating(path: str, tree: ast.AST,
                         findings: List[Finding],
                         config_names: Tuple[str, ...],
                         attrs: Iterable[str], code: str,
                         describe: str) -> None:
    """Shared gating pass behind PD007, PD011 and PD012.

    A call ``*.<attr>(...)`` with ``attr`` in ``attrs`` is considered
    guarded when it sits in the body of an ``if`` (or the then-branch of
    a conditional expression) whose test references any name in
    ``config_names``, or — matching the hooks' actual idiom — when it
    appears in an ``and`` chain *after* an operand that references one,
    as in ``if FAULTS.enabled and inj and inj.fires(...)``.
    """
    attrs = frozenset(attrs)
    label = "/".join(config_names)

    def scan(node: ast.AST, guarded: bool) -> None:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in attrs
                and not guarded):
            findings.append(Finding(
                path, node.lineno, node.col_offset, code,
                f"{describe} '{_dotted(node.func)}' is not guarded by "
                f"a config.{label} check"))
        if isinstance(node, ast.If):
            scan(node.test, guarded)
            body_guarded = guarded or _refs_config(node.test, config_names)
            for stmt in node.body:
                scan(stmt, body_guarded)
            for stmt in node.orelse:
                scan(stmt, guarded)
            return
        if isinstance(node, ast.IfExp):
            scan(node.test, guarded)
            scan(node.body,
                 guarded or _refs_config(node.test, config_names))
            scan(node.orelse, guarded)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            chain_guarded = guarded
            for operand in node.values:
                scan(operand, chain_guarded)
                if _refs_config(operand, config_names):
                    chain_guarded = True
            return
        for child in ast.iter_child_nodes(node):
            scan(child, guarded)

    scan(tree, False)


def _check_fault_gating(path: str, tree: ast.AST,
                        findings: List[Finding]) -> None:
    """PD007: every ``*.fires(...)`` draw is behind a FAULTS check."""
    _check_config_gating(path, tree, findings, ("FAULTS",), ("fires",),
                         "PD007", "fault-injection draw")


#: the SpanCollector emission surface PD011 polices at call sites
_SPAN_EMISSION_ATTRS = frozenset({"begin_span", "end_span", "instant_span",
                                  "complete_span", "add_flow"})


def _check_trace_gating(path: str, tree: ast.AST,
                        findings: List[Finding]) -> None:
    """PD011: every span emission is behind a TRACE check.

    The observability subsystem itself (``repro/obs``) is exempt — the
    collector's own methods and the exporters necessarily call the
    emission surface unconditionally.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "obs" in parts:
        return
    _check_config_gating(path, tree, findings, ("TRACE",),
                         _SPAN_EMISSION_ATTRS, "PD011", "span emission")


#: the controlled-scheduler hook surface PD012 polices at call sites
_CHECK_HOOK_ATTRS = frozenset({"choose_ready", "on_step_begin",
                               "on_step_end", "on_process_resumed"})


def _check_scheduler_gating(path: str, tree: ast.AST,
                            findings: List[Finding]) -> None:
    """PD012: every controlled-scheduler hook is behind a gate.

    Acceptable gates are an ``ANALYSIS.check`` test or — matching the
    engine's actual idiom — a ``scheduler``-is-installed test
    (``if self.scheduler is not None: ...``), since the no-op default
    is precisely ``scheduler is None``.  The model checker itself
    (``repro/analysis/check*.py``) is exempt: the explorer and its
    fixtures drive the hook surface unconditionally by design.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "analysis" in parts and os.path.basename(path).startswith("check"):
        return
    _check_config_gating(path, tree, findings,
                         ("ANALYSIS", "check", "scheduler"),
                         _CHECK_HOOK_ATTRS, "PD012",
                         "controlled-scheduler hook")


#: the GuardManager/PathBreaker/CongestionGate hook surface PD013
#: polices at call sites
_GUARD_HOOK_ATTRS = frozenset({"record_success", "record_failure", "admits",
                               "pick_healthy_engine", "park_if_suspended",
                               "acquire_slots", "release_slots"})


def _check_guard_gating(path: str, tree: ast.AST,
                        findings: List[Finding]) -> None:
    """PD013: every guard-plane hook is behind a gate.

    Acceptable gates are a ``GUARD.enabled`` test or — matching the
    drivers' actual idiom — a ``guard``-is-installed test
    (``if guard is not None: ...``), since the no-op default is
    precisely ``guard is None``.  The guard plane itself
    (``repro/guard``) is exempt: the manager, breakers and gates call
    each other's hook surface unconditionally by design.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "guard" in parts:
        return
    _check_config_gating(path, tree, findings, ("GUARD", "guard"),
                         _GUARD_HOOK_ATTRS, "PD013", "guard-plane hook")


#: the pxd replica-recovery hook surface PD014 polices at call sites
_STORAGE_RECOVERY_ATTRS = frozenset({"_maybe_probe", "begin_probe",
                                     "suspend", "resume"})


def _check_storage_gating(path: str, tree: ast.AST,
                          findings: List[Finding]) -> None:
    """PD014: every storage recovery hook is behind a gate.

    Scoped to the replicated-storage stack (``repro/linux/pxd`` and the
    ``pxd_pico`` chassis): the probe-kick and suspend/resume surface
    there extends PD013's generic guard hooks with the names the pxd
    recovery FSM actually uses, so a zero-fault unguarded storage run
    never branches into the health plane.  The fault-draw half of the
    storage contract (``*.fires(...)`` behind ``FAULTS``) is already
    enforced tree-wide by PD007.  ``repro/hw/blockdev.py`` is exempt:
    the device model only moves bytes and delivers interrupts — its
    watchdog redelivery must run unconditionally, guard plane or not —
    and the guard plane itself (``repro/guard``) is exempt as with
    PD013.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "guard" in parts or os.path.basename(path) == "blockdev.py":
        return
    if "pxd" not in parts and os.path.basename(path) != "pxd_pico.py":
        return
    _check_config_gating(path, tree, findings, ("GUARD", "guard"),
                         _STORAGE_RECOVERY_ATTRS, "PD014",
                         "storage recovery hook")


#: the PicoTune probe hook surface PD016 polices at call sites
_TUNE_HOOK_ATTRS = frozenset({"on_machine_built"})


def _check_tune_gating(path: str, tree: ast.AST,
                       findings: List[Finding]) -> None:
    """PD016: every PicoTune probe hook is behind a TUNE gate.

    The design-space-exploration service observes simulator-side state
    through exactly one hook (``probe.on_machine_built``); like the
    other opt-in planes it must cost untuned runs nothing, so every
    call site sits behind a ``TUNE``/``probe`` check.  The tune
    subsystem itself (``repro/tune``) is exempt: the environment and
    its probes drive the hook surface unconditionally by design.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "tune" in parts:
        return
    _check_config_gating(path, tree, findings, ("TUNE", "probe"),
                         _TUNE_HOOK_ATTRS, "PD016", "PicoTune probe hook")


# --- driver ------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    from . import astcache
    return lint_parsed(astcache.parse_source(source, path))


def lint_parsed(module) -> List[Finding]:
    """Lint one already-parsed :class:`~repro.analysis.astcache.ParsedModule`
    (the shared-cache entry point: lint, lockgraph and vet all reuse the
    same parse)."""
    path, source = module.path, module.source
    if not module.ok:
        exc = module.error
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        "PD000", f"syntax error: {exc.msg}")]
    tree = module.tree
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            cls = _ClassInfo(node)
            _check_process_hygiene(path, cls, findings)
            _check_layout_guard(path, cls, findings)
            if cls.pico_like:
                _check_fast_path_calls(path, cls, findings)
    _check_lock_discipline(path, tree, findings)
    _check_raw_heap(path, tree, findings)
    _check_fault_gating(path, tree, findings)
    _check_trace_gating(path, tree, findings)
    _check_scheduler_gating(path, tree, findings)
    _check_guard_gating(path, tree, findings)
    _check_storage_gating(path, tree, findings)
    _check_tune_gating(path, tree, findings)
    # PD008/PD009 live in the lockdep module (they share its static
    # lock-graph walker); imported here to keep lint importable from it
    from .lockdep import check_lock_order
    check_lock_order(path, tree, findings)
    lines = source.splitlines()
    kept = [f for f in findings if not _suppressed(lines, f)]
    # PD100 is judged against the *pre*-suppression findings and added
    # after filtering, so an unused-suppression report cannot suppress
    # itself
    kept.extend(_unused_suppressions(path, source, findings))
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.code))


def _suppressed(lines: Sequence[str], finding: Finding) -> bool:
    """True if the finding's line carries a matching ``# pd-ignore``."""
    if not (1 <= finding.line <= len(lines)):
        return False
    match = _IGNORE_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group(1)
    if codes is None:
        return True
    listed = {c.strip() for c in codes.split(",") if c.strip()}
    return any(code_matches(finding.code, c) for c in listed)


def _unused_suppressions(path: str, source: str,
                         findings: List[Finding]) -> List[Finding]:
    """PD100: ``# pd-ignore`` comments that suppress nothing.

    A bare ignore on a line with no findings, or a targeted ignore
    listing codes none of which were found on that line, is dead weight:
    it documents a violation that no longer exists and will silently
    swallow the next real one.  Only genuine COMMENT tokens count — a
    ``pd-ignore`` mentioned inside a docstring is prose, not a
    suppression.
    """
    by_line: Dict[int, Set[str]] = {}
    for finding in findings:
        by_line.setdefault(finding.line, set()).add(finding.code)
    out: List[Finding] = []
    for lineno, col, comment in _comment_tokens(source):
        match = _IGNORE_RE.search(comment)
        if match is None:
            continue
        found = by_line.get(lineno, set())
        codes = match.group(1)
        if codes is None:
            if not found:
                out.append(Finding(
                    path, lineno, col + match.start(), "PD100",
                    "blanket '# pd-ignore' suppresses nothing on this "
                    "line"))
            continue
        listed = {c.strip() for c in codes.split(",") if c.strip()}
        # PD015 ids belong to ``python -m repro vet`` — lint never
        # produces them, so only vet can judge such a suppression stale
        stale = sorted(c for c in listed
                       if not c.startswith("PD015")
                       and not any(code_matches(f, c) for f in found))
        if stale:
            out.append(Finding(
                path, lineno, col + match.start(), "PD100",
                f"'# pd-ignore[{', '.join(stale)}]' suppresses nothing: "
                f"no such finding on this line"))
    return out


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """(line, col, text) for every comment token in ``source``."""
    out: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError):
        pass  # lint_source already reported the parse problem
    return out


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                out.extend(os.path.join(dirpath, f) for f in filenames
                           if f.endswith(".py"))
        else:
            out.append(path)
    return sorted(out)


def _lint_file(filename: str) -> List[Finding]:
    """Worker for ``lint_paths``; module-level so it pickles."""
    from . import astcache
    return lint_parsed(astcache.parse_module(filename))


def lint_paths(paths: Iterable[str], jobs: int = 1) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; with ``jobs > 1`` the
    files are fanned out over a process pool (each worker keeps its own
    AST cache — the parallelism trades one parse per worker-file for
    wall-clock)."""
    files = iter_python_files(paths)
    if jobs > 1 and len(files) > 1:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(files))) as pool:
            per_file = pool.map(_lint_file, files)
        return [f for file_findings in per_file for f in file_findings]
    findings: List[Finding] = []
    for filename in files:
        findings.extend(_lint_file(filename))
    return findings


def default_lint_root() -> str:
    """The ``src/repro`` tree this installation runs from."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
