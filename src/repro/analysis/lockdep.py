"""PicoLockdep: cross-kernel lock-order analysis, dynamic and static.

Cross-kernel synchronization is the fragile heart of PicoDriver (paper
section 3.3): both kernels spin on the same shared-heap lock words, a
spinner cannot sleep, and no watchdog survives a deadlock that wedges
*both* kernels.  KSan (:mod:`repro.analysis.ksan`) catches data races;
this module catches the ordering bugs KSan cannot see, with two
cooperating views:

**Dynamic view** — :class:`LockdepValidator`, a Linux-lockdep-style
runtime monitor.  Install it as a :class:`~repro.hw.memory.SharedHeap`
monitor (it coexists with KSan through the heap's monitor fan) and as
the simulator's ``wait_monitor``.  Every
:class:`~repro.core.sync.CrossKernelSpinLock` acquisition is resolved
to its declared :mod:`~repro.core.lockclasses` class and pushed on a
per-context (kernel x process/IRQ) held stack; each acquisition under
held locks adds edges to a global lock-class dependency graph.  It
reports, with KSan-style provenance (both acquisition sites, kernels,
held stacks, sim timestamps):

* **order cycles** — a cycle in the dependency graph is a potential
  AB-BA deadlock even when this run never hangs;
* **hierarchy violations** — acquisition order contradicting the
  declared ranks of :mod:`repro.core.lockclasses`;
* **IRQ inversions** — a class taken in the completion-IRQ top half
  that is also taken in process context ("with IRQs enabled");
* **held-across-wait** — a timed ``sim`` wait issued from inside a
  critical section, starving the peer kernel spinning on the word.

**Static view** — an interprocedural ``ast`` pass sharing
:mod:`repro.analysis.lint`'s machinery.  It follows ``yield from
self.*`` chains, tracks the compile-time held set, extracts the
:class:`LockGraph` (``python -m repro lockgraph``), and backs lint
rules PD008 (declared-hierarchy order) and PD009 (no timed yield while
a cross-kernel lock is held).

``python -m repro lockdep <experiment>`` cross-checks the views: every
dynamically observed dependency edge must appear in the static graph.

Import discipline: this module is imported by the hardware layer (IRQ
context tagging), so at module level it may only depend on the stdlib
and :mod:`repro.analysis.lint`; everything heavier is imported lazily.
"""

from __future__ import annotations

import ast
import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from ..errors import ReproError
from .lint import (Finding, _ClassInfo, _dotted, _suppressed,
                   default_lint_root, iter_python_files)

#: module-level registry of live validators, mirroring KSan's
#: ``ACTIVE_DETECTORS`` — the ``python -m repro lockdep`` driver
#: aggregates reports from here after running an experiment.
ACTIVE_VALIDATORS: List["LockdepValidator"] = []

#: instrumentation-layer files skipped when attributing a wait site
_SKIP_FILES = frozenset({"engine.py", "lockdep.py", "sync.py", "memory.py"})

#: call names treated as a timed wait by the dynamic and static checks
_WAIT_CALLS = frozenset({"timeout", "wait"})


def reset_active_validators() -> None:
    """Forget all registered validators (start of a lockdep run)."""
    ACTIVE_VALIDATORS.clear()


def active_lockdep_reports() -> List["LockdepReport"]:
    """All findings from every registered validator, in order."""
    reports: List[LockdepReport] = []
    for validator in ACTIVE_VALIDATORS:
        reports.extend(validator.reports)
    return reports


def active_dynamic_edges() -> Dict[Tuple[str, str], "DepEdge"]:
    """The union of every registered validator's dependency edges."""
    edges: Dict[Tuple[str, str], DepEdge] = {}
    for validator in ACTIVE_VALIDATORS:
        for key, edge in validator.dependency_edges().items():
            edges.setdefault(key, edge)
    return edges


# --- IRQ context tracking ----------------------------------------------------
#
# McKernel takes no device interrupts (section 3.3): completion and error
# IRQs always run on Linux CPUs.  The hardware/interrupt layers bracket
# top-half execution with irq_enter/irq_exit so lock acquisitions can be
# attributed to the right context.  The counters are plain module state:
# the discrete-event simulator is single-threaded, and handler generators
# are tagged per resume step (tag_irq_generator) precisely because other
# processes interleave between their yields.

_IRQ_DEPTH: Dict[str, int] = {}


def irq_enter(kernel: str = "linux") -> None:
    """Enter IRQ context on ``kernel`` (top-half dispatch)."""
    _IRQ_DEPTH[kernel] = _IRQ_DEPTH.get(kernel, 0) + 1


def irq_exit(kernel: str = "linux") -> None:
    """Leave IRQ context on ``kernel``."""
    depth = _IRQ_DEPTH.get(kernel, 0)
    if depth <= 0:
        raise ReproError(f"irq_exit on {kernel} without irq_enter")
    _IRQ_DEPTH[kernel] = depth - 1


def in_irq(kernel: str = "linux") -> bool:
    """True while ``kernel`` is executing an IRQ handler."""
    return _IRQ_DEPTH.get(kernel, 0) > 0


def tag_irq_generator(gen, kernel: str = "linux"):
    """Drive ``gen`` with IRQ context marked around every resume step.

    An IRQ handler that is itself a simulation process (the completion
    bottom halves) suspends at every ``yield``; while it is suspended,
    unrelated processes run.  A plain enter/exit bracket around the
    whole process would mis-tag those — so the wrapper enters IRQ
    context only for the instants the handler's own frames execute.
    """
    to_send = None
    to_throw = None
    while True:
        irq_enter(kernel)
        try:
            if to_throw is not None:
                exc, to_throw = to_throw, None
                target = gen.throw(exc)
            else:
                target = gen.send(to_send)
        except StopIteration as stop:
            return stop.value
        finally:
            irq_exit(kernel)
        try:
            to_send = yield target
        except BaseException as exc:  # forwarded into the handler
            to_throw = exc


# --- dynamic view ------------------------------------------------------------

def _frame_site(frame) -> str:
    """KSan-style ``file.py:line in function`` for a live frame."""
    if frame is None:
        return "<unknown>"
    base = os.path.basename(frame.f_code.co_filename)
    return f"{base}:{frame.f_lineno} in {frame.f_code.co_name}"


def _wait_site() -> str:
    """The first frame outside the instrumentation layers."""
    frame = sys._getframe(1)
    while frame is not None:
        base = os.path.basename(frame.f_code.co_filename)
        if base not in _SKIP_FILES:
            return f"{base}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover - frames always bottom out


@dataclass(frozen=True)
class LockAcquisition:
    """One attributed lock acquisition (kept for provenance)."""

    lock_name: str
    lock_class: str
    kernel: str
    context: str                   #: "process" or "irq"
    site: str                      #: "file.py:line in function"
    time: float                    #: simulation time of the grant
    rank: Optional[int]            #: declared hierarchy rank, if any
    held: Tuple[str, ...]          #: classes already held in this context

    def describe(self) -> str:
        """One-line rendering used inside lockdep reports."""
        held = "{" + ", ".join(self.held) + "}"
        rank = f" rank={self.rank}" if self.rank is not None else ""
        return (f"{self.lock_class}{rank} acquired by {self.kernel:8s} "
                f"[{self.context}] at t={self.time:.6g} holding {held} "
                f"— {self.site}")


class _LiveLock:
    """A currently held lock: its acquisition record plus the holder's
    critical-section frame (for held-across-wait attribution)."""

    __slots__ = ("lock", "acq", "frame")

    def __init__(self, lock, acq: LockAcquisition, frame):
        self.lock = lock
        self.acq = acq
        self.frame = frame


@dataclass(frozen=True)
class DepEdge:
    """First-observation witness of a lock-class dependency: ``dst`` was
    acquired while ``src`` was held."""

    src: str
    dst: str
    src_acq: LockAcquisition
    dst_acq: LockAcquisition

    def describe(self) -> List[str]:
        """Render the edge with both witness acquisitions."""
        return [f"{self.src} -> {self.dst}:",
                f"  {self.dst_acq.describe()}",
                f"  while holding: {self.src_acq.describe()}"]


@dataclass
class LockdepReport:
    """One lock-ordering hazard with full provenance."""

    kind: str                      #: order-cycle | hierarchy-violation |
    #: irq-inversion | held-across-wait
    title: str
    details: Tuple[str, ...]

    def render(self) -> str:
        """Multi-line report: headline plus indented provenance."""
        lines = [f"lockdep {self.kind}: {self.title}"]
        lines.extend(f"  {line}" for line in self.details)
        return "\n".join(lines)


class LockdepValidator:
    """The runtime deadlock validator.

    Install with ``heap.add_monitor(validator)`` (it implements only the
    ``on_lockdep_*`` hooks of the heap monitor protocol) and
    ``sim.wait_monitor = validator``.  One validator per machine is
    enough — the dependency graph is global by design, since AB-BA
    inversions span kernels and nodes.
    """

    def __init__(self, sim=None, name: str = "lockdep",
                 register: bool = True):
        self.sim = sim
        self.name = name
        self.reports: List[LockdepReport] = []
        #: per-context held stacks, keyed "kernel/context"
        self._held: Dict[str, List[_LiveLock]] = {}
        self._edges: Dict[Tuple[str, str], DepEdge] = {}
        #: lock class -> context -> first acquisition seen there
        self._usage: Dict[str, Dict[str, LockAcquisition]] = {}
        self._acquisitions = 0
        self._reported_cycles: Set[FrozenSet[str]] = set()
        self._reported_ranks: Set[Tuple[str, str]] = set()
        self._reported_inversions: Set[str] = set()
        self._reported_waits: Set[Tuple[str, str]] = set()
        if register:
            ACTIVE_VALIDATORS.append(self)

    # -- heap monitor protocol (no-ops: lockdep ignores data accesses) ----

    def annotate(self, kernel: str, label: str,
                 atomic: bool = False) -> None:
        """No-op: access labeling is KSan's concern."""

    def on_access(self, kind: str, addr: int, size: int, heap) -> None:
        """No-op: data accesses are KSan's concern."""

    def on_lock_acquired(self, name: str, kernel: str) -> None:
        """No-op: lockdep uses the richer ``on_lockdep_acquire``."""

    def on_lock_released(self, name: str, kernel: str) -> None:
        """No-op: lockdep uses the richer ``on_lockdep_release``."""

    # -- instrumentation entry points ------------------------------------

    def on_lockdep_acquire(self, lock, kernel: str, frame) -> None:
        """A :class:`CrossKernelSpinLock` was granted to ``kernel``;
        ``frame`` is the holder's critical-section frame."""
        from ..core.lockclasses import REGISTRY
        declared = REGISTRY.get(lock.name)
        context = "irq" if in_irq(kernel) else "process"
        key = f"{kernel}/{context}"
        stack = self._held.setdefault(key, [])
        acq = LockAcquisition(
            lock_name=lock.name, lock_class=lock.name, kernel=kernel,
            context=context, site=_frame_site(frame), time=self._now(),
            rank=None if declared is None else declared.rank,
            held=tuple(lv.acq.lock_class for lv in stack))
        self._acquisitions += 1
        self._track_usage(acq)
        for live in stack:
            self._add_edge(live.acq, acq)
            self._check_rank(live.acq, acq)
        stack.append(_LiveLock(lock, acq, frame))

    def on_lockdep_release(self, lock, kernel: str) -> None:
        """``kernel`` released ``lock``; pop it from its held stack."""
        for context in ("process", "irq"):
            stack = self._held.get(f"{kernel}/{context}")
            if not stack:
                continue
            for idx in range(len(stack) - 1, -1, -1):
                if stack[idx].lock is lock:
                    del stack[idx]
                    return

    def on_timed_wait(self, delay: float) -> None:
        """Simulator hook: a positive-delay timeout was created.  If the
        creating call chain belongs to a critical section that holds a
        cross-kernel lock, the spinning peer kernel starves for the
        whole wait — report it."""
        if not any(self._held.values()):
            return
        chain: Set[int] = set()
        frame = sys._getframe(1)
        while frame is not None:
            chain.add(id(frame))
            frame = frame.f_back
        for stack in self._held.values():
            for live in stack:
                if id(live.frame) not in chain:
                    continue
                site = _wait_site()
                dedup = (live.acq.lock_class, site)
                if dedup in self._reported_waits:
                    continue
                self._reported_waits.add(dedup)
                held = [lv.acq for lv in stack]
                details = [f"timed wait of {delay:.6g} at t={self._now():.6g}"
                           f" — {site}",
                           "while holding:"]
                details.extend(f"  {acq.describe()}" for acq in held)
                self.reports.append(LockdepReport(
                    kind="held-across-wait",
                    title=(f"{live.acq.kernel} waits {delay:.6g} holding "
                           f"{live.acq.lock_class}; the peer kernel spins "
                           f"on the lock word for the whole wait"),
                    details=tuple(details)))

    # -- results ----------------------------------------------------------

    def dependency_edges(self) -> Dict[Tuple[str, str], DepEdge]:
        """The observed lock-class dependency edges (first witnesses)."""
        return dict(self._edges)

    def acquired_classes(self) -> Set[str]:
        """Every lock class this validator saw acquired (the dynamic
        side of the vet crosscheck's acquired-class containment)."""
        return set(self._usage)

    def summary(self) -> str:
        """One-line status for the lockdep CLI."""
        status = (f"{len(self.reports)} finding(s)" if self.reports
                  else "no findings")
        return (f"[{self.name}] {status}; {self._acquisitions} "
                f"acquisition(s), {len(self._usage)} lock class(es), "
                f"{len(self._edges)} dependency edge(s)")

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _track_usage(self, acq: LockAcquisition) -> None:
        usage = self._usage.setdefault(acq.lock_class, {})
        usage.setdefault(acq.context, acq)
        if ("irq" in usage and "process" in usage
                and acq.lock_class not in self._reported_inversions):
            self._reported_inversions.add(acq.lock_class)
            self.reports.append(LockdepReport(
                kind="irq-inversion",
                title=(f"{acq.lock_class} is taken in the IRQ top half "
                       f"and with IRQs enabled; the top half can spin on "
                       f"its own interrupted critical section"),
                details=(f"irq:     {usage['irq'].describe()}",
                         f"process: {usage['process'].describe()}")))

    def _check_rank(self, outer: LockAcquisition,
                    inner: LockAcquisition) -> None:
        if outer.rank is None or inner.rank is None:
            return
        if inner.rank > outer.rank:
            return
        key = (outer.lock_class, inner.lock_class)
        if key in self._reported_ranks:
            return
        self._reported_ranks.add(key)
        self.reports.append(LockdepReport(
            kind="hierarchy-violation",
            title=(f"{inner.lock_class} (rank {inner.rank}) acquired "
                   f"while holding {outer.lock_class} (rank "
                   f"{outer.rank}); the declared order is "
                   f"rank-increasing"),
            details=(f"inner: {inner.describe()}",
                     f"outer: {outer.describe()}")))

    def _add_edge(self, src_acq: LockAcquisition,
                  dst_acq: LockAcquisition) -> None:
        key = (src_acq.lock_class, dst_acq.lock_class)
        if key in self._edges:
            return
        self._edges[key] = DepEdge(src=key[0], dst=key[1],
                                   src_acq=src_acq, dst_acq=dst_acq)
        self._check_cycle(key)

    def _check_cycle(self, new_key: Tuple[str, str]) -> None:
        """A new edge (a, b) closes a cycle iff b already reaches a."""
        a, b = new_key
        if a == b:
            path = [new_key]
        else:
            parents: Dict[str, Optional[str]] = {b: None}
            queue = deque([b])
            while queue and a not in parents:
                node = queue.popleft()
                for src, dst in self._edges:
                    if src == node and dst not in parents:
                        parents[dst] = node
                        queue.append(dst)
            if a not in parents:
                return
            nodes = [a]
            while nodes[-1] != b:
                nodes.append(parents[nodes[-1]])
            nodes.reverse()                      # b ... a
            path = [new_key] + [(nodes[i], nodes[i + 1])
                                for i in range(len(nodes) - 1)]
        members = frozenset(n for edge in path for n in edge)
        if members in self._reported_cycles:
            return
        self._reported_cycles.add(members)
        details: List[str] = []
        for edge_key in path:
            details.extend(self._edges[edge_key].describe())
        cycle = " -> ".join([path[0][0]] + [dst for _src, dst in path])
        self.reports.append(LockdepReport(
            kind="order-cycle",
            title=(f"lock-class dependency cycle {cycle}: potential "
                   f"AB-BA deadlock between kernels, even though this "
                   f"run completed"),
            details=tuple(details)))


# --- static view -------------------------------------------------------------

@dataclass(frozen=True)
class StaticEdge:
    """Compile-time dependency: ``dst`` acquired at ``path:line`` (in
    ``func``, by ``kernel``) while ``src`` was held (taken at
    ``src_line``)."""

    src: str
    dst: str
    path: str
    line: int
    func: str
    kernel: str
    src_line: int

    def describe(self) -> str:
        """One-line rendering with the witness site and kernel."""
        return (f"{self.src} -> {self.dst}  [{self.path}:{self.line} in "
                f"{self.func}, kernel={self.kernel}, {self.src} taken at "
                f"line {self.src_line}]")


class LockGraph:
    """The compile-time lock-class graph extracted by the static pass."""

    def __init__(self) -> None:
        self.ranks: Dict[str, Optional[int]] = {}
        self.sites: Dict[str, List[str]] = {}
        self.edges: Dict[Tuple[str, str], StaticEdge] = {}

    def note_acquire(self, cls: str, rank: Optional[int],
                     site: str) -> None:
        """Record an acquisition site of lock class ``cls``."""
        self.ranks.setdefault(cls, rank)
        sites = self.sites.setdefault(cls, [])
        if site not in sites:
            sites.append(site)

    def add_edge(self, edge: StaticEdge) -> None:
        """Add a dependency edge, keeping the first witness."""
        self.edges.setdefault((edge.src, edge.dst), edge)

    def has_edge(self, src: str, dst: str) -> bool:
        """True if the graph contains the ``src -> dst`` dependency."""
        return (src, dst) in self.edges

    def hierarchy_violations(self) -> List[StaticEdge]:
        """Edges contradicting the declared ranks (incl. self-edges)."""
        out = []
        for (src, dst), edge in sorted(self.edges.items()):
            if src == dst:
                out.append(edge)
                continue
            src_rank, dst_rank = self.ranks.get(src), self.ranks.get(dst)
            if src_rank is not None and dst_rank is not None \
                    and dst_rank <= src_rank:
                out.append(edge)
        return out

    def cycles(self) -> List[List[StaticEdge]]:
        """One representative cycle per strongly connected component."""
        adj: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adj.setdefault(src, []).append(dst)
        out: List[List[StaticEdge]] = []
        for (src, dst) in sorted(self.edges):
            if src == dst:
                out.append([self.edges[(src, dst)]])
        for component in self._sccs(adj):
            if len(component) < 2:
                continue
            out.append(self._cycle_in(component))
        return out

    def _cycle_in(self, component: Sequence[str]) -> List[StaticEdge]:
        members = set(component)
        start = sorted(component)[0]
        parents: Dict[str, Optional[str]] = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for src, dst in self.edges:
                if src != node or dst not in members:
                    continue
                if dst == start:
                    nodes = [node]
                    while parents[nodes[-1]] is not None:
                        nodes.append(parents[nodes[-1]])
                    nodes.reverse()              # start ... node
                    nodes.append(start)
                    return [self.edges[(nodes[i], nodes[i + 1])]
                            for i in range(len(nodes) - 1)]
                if dst not in parents:
                    parents[dst] = node
                    queue.append(dst)
        raise ReproError(  # pragma: no cover - SCC guarantees a cycle
            f"no cycle found inside SCC {sorted(component)}")

    @staticmethod
    def _sccs(adj: Dict[str, List[str]]) -> List[List[str]]:
        """Tarjan's strongly-connected components (graphs are tiny)."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[List[str]] = []
        nodes = sorted(set(adj) | {d for ds in adj.values() for d in ds})

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in adj.get(v, ()):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                out.append(component)

        for v in nodes:
            if v not in index:
                strongconnect(v)
        return out

    def to_dot(self) -> str:
        """Graphviz rendering (CI uploads this as an artifact)."""
        lines = ["digraph picodriver_locks {", "  rankdir=LR;",
                 '  node [shape=box, fontname="monospace"];']
        for cls in sorted(self.ranks):
            rank = self.ranks[cls]
            label = cls if rank is None else f"{cls}\\nrank {rank}"
            lines.append(f'  "{cls}" [label="{label}"];')
        for (src, dst), edge in sorted(self.edges.items()):
            base = os.path.basename(edge.path)
            lines.append(f'  "{src}" -> "{dst}" '
                         f'[label="{base}:{edge.line}"];')
        lines.append("}")
        return "\n".join(lines)

    def render(self) -> str:
        """Human-readable graph + cycle diagnostics."""
        lines = ["lock classes:"]
        for cls in sorted(self.ranks,
                          key=lambda c: (self.ranks[c] is None,
                                         self.ranks[c], c)):
            rank = self.ranks[cls]
            tag = "undeclared" if rank is None else f"rank {rank}"
            lines.append(f"  {cls} ({tag})")
            for site in self.sites.get(cls, []):
                lines.append(f"    acquired at {site}")
        lines.append("dependency edges:")
        if not self.edges:
            lines.append("  (none: no nested acquisition in the tree)")
        for _key, edge in sorted(self.edges.items()):
            lines.append(f"  {edge.describe()}")
        violations = self.hierarchy_violations()
        cycles = self.cycles()
        lines.append(f"hierarchy violations: {len(violations)}")
        for edge in violations:
            lines.append(f"  {edge.describe()}")
        lines.append(f"cycles: {len(cycles)}")
        for cycle in cycles:
            path = " -> ".join([cycle[0].src] + [e.dst for e in cycle])
            lines.append(f"  {path}")
            for edge in cycle:
                lines.append(f"    {edge.describe()}")
        return "\n".join(lines)


class _HeldEntry:
    """Compile-time held-lock record inside the walker."""

    __slots__ = ("cls", "rank", "receiver", "line")

    def __init__(self, cls: str, rank: Optional[int], receiver: str,
                 line: int):
        self.cls = cls
        self.rank = rank
        self.receiver = receiver
        self.line = line


def _collect_bindings(tree: ast.AST) -> Dict[str, str]:
    """Map receiver names to lock-class names from constructor calls:
    ``self.sdma_lock = CrossKernelSpinLock(..., name="hfi1.sdma_submit")``
    binds both ``self.sdma_lock`` and ``sdma_lock``."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        callee = _dotted(node.value.func).rsplit(".", 1)[-1]
        if callee != "CrossKernelSpinLock":
            continue
        name = None
        for kw in node.value.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                name = kw.value.value
        if name is None:
            continue
        for target in node.targets:
            dotted = _dotted(target)
            bindings[dotted] = name
            bindings[dotted.rsplit(".", 1)[-1]] = name
    return bindings


class _LockWalker:
    """Interprocedural held-set walker over one module's AST."""

    def __init__(self, path: str, findings: List[Finding],
                 graph: Optional[LockGraph],
                 bindings: Dict[str, str]):
        self.path = path
        self.findings = findings
        self.graph = graph
        self.bindings = bindings
        self._emitted: Set[Tuple[int, int, str, str]] = set()

    # -- entry ------------------------------------------------------------

    def walk_function(self, fn: ast.FunctionDef, qualname: str,
                      cls_info: Optional[_ClassInfo],
                      held: Optional[List[_HeldEntry]] = None,
                      visiting: FrozenSet[str] = frozenset()) -> None:
        if fn.name in visiting:
            return
        self._walk_block(fn.body, held if held is not None else [],
                         qualname, cls_info, visiting | {fn.name})

    # -- statement dispatch ------------------------------------------------

    def _walk_block(self, stmts: Sequence[ast.stmt],
                    held: List[_HeldEntry], qualname: str,
                    cls_info: Optional[_ClassInfo],
                    visiting: FrozenSet[str]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, held, qualname, cls_info, visiting)

    def _walk_stmt(self, stmt: ast.stmt, held: List[_HeldEntry],
                   qualname: str, cls_info: Optional[_ClassInfo],
                   visiting: FrozenSet[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, held, qualname, cls_info, visiting)
            # handlers/orelse see the state at the end of the body (the
            # conservative approximation that matters for a critical
            # section: the lock is still held until the finally runs)
            for handler in stmt.handlers:
                self._walk_block(handler.body, list(held), qualname,
                                 cls_info, visiting)
            self._walk_block(stmt.orelse, list(held), qualname, cls_info,
                             visiting)
            self._walk_block(stmt.finalbody, held, qualname, cls_info,
                             visiting)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._walk_block(stmt.body, list(held), qualname, cls_info,
                             visiting)
            self._walk_block(stmt.orelse, list(held), qualname, cls_info,
                             visiting)
            return
        if isinstance(stmt, ast.For):
            self._walk_block(stmt.body, list(held), qualname, cls_info,
                             visiting)
            self._walk_block(stmt.orelse, list(held), qualname, cls_info,
                             visiting)
            return
        if isinstance(stmt, ast.With):
            self._walk_block(stmt.body, held, qualname, cls_info, visiting)
            return
        for value in self._stmt_values(stmt):
            self._walk_value(value, held, qualname, cls_info, visiting)

    @staticmethod
    def _stmt_values(stmt: ast.stmt) -> Iterable[ast.expr]:
        value = getattr(stmt, "value", None)
        if isinstance(value, ast.expr):
            yield value

    # -- expression handling -----------------------------------------------

    def _walk_value(self, value: ast.expr, held: List[_HeldEntry],
                    qualname: str, cls_info: Optional[_ClassInfo],
                    visiting: FrozenSet[str]) -> None:
        if isinstance(value, ast.YieldFrom) \
                and isinstance(value.value, ast.Call):
            call = value.value
            if isinstance(call.func, ast.Attribute):
                if call.func.attr == "acquire":
                    self._handle_acquire(call, held, qualname)
                    return
                if (isinstance(call.func.value, ast.Name)
                        and call.func.value.id == "self"
                        and cls_info is not None
                        and call.func.attr in cls_info.methods):
                    # interprocedural: follow the delegation with the
                    # current held set (helpers are assumed balanced;
                    # PD002 polices leaks)
                    callee = cls_info.methods[call.func.attr]
                    self.walk_function(
                        callee,
                        f"{qualname.rsplit('.', 1)[0]}.{call.func.attr}",
                        cls_info, held, visiting)
                    return
            return
        if isinstance(value, ast.Yield) and value.value is not None \
                and isinstance(value.value, ast.Call):
            call = value.value
            if isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _WAIT_CALLS:
                self._handle_timed_yield(call, held, qualname)
            return
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr == "release":
            receiver = _dotted(value.func.value)
            for idx in range(len(held) - 1, -1, -1):
                if held[idx].receiver == receiver:
                    del held[idx]
                    return

    def _handle_acquire(self, call: ast.Call, held: List[_HeldEntry],
                        qualname: str) -> None:
        receiver = _dotted(call.func.value)
        cls, rank = self._resolve(receiver)
        kernel = "?"
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            kernel = call.args[0].value
        if self.graph is not None:
            self.graph.note_acquire(
                cls, rank, f"{self.path}:{call.lineno} in {qualname}")
        for entry in held:
            if self.graph is not None:
                self.graph.add_edge(StaticEdge(
                    src=entry.cls, dst=cls, path=self.path,
                    line=call.lineno, func=qualname, kernel=kernel,
                    src_line=entry.line))
            if entry.cls == cls:
                self._emit(call, "PD008",
                           f"'{receiver}.acquire' in {qualname} takes "
                           f"lock class {cls} while already holding it "
                           f"(line {entry.line}); the spinning acquirer "
                           f"never sees its own release")
            elif entry.rank is not None and rank is not None \
                    and rank <= entry.rank:
                self._emit(call, "PD008",
                           f"'{receiver}.acquire' in {qualname} takes "
                           f"{cls} (rank {rank}) while holding "
                           f"{entry.cls} (rank {entry.rank}, line "
                           f"{entry.line}); the declared hierarchy is "
                           f"rank-increasing")
        held.append(_HeldEntry(cls, rank, receiver, call.lineno))

    def _handle_timed_yield(self, call: ast.Call,
                            held: List[_HeldEntry],
                            qualname: str) -> None:
        if not held:
            return
        held_desc = ", ".join(
            f"{entry.cls} (line {entry.line})" for entry in held)
        self._emit(call, "PD009",
                   f"timed yield '{_dotted(call.func)}' in {qualname} "
                   f"while holding cross-kernel lock(s) {held_desc}; "
                   f"the peer kernel spins for the whole wait")

    def _resolve(self, receiver: str) -> Tuple[str, Optional[int]]:
        from ..core.lockclasses import REGISTRY
        last = receiver.rsplit(".", 1)[-1]
        name = self.bindings.get(receiver) or self.bindings.get(last)
        if name is None:
            declared = REGISTRY.by_attr(last)
            if declared is not None:
                return declared.name, declared.rank
            name = last
        return name, REGISTRY.rank_of(name)

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        key = (node.lineno, node.col_offset, code, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.findings.append(Finding(self.path, node.lineno,
                                     node.col_offset, code, message))


def check_lock_order(path: str, tree: ast.AST, findings: List[Finding],
                     graph: Optional[LockGraph] = None) -> None:
    """PD008 + PD009 over one parsed module; optionally accumulate the
    compile-time lock graph into ``graph``."""
    from ..core import lockclasses
    lockclasses.ensure_declarations()
    walker = _LockWalker(path, findings, graph, _collect_bindings(tree))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            info = _ClassInfo(node)
            for mname in sorted(info.methods):
                walker.walk_function(info.methods[mname],
                                     f"{node.name}.{mname}", info)
    if isinstance(tree, ast.Module):
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                walker.walk_function(node, node.name, None)


def build_static_lock_graph(
        paths: Optional[Iterable[str]] = None
) -> Tuple[LockGraph, List[Finding]]:
    """Extract the lock graph (and PD008/PD009 findings, with
    ``# pd-ignore`` suppression honoured) from every module under
    ``paths`` (default: the installed ``repro`` tree)."""
    from . import astcache
    target = [default_lint_root()] if paths is None else list(paths)
    graph = LockGraph()
    findings: List[Finding] = []
    for filename in iter_python_files(target):
        module = astcache.parse_module(filename)
        if not module.ok:
            exc = module.error
            findings.append(Finding(filename, exc.lineno or 1,
                                    (exc.offset or 1) - 1, "PD000",
                                    f"syntax error: {exc.msg}"))
            continue
        module_findings: List[Finding] = []
        check_lock_order(filename, module.tree, module_findings,
                         graph=graph)
        lines = module.source.splitlines()
        findings.extend(f for f in module_findings
                        if not _suppressed(lines, f))
    return graph, findings
