"""PicoVet: whole-program effect & context analysis for PicoDriver.

``python -m repro vet [--dot] [--json] [paths...]``
    Build the whole-program model over the installed ``repro`` tree (or
    the given paths), run the PD015.x checkers and print the findings.
    ``--dot`` emits the Graphviz call graph instead, ``--json`` the
    per-function context + transitive-effect summaries (both for the CI
    artifacts).  Exit status 1 if findings remain.

``python -m repro vet --crosscheck <fig4|chaos> [--smoke]``
    Re-run the named experiment with KSan, lockdep and the typed-error
    observer enabled, then assert that every *dynamic* fact is
    contained in the *static* over-approximation — the same
    dynamic ⊆ static contract as ``python -m repro lockdep``, extended
    to three fact families:

    * every dynamically observed lock dependency edge is in the static
      lock graph, and every acquired lock class has a static
      acquisition site;
    * every shared-heap access KSan sampled (struct.field, kernel,
      read/write) matches a statically inferred access — attribution
      the scanner could only infer (``inferred``/``?``) matches as a
      wildcard;
    * every typed error constructed at runtime has a static
      construction site in the same function.

    Exit status 1 names every uncontained fact: a dynamic fact the
    static model cannot see means the model lies, and every PD015.x
    verdict built on it is suspect.

Suppressions work exactly like lint: a ``# pd-ignore[PD015.5]`` on the
finding's anchor line silences it (``PD015`` covers the whole family),
and a stale PD015 suppression is reported as PD100 by ``vet`` itself
(``lint`` leaves PD015 ids to the tool of record).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional, Set, Tuple

from . import astcache
from .lint import (Finding, _comment_tokens, _IGNORE_RE, _suppressed,
                   code_matches)
from .vet_checkers import run_checkers
from .vet_effects import HeapAccess, Program


def vet_paths(paths: Optional[List[str]] = None
              ) -> Tuple[Program, List[Finding]]:
    """Build the program model and run every checker; returns the model
    and the unsuppressed findings (plus PD100 for stale PD015 ignores)."""
    program = Program.build(paths)
    raw = run_checkers(program)
    kept: List[Finding] = []
    by_file: Dict[str, List[Finding]] = {}
    for finding in raw:
        by_file.setdefault(finding.path, []).append(finding)
        if not _file_suppressed(finding):
            kept.append(finding)
    kept.extend(_stale_vet_suppressions(program, by_file))
    return program, sorted(kept, key=lambda f: (f.path, f.line, f.col,
                                                f.code))


def _file_suppressed(finding: Finding) -> bool:
    try:
        module = astcache.parse_module(finding.path)
    except OSError:
        return False
    return _suppressed(module.source.splitlines(), finding)


def _stale_vet_suppressions(program: Program,
                            by_file: Dict[str, List[Finding]]
                            ) -> List[Finding]:
    """PD100 for the PD015 family: vet is the tool of record for its own
    rule ids, so it — not lint — decides whether a ``pd-ignore`` listing
    a PD015 code still suppresses anything."""
    out: List[Finding] = []
    seen: Set[str] = set()
    for fn in program.functions.values():
        seen.add(fn.path)
    for path in sorted(seen):
        try:
            module = astcache.parse_module(path)
        except OSError:
            continue
        found: Dict[int, Set[str]] = {}
        for finding in by_file.get(path, []):
            found.setdefault(finding.line, set()).add(finding.code)
        for lineno, col, comment in _comment_tokens(module.source):
            match = _IGNORE_RE.search(comment)
            if match is None or match.group(1) is None:
                continue
            listed = {c.strip() for c in match.group(1).split(",")
                      if c.strip()}
            stale = sorted(
                c for c in listed
                if c.startswith("PD015")
                and not any(code_matches(code, c)
                            for code in found.get(lineno, ())))
            if stale:
                out.append(Finding(
                    path, lineno, col + match.start(), "PD100",
                    f"'# pd-ignore[{', '.join(stale)}]' suppresses "
                    f"nothing: no such vet finding on this line"))
    return out


# --- crosscheck: dynamic facts ⊆ static over-approximation -------------------

def _chaos_smoke() -> str:
    from ..experiments.chaos import run_chaos
    return run_chaos("pingpong", smoke=True).render()


def _default_table(commands: Optional[Dict[str, Callable[[], str]]]
                   ) -> Dict[str, Callable[[], str]]:
    table: Dict[str, Callable[[], str]] = dict(commands or {})
    if "fig4" not in table:
        def _fig4() -> str:
            from ..experiments.fig4 import run_fig4
            return run_fig4().render()
        table["fig4"] = _fig4
    table.setdefault("chaos", _chaos_smoke)
    return table


def _observe_errors(record: Set[Tuple[str, str]]):
    """An ``errors.OBSERVER``: attribute each constructed typed error to
    the nearest in-tree frame below the errors module."""
    marker = os.sep + "repro" + os.sep

    def observer(exc: BaseException) -> None:
        frame = sys._getframe(1)
        while frame is not None:
            filename = frame.f_code.co_filename
            if filename.endswith("errors.py"):
                frame = frame.f_back
                continue
            if marker in filename and frame.f_code.co_name != "<module>":
                record.add((type(exc).__name__, frame.f_code.co_name))
            return
        return

    return observer


def _access_contained(fact: Tuple[str, str, str, str],
                      statics: List[HeapAccess]) -> bool:
    struct, fieldname, kernel, kind = fact
    for access in statics:
        if access.field != fieldname or access.kind != kind:
            continue
        if access.struct not in ("?", struct) and not access.inferred:
            continue
        if access.kernel not in ("?", kernel) and not access.inferred:
            continue
        return True
    return False


def crosscheck(name: str,
               commands: Optional[Dict[str, Callable[[], str]]] = None
               ) -> int:
    """Run experiment ``name`` with every dynamic checker enabled and
    assert dynamic ⊆ static.  Returns the exit status."""
    from .. import config, errors
    from . import ksan
    from . import lockdep as lockdep_mod

    table = _default_table(commands)
    if name not in table:
        print(f"unknown experiment '{name}'; choose from "
              f"{', '.join(sorted(table))}")
        return 2

    dynamic_errors: Set[Tuple[str, str]] = set()
    ksan.reset_active_detectors()
    lockdep_mod.reset_active_validators()
    prev_race = config.ANALYSIS.race_detection
    prev_lockdep = config.ANALYSIS.lockdep
    prev_observer = errors.OBSERVER
    config.ANALYSIS.race_detection = True
    config.ANALYSIS.lockdep = True
    errors.OBSERVER = _observe_errors(dynamic_errors)
    try:
        print(f"== vet crosscheck: {name} ==")
        print(table[name]())
    finally:
        config.ANALYSIS.race_detection = prev_race
        config.ANALYSIS.lockdep = prev_lockdep
        errors.OBSERVER = prev_observer

    program = Program.build()
    graph, _findings = lockdep_mod.build_static_lock_graph()
    failures: List[str] = []
    fact_count = 0

    # 1. lock facts: dependency edges and acquired classes
    for key, edge in sorted(lockdep_mod.active_dynamic_edges().items()):
        if not graph.has_edge(*key):
            fact_count += 1
            failures.append(
                f"lock edge {key[0]} -> {key[1]} observed dynamically "
                f"but missing from the static lock graph:")
            failures.extend(f"  {line}" for line in edge.describe())
    static_classes = set(graph.sites) | set(graph.ranks)
    for validator in lockdep_mod.ACTIVE_VALIDATORS:
        for lock_class in sorted(validator.acquired_classes()):
            if lock_class not in static_classes:
                fact_count += 1
                failures.append(
                    f"lock class {lock_class} acquired dynamically but "
                    f"has no static acquisition site")

    # 2. heap facts: KSan's sampled accesses
    statics = program.all_accesses()
    dynamic_heap: Set[Tuple[str, str, str, str]] = set()
    for detector in ksan.ACTIVE_DETECTORS:
        for state in detector._words.values():
            for (kernel, kind), access in state.samples.items():
                label = access.label
                if not label or label.startswith("lock:"):
                    continue
                if "." in label:
                    struct, fieldname = label.rsplit(".", 1)
                else:
                    struct, fieldname = "?", label
                dynamic_heap.add((struct, fieldname, kernel, kind))
    for fact in sorted(dynamic_heap):
        if not _access_contained(fact, statics):
            struct, fieldname, kernel, kind = fact
            fact_count += 1
            failures.append(
                f"heap access {kind} {struct}.{fieldname} by {kernel} "
                f"observed dynamically but matches no static access")

    # 3. error facts: constructed typed errors
    for errname, funcname in sorted(dynamic_errors):
        if (errname, funcname) not in program.error_sites:
            fact_count += 1
            failures.append(
                f"{errname} constructed in {funcname}() dynamically "
                f"but vet knows no such construction site")

    print("\n== vet crosscheck verdict ==")
    print(f"dynamic facts: "
          f"{len(lockdep_mod.active_dynamic_edges())} lock edge(s), "
          f"{len(dynamic_heap)} heap access pair(s), "
          f"{len(dynamic_errors)} typed error(s)")
    if failures:
        print("dynamic facts missing from the static "
              "over-approximation:")
        for line in failures:
            print(f"  {line}")
        print(f"\nvet crosscheck: {fact_count} uncontained fact(s)")
        return 1
    print("vet crosscheck: every dynamic fact is contained in the "
          "static over-approximation")
    return 0


# --- CLI ---------------------------------------------------------------------

_USAGE = ("usage: python -m repro vet [--dot] [--json] [paths...]\n"
          "       python -m repro vet --crosscheck <fig4|chaos>")


def cmd_vet(argv: List[str],
            commands: Optional[Dict[str, Callable[[], str]]] = None) -> int:
    """Entry point for ``python -m repro vet``."""
    args = list(argv)
    if "--crosscheck" in args:
        idx = args.index("--crosscheck")
        if idx + 1 >= len(args):
            print(_USAGE)
            return 2
        # --smoke is accepted for symmetry with the chaos CLI; the
        # crosscheck always runs chaos in smoke mode
        return crosscheck(args[idx + 1], commands)
    want_dot = "--dot" in args
    want_json = "--json" in args
    unknown = [a for a in args if a.startswith("-")
               and a not in ("--dot", "--json")]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n{_USAGE}")
        return 2
    paths = [a for a in args if not a.startswith("-")]
    program, findings = vet_paths(paths or None)
    if want_dot:
        print(program.to_dot())
        return 1 if findings else 0
    if want_json:
        print(json.dumps(program.json_summary(), indent=2,
                         sort_keys=True))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    functions = len(program.functions)
    entries = len(program.entry_points())
    print(f"pd-vet: clean ({functions} functions, {entries} fast-path "
          f"entry point(s))")
    return 0
