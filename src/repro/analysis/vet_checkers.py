"""The PD015.x whole-program checkers over the PicoVet program model.

Each checker consumes the :class:`~repro.analysis.vet_effects.Program`
(call graph + contexts + effect fixpoint) and emits
:class:`~repro.analysis.lint.Finding` objects, so vet findings render,
sort and suppress exactly like lint findings.  Rule map:

========  ============================================================
PD015.1   fast path transitively offloads (whole-program PD001)
PD015.2   fast path transitively reaches a sleeping service
PD015.3   fast path transitively takes page references (whole-program
          PD006)
PD015.4   sleep/wait in atomic context: a sleeping service reachable
          from an IRQ-context function, or a confident callee that may
          wait invoked while a spinlock class is held (whole-program
          PD009)
PD015.5   static race candidate: cross-kernel write/write or
          write/read on one struct field with no common lock class
          (the static twin of a KSan report)
PD015.6   typed-error totality: a fault point raises an error no
          handler anywhere catches
========  ============================================================

Findings for PD015.1-3 anchor at the fast entry's ``def`` line, PD015.4
at the root/call site, PD015.5 at the first non-atomic write of the
racing pair, PD015.6 at the raise site — the anchor line is where a
justified ``# pd-ignore[...]`` belongs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from .lint import Finding
from .vet_effects import HeapAccess, Program, Site, _error_covered

#: function names whose writes are initialization, exempt from race
#: candidacy (the paper's exclusive-phase argument: probe/open/attach
#: run before any cross-kernel sharing starts)
_INIT_EXEMPT_NAMES = frozenset({"probe", "open", "attach", "__init__",
                                "load", "setup", "install", "mount"})
_INIT_EXEMPT_PREFIXES = ("boot", "register")


def _short(qualname: str) -> str:
    return qualname.split("::", 1)[-1]


def _bare(qualname: str) -> str:
    return _short(qualname).rsplit(".", 1)[-1]


def _site_key(site: Site) -> Tuple[str, int, str]:
    return (site.path, site.line, site.what)


def _chain(program: Program, entry: str, offender) -> str:
    return " -> ".join(_short(q)
                       for q in program.witness_chain(entry, offender))


def _init_exempt(func_qualname: str) -> bool:
    name = _bare(func_qualname)
    return (name in _INIT_EXEMPT_NAMES
            or name.startswith(_INIT_EXEMPT_PREFIXES))


# --- PD015.1/.2/.3: interprocedural fast-path purity -------------------------

def check_fast_path_purity(program: Program) -> List[Finding]:
    """PD015.1/.2/.3: no fast entry may transitively offload, sleep
    unbounded, or take page references (whole-program PD001/PD006)."""
    out: List[Finding] = []
    probes = (
        ("PD015.1", "offloads", "may offload to Linux"),
        ("PD015.2", "sleeps", "may sleep unbounded"),
        ("PD015.3", "unpinned", "may take page references"),
    )
    for fn in program.entry_points():
        eff = program.effects[fn.qualname]
        for code, slot, verb in probes:
            sites = getattr(eff, slot)
            if not sites:
                continue
            site = min(sites, key=_site_key)
            chain = _chain(program, fn.qualname,
                           lambda e, s=slot: bool(getattr(e, s)))
            out.append(Finding(
                fn.path, fn.line, fn.node.col_offset, code,
                f"fast path '{_short(fn.qualname)}' {verb}: "
                f"{site.render()} (via {chain})"))
    return out


# --- PD015.4: sleep/wait in atomic context -----------------------------------

def check_sleep_in_atomic(program: Program) -> List[Finding]:
    """PD015.4: sleeping service reachable from IRQ context, or a
    may-wait callee invoked while a spinlock class is held."""
    out: List[Finding] = []
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if "irq" in program.contexts.get(qualname, ()):
            eff = program.effects[qualname]
            if eff.sleeps:
                site = min(eff.sleeps, key=_site_key)
                chain = _chain(program, qualname,
                               lambda e: bool(e.sleeps))
                out.append(Finding(
                    fn.path, fn.line, fn.node.col_offset, "PD015.4",
                    f"IRQ-context '{_short(qualname)}' may sleep: "
                    f"{site.render()} (via {chain})"))
        # whole-program PD009: a callee that may sleep or take a timed
        # wait, invoked while a spinlock class is held (only confident
        # edges — guessing here would drown real hazards in noise)
        for rc in program.edges.get(qualname, ()):
            if not rc.confident or not rc.site.held:
                continue
            for target in rc.targets:
                teff = program.effects[target]
                waits = teff.sleeps | teff.timed_waits
                if not waits:
                    continue
                site = min(waits, key=_site_key)
                held = ", ".join(rc.site.held)
                out.append(Finding(
                    fn.path, rc.site.line, 0, "PD015.4",
                    f"'{_short(qualname)}' calls '{_short(target)}' "
                    f"while holding [{held}]; the callee may wait: "
                    f"{site.render()}"))
    return out


# --- PD015.5: static race candidates -----------------------------------------

def _conflicts(a: HeapAccess, b: HeapAccess) -> bool:
    """KSan-style pair test: distinct known kernels, at least one side
    a write, no common lock class (both already non-atomic)."""
    if a.kernel == b.kernel or "?" in (a.kernel, b.kernel):
        return False
    if a.kind != "write" and b.kind != "write":
        return False
    return not set(a.locks) & set(b.locks)


def check_race_candidates(program: Program) -> List[Finding]:
    """PD015.5: cross-kernel access pairs on one struct field with at
    least one write and no common lock class (static KSan twin)."""
    groups: Dict[Tuple[str, str], List[HeapAccess]] = {}
    for access in program.all_accesses():
        if access.struct == "?" or access.atomic:
            continue
        if _init_exempt(access.func):
            continue
        groups.setdefault((access.struct, access.field), []) \
            .append(access)
    out: List[Finding] = []
    for (struct, fieldname), accesses in sorted(groups.items()):
        racing: List[HeapAccess] = []
        for a in accesses:
            if any(b is not a and _conflicts(a, b) for b in accesses):
                racing.append(a)
        if not racing:
            continue
        writes = sorted((a for a in racing if a.kind == "write"),
                        key=lambda a: (a.path, a.line))
        anchor = writes[0]
        sites = "; ".join(a.render()
                          for a in sorted(racing,
                                          key=lambda a: (a.path, a.line,
                                                         a.kind)))
        out.append(Finding(
            anchor.path, anchor.line, 0, "PD015.5",
            f"cross-kernel race candidate on {struct}.{fieldname} "
            f"with no common lock class: {sites}"))
    return out


# --- PD015.6: typed-error totality -------------------------------------------

def check_error_totality(program: Program) -> List[Finding]:
    """PD015.6: every fault-gated raise must have a typed handler for
    the error (or an ancestor) somewhere in the tree."""
    out: List[Finding] = []
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        # only typed handlers count: a blanket ``except Exception``
        # somewhere must not vacuously discharge every fault point
        typed = program.handled_anywhere & program.error_classes
        for errname, site in fn.fault_raises:
            if _error_covered(errname, typed, program.error_hierarchy):
                continue
            out.append(Finding(
                fn.path, site.line, 0, "PD015.6",
                f"fault point in '{_short(qualname)}' raises {errname} "
                f"but no handler for it (or an ancestor) exists on any "
                f"path to the dispatcher boundary"))
    return out


def run_checkers(program: Program) -> List[Finding]:
    """All four PD015 checkers, sorted like lint output."""
    out: List[Finding] = []
    out.extend(check_fast_path_purity(program))
    out.extend(check_sleep_in_atomic(program))
    out.extend(check_race_candidates(program))
    out.extend(check_error_totality(program))
    return sorted(out, key=lambda f: (f.path, f.line, f.col, f.code))
