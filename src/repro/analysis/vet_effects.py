"""PicoVet's whole-program model: call graph, contexts, effect lattice.

The lint rules (PD001-PD014) are *local* — each judges one function or
one class at a time, so a helper that transitively offloads, sleeps or
touches unpinned memory two calls away from a ``fast_*`` entry point is
invisible to them.  This module builds the whole-program view the
PD015.x checkers (:mod:`repro.analysis.vet_checkers`) need, with nothing
but the stdlib ``ast``:

* a **call graph** with class-aware method resolution: ``self.m()``
  resolves through the enclosing class and its base chain,
  ``self.attr.m()`` through constructor-typed attributes
  (``self.ring = DrainRing(...)``), bare names through module-level
  functions, and — as a last resort — a globally unique method name
  resolves to its single definer.  Ambiguous names (2-4 definers) link
  to *all* candidates but are marked non-confident; effects still flow
  through them (over-approximation), while the checkers that must not
  guess (held-lock x wait) only trust confident edges.
  ``sim.process(...)`` creates *spawn* edges, which carry execution
  context but never synchronous effects;

* per-function **execution contexts** (``linux``, ``lwk``, ``irq``,
  ``sdma-engine``, ``fabric``, ``device``) inferred from registration
  sites: ``fast_*`` methods of PicoDriver chassis run on the LWK, IRQ
  dispatcher wiring (``x.irq_dispatcher = self._m``,
  ``interrupts.deliver(self._m, ...)``, cross-kernel
  ``callbacks.register(..., self._m)``) marks top halves, and device
  drain processes spawned inside ``repro/hw`` run in engine context;

* a fixpoint over an **effect lattice** per function: may-sleep
  (curated sleeping services), timed waits (``yield *.timeout/wait``),
  may-offload (IKC / syscall dispatch), unpinned allocation
  (``get_user_pages``), acquired lock classes, shared-heap struct-field
  reads/writes with kernel attribution, raised typed errors (filtered
  through enclosing ``except`` clauses during propagation), and RNG
  draws.

The model is deliberately an over-approximation: every dynamic fact a
KSan/lockdep run observes must be contained in it (``python -m repro
vet --crosscheck``), which is what keeps the static half honest.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from . import astcache
from .lint import (_OFFLOAD_NAMES, _dotted, _refs_config, default_lint_root,
                   iter_python_files)
from .lockdep import _WAIT_CALLS, _collect_bindings

#: services a fast path / IRQ top half must never reach: they block the
#: caller for an unbounded time (the in-tree members are
#: ``rcu_synchronize`` and the classic Linux sleeping-API names; bounded
#: waits like ``_await_engine_running`` are *timed* waits, not sleeps)
SLEEP_SERVICES = frozenset({
    "rcu_synchronize", "msleep", "usleep_range", "schedule",
    "schedule_timeout", "wait_event", "wait_event_interruptible",
    "mutex_lock", "kthread_stop", "nanosleep",
})

#: attribute calls that are struct/dict accessors or lock primitives —
#: never call-graph edges (locks are lockdep's domain, accessors are the
#: heap-access surface digested separately)
_NEVER_EDGE = frozenset({"get", "set", "add", "acquire", "release"})

#: method names too generic for the unique-definer fallback: resolving
#: them globally would wire unrelated classes together
_GENERIC_NAMES = frozenset({
    "render", "describe", "summary", "main", "run", "close", "reset",
    "free", "register", "unregister", "append", "pop", "remove", "clear",
    "items", "keys", "values", "update", "copy", "sort", "join", "split",
    "count", "record", "start", "stop", "push", "send", "recv", "read",
    "write", "read_u", "write_u", "invoke", "succeed", "call", "wait",
    "timeout", "process", "deliver", "setdefault", "extend", "format",
    "startswith", "endswith", "strip", "lower", "upper", "sample",
})

#: file-op method names that root the ``linux`` context on FileOps
#: subclasses under ``repro/linux``
_FILE_OPS = frozenset({"open", "release", "read", "write", "writev",
                       "ioctl", "mmap", "poll"})


@dataclass(frozen=True)
class Site:
    """A source location witnessing one effect."""

    what: str
    path: str
    line: int

    def render(self) -> str:
        """``what at file:line`` for findings and summaries."""
        return f"{self.what} at {os.path.basename(self.path)}:{self.line}"


@dataclass(frozen=True)
class HeapAccess:
    """One statically inferred shared-heap struct-field access."""

    struct: str                    #: struct type name, or "?" (unresolved)
    field: str
    kernel: str                    #: "linux" / "mckernel" / "?" (unresolved)
    kind: str                      #: "read" or "write"
    atomic: bool
    path: str
    line: int
    func: str                      #: qualname of the accessing function
    locks: Tuple[str, ...]         #: lock classes statically held here
    #: struct/kernel filled in by the refinement pass (unique-field map,
    #: context-derived kernel) rather than read off the receiver — the
    #: crosscheck treats inferred attribution as a wildcard
    inferred: bool = False

    def render(self) -> str:
        """One-line KSan-style description of the access."""
        held = "{" + ", ".join(self.locks) + "}"
        return (f"{self.kind:5s} {self.struct}.{self.field} by "
                f"{self.kernel} locks={held}"
                f"{' [atomic]' if self.atomic else ''} — "
                f"{os.path.basename(self.path)}:{self.line} in {self.func}")


class Effect:
    """Per-function effect lattice element (sets grow monotonically)."""

    __slots__ = ("sleeps", "timed_waits", "offloads", "unpinned",
                 "acquires", "raises_", "rng")

    def __init__(self) -> None:
        self.sleeps: Set[Site] = set()
        self.timed_waits: Set[Site] = set()
        self.offloads: Set[Site] = set()
        self.unpinned: Set[Site] = set()
        self.acquires: Set[str] = set()
        self.raises_: Set[Tuple[str, Site]] = set()
        self.rng: Set[Site] = set()

    def copy(self) -> "Effect":
        """A deep-enough copy (fresh sets, shared frozen sites)."""
        out = Effect()
        for slot in self.__slots__:
            getattr(out, slot).update(getattr(self, slot))
        return out

    def absorb(self, other: "Effect", handled: Iterable[str],
               hierarchy: Dict[str, List[str]]) -> bool:
        """Fold ``other`` (a callee) into this effect; callee raises
        covered by the call site's ``except`` clauses do not propagate.
        Returns True when anything changed."""
        changed = False
        for slot in ("sleeps", "timed_waits", "offloads", "unpinned",
                     "acquires", "rng"):
            mine, theirs = getattr(self, slot), getattr(other, slot)
            if not theirs <= mine:
                mine.update(theirs)
                changed = True
        handled_set = set(handled)
        for errname, site in other.raises_:
            if (errname, site) in self.raises_:
                continue
            if handled_set and _error_covered(errname, handled_set,
                                              hierarchy):
                continue
            self.raises_.add((errname, site))
            changed = True
        return changed

    def summary(self) -> Dict[str, List[str]]:
        """JSON-friendly rendering for ``vet --json``."""
        return {
            "sleeps": sorted(s.render() for s in self.sleeps),
            "timed_waits": sorted(s.render() for s in self.timed_waits),
            "offloads": sorted(s.render() for s in self.offloads),
            "unpinned": sorted(s.render() for s in self.unpinned),
            "acquires": sorted(self.acquires),
            "raises": sorted(f"{e} ({s.render()})"
                             for e, s in self.raises_),
            "rng": sorted(s.render() for s in self.rng),
        }


def _error_covered(errname: str, handled: Set[str],
                   hierarchy: Dict[str, List[str]]) -> bool:
    """True if ``errname`` or any ancestor is in ``handled``."""
    seen: Set[str] = set()
    frontier = [errname]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in handled:
            return True
        frontier.extend(hierarchy.get(name, ()))
    return False


@dataclass(frozen=True)
class CallSite:
    """One syntactic call, pre-resolution."""

    name: str                      #: callee method/function name
    receiver: str                  #: dotted receiver ("self.ring", "")
    line: int
    handled: Tuple[str, ...]       #: error classes caught around the site
    held: Tuple[str, ...]          #: lock classes statically held here


@dataclass
class ResolvedCall:
    """A call site linked to its candidate targets."""

    site: CallSite
    targets: Tuple[str, ...]       #: target qualnames
    confident: bool


@dataclass
class FunctionInfo:
    """One function/method, digested."""

    qualname: str
    name: str
    path: str
    node: ast.FunctionDef
    cls: Optional["ClassModel"]
    effect: Effect = field(default_factory=Effect)
    calls: List[CallSite] = field(default_factory=list)
    spawns: List[CallSite] = field(default_factory=list)
    accesses: List[HeapAccess] = field(default_factory=list)
    #: FAULTS-gated typed-error raise sites (the PD015.6 fault points)
    fault_raises: List[Tuple[str, Site]] = field(default_factory=list)
    local_classes: Dict[str, str] = field(default_factory=dict)

    @property
    def line(self) -> int:
        return self.node.lineno


class ClassModel:
    """One class definition, digested for method resolution."""

    def __init__(self, node: ast.ClassDef, path: str):
        self.node = node
        self.name = node.name
        self.path = path
        self.bases = [_dotted(b).rsplit(".", 1)[-1] for b in node.bases]
        self.methods: Dict[str, FunctionInfo] = {}
        #: self.X = ClassName(...)  ->  attr -> constructor name
        self.attr_classes: Dict[str, str] = {}
        #: self.X = StructInstance/StructView(...)  ->  (struct, kernel)
        self.attr_structs: Dict[str, Tuple[str, str]] = {}

    @property
    def pico_like(self) -> bool:
        return (any("PicoDriver" in b for b in self.bases)
                or any(m.startswith("fast_") for m in self.methods))


def _iter_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Yield ``root`` and descendants, not entering nested defs (the
    root itself may be a def — its body is still walked)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _struct_binding(call: ast.Call) -> Optional[Tuple[str, str]]:
    """(struct, kernel) when ``call`` constructs a struct accessor."""
    last = _dotted(call.func).rsplit(".", 1)[-1]
    if last == "StructInstance":
        default = "linux"
    elif last == "StructView":
        default = "mckernel"
    elif last == "_view" or last.endswith("_view"):
        default = "mckernel"
    else:
        return None
    struct = "?"
    if call.args:
        arg0 = call.args[0]
        if (isinstance(arg0, ast.Constant) and isinstance(arg0.value, str)):
            struct = arg0.value
        elif (isinstance(arg0, ast.Subscript)
                and isinstance(arg0.slice, ast.Constant)
                and isinstance(arg0.slice.value, str)):
            struct = arg0.slice.value
    kernel = default
    for kw in call.keywords:
        if kw.arg == "kernel" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            kernel = kw.value.value
    return struct, kernel


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _FunctionScanner:
    """One pass over a function body, tracking held locks, enclosing
    ``except`` clauses and FAULTS gating while collecting effects."""

    def __init__(self, program: "Program", fn: FunctionInfo,
                 lock_bindings: Dict[str, str]):
        self.program = program
        self.fn = fn
        self.lock_bindings = lock_bindings
        self.locals_structs: Dict[str, Tuple[str, str]] = {}

    def scan(self) -> None:
        self._block(self.fn.node.body, (), frozenset(), False)

    # -- statement walk ----------------------------------------------------

    def _block(self, stmts: List[ast.stmt], held: Tuple[str, ...],
               handled: frozenset, faults: bool) -> Tuple[str, ...]:
        for stmt in stmts:
            held = self._stmt(stmt, held, handled, faults)
        return held

    def _stmt(self, stmt: ast.stmt, held: Tuple[str, ...],
              handled: frozenset, faults: bool) -> Tuple[str, ...]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return held
        if isinstance(stmt, ast.Try):
            caught = self.program.handler_classes(stmt)
            self._block(stmt.body, held, handled | caught, faults)
            for handler in stmt.handlers:
                self._block(handler.body, held, handled, faults)
            self._block(stmt.orelse, held, handled, faults)
            return self._block(stmt.finalbody, held, handled, faults)
        if isinstance(stmt, ast.If):
            self._exprs(stmt.test, held, handled, faults)
            body_faults = faults or _refs_config(stmt.test, ("FAULTS",))
            self._block(stmt.body, held, handled, body_faults)
            self._block(stmt.orelse, held, handled, faults)
            return held
        if isinstance(stmt, ast.While):
            self._exprs(stmt.test, held, handled, faults)
            self._block(stmt.body, held, handled, faults)
            self._block(stmt.orelse, held, handled, faults)
            return held
        if isinstance(stmt, ast.For):
            self._exprs(stmt.iter, held, handled, faults)
            self._block(stmt.body, held, handled, faults)
            self._block(stmt.orelse, held, handled, faults)
            return held
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._exprs(item.context_expr, held, handled, faults)
            self._block(stmt.body, held, handled, faults)
            return held
        if isinstance(stmt, ast.Assign):
            self._bind(stmt)
            self._exprs(stmt.value, held, handled, faults)
            return held
        if isinstance(stmt, ast.Raise):
            self._raise(stmt, handled, faults)
            if stmt.exc is not None:
                self._exprs(stmt.exc, held, handled, faults)
            return held
        # leaf statement: acquire extends the held set for what follows,
        # a release (usually in a finally) shrinks it
        acquired = self._acquire_class(stmt)
        released = self._release_classes(stmt)
        for sub in ast.iter_child_nodes(stmt):
            self._exprs(sub, held, handled, faults)
        if acquired is not None:
            return held + (acquired,)
        if released:
            return tuple(c for c in held if c not in released)
        return held

    # -- lock bookkeeping --------------------------------------------------

    def _lock_class(self, receiver: str) -> str:
        last = receiver.rsplit(".", 1)[-1]
        name = (self.lock_bindings.get(receiver)
                or self.lock_bindings.get(last))
        if name is not None:
            return name
        from ..core.lockclasses import REGISTRY
        declared = REGISTRY.by_attr(last)
        if declared is not None:
            return declared.name
        return f"?{last}"

    def _acquire_class(self, stmt: ast.stmt) -> Optional[str]:
        value = getattr(stmt, "value", None)
        if (isinstance(stmt, ast.Expr) and isinstance(value, ast.YieldFrom)
                and isinstance(value.value, ast.Call)
                and isinstance(value.value.func, ast.Attribute)
                and value.value.func.attr == "acquire"):
            return self._lock_class(_dotted(value.value.func.value))
        return None

    def _release_classes(self, stmt: ast.stmt) -> Set[str]:
        out: Set[str] = set()
        for sub in _iter_nodes(stmt):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"):
                out.add(self._lock_class(_dotted(sub.func.value)))
        return out

    # -- bindings ----------------------------------------------------------

    def _bind(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.value, ast.Call):
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        binding = _struct_binding(stmt.value)
        if binding is not None:
            self.locals_structs[target.id] = binding
            return
        if isinstance(stmt.value.func, ast.Name):
            ctor = stmt.value.func.id
            if ctor in self.program.classes_by_name:
                self.fn.local_classes[target.id] = ctor

    # -- expression handling -----------------------------------------------

    def _exprs(self, root: ast.AST, held: Tuple[str, ...],
               handled: frozenset, faults: bool) -> None:
        for node in _iter_nodes(root):
            if isinstance(node, ast.Yield) and node.value is not None \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr in _WAIT_CALLS:
                self.fn.effect.timed_waits.add(Site(
                    _dotted(node.value.func), self.fn.path, node.lineno))
            elif isinstance(node, ast.YieldFrom) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr == "acquire":
                self.fn.effect.acquires.add(
                    self._lock_class(_dotted(node.value.func.value)))
            elif isinstance(node, ast.Raise):
                self._raise(node, handled, faults)
            elif isinstance(node, ast.Call):
                self._call(node, held, handled)

    def _raise(self, node: ast.Raise, handled: frozenset,
               faults: bool) -> None:
        if node.exc is None or not isinstance(node.exc, ast.Call):
            return
        errname = _dotted(node.exc.func).rsplit(".", 1)[-1]
        if errname not in self.program.error_classes:
            return
        site = Site(errname, self.fn.path, node.lineno)
        if not _error_covered(errname, set(handled),
                              self.program.error_hierarchy):
            self.fn.effect.raises_.add((errname, site))
        if faults:
            self.fn.fault_raises.append((errname, site))

    def _call(self, node: ast.Call, held: Tuple[str, ...],
              handled: frozenset) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name, receiver = func.id, ""
        elif isinstance(func, ast.Attribute):
            name, receiver = func.attr, _dotted(func.value)
        else:
            return
        segments = receiver.split(".") if receiver else []
        effect = self.fn.effect
        path, line = self.fn.path, node.lineno
        if name in SLEEP_SERVICES:
            effect.sleeps.add(Site(name, path, line))
        if name in _OFFLOAD_NAMES or "ikc" in segments:
            effect.offloads.add(Site(receiver + "." + name if receiver
                                     else name, path, line))
        if name == "get_user_pages":
            effect.unpinned.add(Site(name, path, line))
        if name == "fires" or "rng" in segments:
            effect.rng.add(Site(name, path, line))
        if name == "process" and segments and segments[-1] == "sim":
            self._spawn(node, held, handled)
            return
        if name in _NEVER_EDGE:
            self._accessor(node, name, receiver, held)
            return
        self.fn.calls.append(CallSite(
            name=name, receiver=receiver, line=line,
            handled=tuple(sorted(handled)), held=held))

    def _spawn(self, node: ast.Call, held: Tuple[str, ...],
               handled: frozenset) -> None:
        if not node.args or not isinstance(node.args[0], ast.Call):
            return
        target = node.args[0].func
        if isinstance(target, ast.Attribute):
            name, receiver = target.attr, _dotted(target.value)
        elif isinstance(target, ast.Name):
            name, receiver = target.id, ""
        else:
            return
        self.fn.spawns.append(CallSite(
            name=name, receiver=receiver, line=node.lineno,
            handled=tuple(sorted(handled)), held=held))

    def _accessor(self, node: ast.Call, name: str, receiver: str,
                  held: Tuple[str, ...]) -> None:
        """Digest ``x.get/set/add("field", ...)`` into heap accesses."""
        if name not in ("get", "set", "add"):
            return
        fieldname = _const_str(node.args[0]) if node.args else None
        if fieldname is None:
            return
        struct, kernel = self._receiver_struct(receiver)
        atomic = name == "add"      # .add models LOCK XADD
        if name == "set":
            if len(node.args) >= 3:
                atomic = bool(getattr(node.args[2], "value", False))
        elif name == "get":
            if len(node.args) >= 2:
                atomic = bool(getattr(node.args[1], "value", False))
        for kw in node.keywords:
            if kw.arg == "atomic":
                atomic = bool(getattr(kw.value, "value", False))
        kinds = {"get": ("read",), "set": ("write",),
                 "add": ("read", "write")}[name]
        for kind in kinds:
            self.fn.accesses.append(HeapAccess(
                struct=struct, field=fieldname, kernel=kernel, kind=kind,
                atomic=atomic, path=self.fn.path, line=node.lineno,
                func=self.fn.qualname, locks=held))

    def _receiver_struct(self, receiver: str) -> Tuple[str, str]:
        if receiver in self.locals_structs:
            return self.locals_structs[receiver]
        if receiver.startswith("self.") and self.fn.cls is not None:
            attr = receiver[5:]
            if attr in self.fn.cls.attr_structs:
                return self.fn.cls.attr_structs[attr]
        return "?", "?"


class Program:
    """The digested whole program and its derived graphs."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: List[ClassModel] = []
        self.classes_by_name: Dict[str, ClassModel] = {}
        self._class_name_counts: Dict[str, int] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.module_functions: Dict[str, List[str]] = {}
        self.error_hierarchy: Dict[str, List[str]] = {}
        self.error_classes: Set[str] = set()
        self.handled_anywhere: Set[str] = set()
        self.edges: Dict[str, List[ResolvedCall]] = {}
        self.spawn_edges: Dict[str, List[ResolvedCall]] = {}
        self.contexts: Dict[str, Set[str]] = {}
        self.effects: Dict[str, Effect] = {}
        #: tree-wide (errname, bare function name) construction index —
        #: the static side of the crosscheck's raised-error containment
        self.error_sites: Set[Tuple[str, str]] = set()
        #: field -> struct names, from EXTRACTION_MANIFEST-style dict
        #: literals (struct name -> [field, ...]); used to attribute
        #: accesses whose receiver type the scanner cannot see
        self.field_structs: Dict[str, Set[str]] = {}
        self._lock_bindings: Dict[str, Dict[str, str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: Optional[Iterable[str]] = None) -> "Program":
        """Digest every module under ``paths`` (default: the installed
        ``repro`` tree) and compute contexts + the effect fixpoint."""
        from ..core import lockclasses
        lockclasses.ensure_declarations()
        program = cls()
        target = [default_lint_root()] if paths is None else list(paths)
        parsed = [astcache.parse_module(f)
                  for f in iter_python_files(target)]
        for module in parsed:
            if module.ok:
                program._digest_module(module)
        program._link_classes()
        for module in parsed:
            if module.ok:
                program._scan_module(module)
        program._resolve_edges()
        program._infer_contexts()
        program._refine_accesses()
        program._fixpoint()
        return program

    def _digest_module(self, module: astcache.ParsedModule) -> None:
        self._lock_bindings[module.path] = _collect_bindings(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._digest_class(node, module.path)
            elif isinstance(node, ast.FunctionDef):
                self._digest_function(node, module.path, None)
            elif isinstance(node, ast.Assign):
                self._digest_manifest(node)

    def _digest_manifest(self, node: ast.Assign) -> None:
        """Digest ``*_MANIFEST = {"struct": ["field", ...], ...}``
        literals into the field -> struct attribution map."""
        if len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name) \
                or "MANIFEST" not in node.targets[0].id \
                or not isinstance(node.value, ast.Dict):
            return
        for key, value in zip(node.value.keys, node.value.values):
            struct = _const_str(key)
            if struct is None or not isinstance(value, (ast.List,
                                                        ast.Tuple)):
                continue
            for elt in value.elts:
                fieldname = _const_str(elt)
                if fieldname is not None:
                    self.field_structs.setdefault(fieldname, set()) \
                        .add(struct)

    def _digest_class(self, node: ast.ClassDef, path: str) -> None:
        model = ClassModel(node, path)
        self.classes.append(model)
        self._class_name_counts[model.name] = \
            self._class_name_counts.get(model.name, 0) + 1
        self.classes_by_name[model.name] = model
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                fn = self._digest_function(item, path, model)
                model.methods[item.name] = fn
                self.methods_by_name.setdefault(item.name, []) \
                    .append(fn.qualname)
        # constructor-typed and struct-typed attributes, from every
        # method (probe()/attach() build state outside __init__)
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            for sub in ast.walk(item):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == "self"
                        and isinstance(sub.value, ast.Call)):
                    continue
                attr = sub.targets[0].attr
                binding = _struct_binding(sub.value)
                if binding is not None:
                    model.attr_structs.setdefault(attr, binding)
                elif isinstance(sub.value.func, ast.Name):
                    model.attr_classes.setdefault(attr, sub.value.func.id)

    def _digest_function(self, node: ast.FunctionDef, path: str,
                         cls_model: Optional[ClassModel]) -> FunctionInfo:
        prefix = f"{cls_model.name}." if cls_model is not None else ""
        qualname = f"{os.path.basename(path)}::{prefix}{node.name}"
        if qualname in self.functions:          # same-named module files
            qualname = f"{path}::{prefix}{node.name}"
        fn = FunctionInfo(qualname=qualname, name=node.name, path=path,
                          node=node, cls=cls_model)
        self.functions[qualname] = fn
        if cls_model is None:
            self.module_functions.setdefault(node.name, []) \
                .append(qualname)
        # nested defs become their own (unlinked) functions so their
        # raise sites enter the crosscheck index — completion closures
        # run in IRQ context and do raise
        for item in node.body:
            self._digest_nested(item, path, cls_model, qualname)
        return fn

    def _digest_nested(self, stmt: ast.stmt, path: str,
                       cls_model: Optional[ClassModel],
                       parent: str) -> None:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.FunctionDef):
                qualname = f"{parent}.<locals>.{sub.name}"
                if qualname not in self.functions:
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname, name=sub.name, path=path,
                        node=sub, cls=cls_model)

    def _link_classes(self) -> None:
        """Compute the error-class hierarchy and drop ambiguous class
        names from by-name resolution."""
        for name, count in self._class_name_counts.items():
            if count > 1:
                del self.classes_by_name[name]
        for model in self.classes:
            self.error_hierarchy[model.name] = list(model.bases)
        for model in self.classes:
            if self._derives_from(model.name, "ReproError"):
                self.error_classes.add(model.name)
        self.error_classes.add("ReproError")

    def _derives_from(self, name: str, ancestor: str) -> bool:
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == ancestor:
                return True
            frontier.extend(self.error_hierarchy.get(current, ()))
        return False

    def handler_classes(self, node: ast.Try) -> frozenset:
        """Error classes genuinely handled by ``node``'s except clauses
        (a handler whose body re-raises bare does not count), with a
        side effect: they also enter the tree-wide handled set."""
        out: Set[str] = set()
        for handler in node.handlers:
            if any(isinstance(s, ast.Raise) and s.exc is None
                   for s in handler.body):
                continue
            if handler.type is None:
                continue
            types = (handler.type.elts
                     if isinstance(handler.type, ast.Tuple)
                     else [handler.type])
            for t in types:
                name = _dotted(t).rsplit(".", 1)[-1]
                out.add(name)
        self.handled_anywhere.update(out)
        return frozenset(out)

    def _scan_module(self, module: astcache.ParsedModule) -> None:
        bindings = self._lock_bindings.get(module.path, {})
        for fn in list(self.functions.values()):
            if fn.path != module.path:
                continue
            _FunctionScanner(self, fn, bindings).scan()
            for errname, site in fn.effect.raises_:
                self.error_sites.add((errname, fn.name))
            # constructions (incl. locally handled raises and errors
            # passed to callbacks) also enter the crosscheck index
            for sub in _iter_nodes(fn.node):
                if isinstance(sub, ast.Call):
                    last = _dotted(sub.func).rsplit(".", 1)[-1]
                    if last in self.error_classes:
                        self.error_sites.add((last, fn.name))

    # -- call-graph resolution ---------------------------------------------

    def _lookup_method(self, model: ClassModel,
                       name: str) -> Optional[str]:
        seen: Set[str] = set()
        frontier = [model]
        while frontier:
            current = frontier.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            if name in current.methods:
                return current.methods[name].qualname
            for base in current.bases:
                base_model = self.classes_by_name.get(base)
                if base_model is not None:
                    frontier.append(base_model)
        return None

    def _resolve(self, fn: FunctionInfo,
                 site: CallSite) -> Tuple[Tuple[str, ...], bool]:
        name, receiver = site.name, site.receiver
        if receiver == "self" and fn.cls is not None:
            target = self._lookup_method(fn.cls, name)
            if target is not None:
                return (target,), True
        if receiver.startswith("self.") and fn.cls is not None \
                and "." not in receiver[5:]:
            ctor = fn.cls.attr_classes.get(receiver[5:])
            model = self.classes_by_name.get(ctor) if ctor else None
            if model is not None:
                target = self._lookup_method(model, name)
                if target is not None:
                    return (target,), True
        if receiver and "." not in receiver \
                and receiver in fn.local_classes:
            model = self.classes_by_name.get(fn.local_classes[receiver])
            if model is not None:
                target = self._lookup_method(model, name)
                if target is not None:
                    return (target,), True
        if not receiver:
            model = self.classes_by_name.get(name)
            if model is not None:            # constructor call
                target = self._lookup_method(model, "__init__")
                return ((target,), True) if target else ((), True)
            funcs = self.module_functions.get(name, [])
            if len(funcs) == 1:
                return (funcs[0],), True
        if name in _GENERIC_NAMES or name.startswith("__"):
            return (), False
        candidates = list(self.methods_by_name.get(name, []))
        if not receiver:
            candidates += self.module_functions.get(name, [])
        if len(candidates) == 1:
            return (candidates[0],), True
        if 2 <= len(candidates) <= 4:
            return tuple(candidates), False
        return (), False

    def _resolve_edges(self) -> None:
        for qual, fn in self.functions.items():
            self.edges[qual] = []
            self.spawn_edges[qual] = []
            for site in fn.calls:
                targets, confident = self._resolve(fn, site)
                if targets:
                    self.edges[qual].append(
                        ResolvedCall(site, targets, confident))
            for site in fn.spawns:
                targets, confident = self._resolve(fn, site)
                if targets:
                    self.spawn_edges[qual].append(
                        ResolvedCall(site, targets, confident))

    # -- context inference -------------------------------------------------

    def _context_roots(self) -> Dict[str, Set[str]]:
        roots: Dict[str, Set[str]] = {}

        def mark(qualname: Optional[str], context: str) -> None:
            if qualname is not None:
                roots.setdefault(qualname, set()).add(context)

        for model in self.classes:
            parts = os.path.normpath(model.path).split(os.sep)
            if model.pico_like:
                for name, fn in model.methods.items():
                    if name.startswith("fast_"):
                        mark(fn.qualname, "lwk")
            if "mckernel" in parts:
                for name, fn in model.methods.items():
                    if name in ("_dispatch", "syscall"):
                        mark(fn.qualname, "lwk")
            if "linux" in parts and any("FileOps" in b
                                        for b in model.bases):
                for name, fn in model.methods.items():
                    if name in _FILE_OPS:
                        mark(fn.qualname, "linux")
        # IRQ registration sites: dispatcher assignment, interrupt
        # delivery, cross-kernel callback registration
        for fn in self.functions.values():
            if fn.cls is None:
                continue
            for sub in _iter_nodes(fn.node):
                if (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and sub.targets[0].attr in ("irq_dispatcher",
                                                    "error_dispatcher")
                        and isinstance(sub.value, ast.Attribute)
                        and isinstance(sub.value.value, ast.Name)
                        and sub.value.value.id == "self"):
                    mark(self._lookup_method(fn.cls, sub.value.attr),
                         "irq")
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr in ("deliver", "register"):
                    for arg in sub.args:
                        if (isinstance(arg, ast.Attribute)
                                and isinstance(arg.value, ast.Name)
                                and arg.value.id == "self"):
                            mark(self._lookup_method(fn.cls, arg.attr),
                                 "irq")
        return roots

    def _spawn_context(self, spawner: FunctionInfo) -> Optional[str]:
        parts = os.path.normpath(spawner.path).split(os.sep)
        if "hw" not in parts:
            return None
        base = os.path.basename(spawner.path)
        if "hfi" in base:
            return "sdma-engine"
        if "fabric" in base:
            return "fabric"
        return "device"

    def _infer_contexts(self) -> None:
        self.contexts = {qual: set() for qual in self.functions}
        worklist: List[str] = []
        for qual, contexts in self._context_roots().items():
            self.contexts[qual].update(contexts)
            worklist.append(qual)
        # spawn targets inside the hardware layer run in engine context
        # regardless of who spawned them
        for qual, spawns in self.spawn_edges.items():
            override = self._spawn_context(self.functions[qual])
            if override is None:
                continue
            for rc in spawns:
                for target in rc.targets:
                    if override not in self.contexts[target]:
                        self.contexts[target].add(override)
                        worklist.append(target)
        while worklist:
            qual = worklist.pop()
            mine = self.contexts[qual]
            # contexts flow along confident sync edges and spawn edges
            for rc in self.edges.get(qual, []):
                if not rc.confident:
                    continue
                for target in rc.targets:
                    if not mine <= self.contexts[target]:
                        self.contexts[target].update(mine)
                        worklist.append(target)
            for rc in self.spawn_edges.get(qual, []):
                if self._spawn_context(self.functions[qual]) is not None:
                    continue
                for target in rc.targets:
                    if not mine <= self.contexts[target]:
                        self.contexts[target].update(mine)
                        worklist.append(target)

    # -- access refinement -------------------------------------------------

    def _refine_accesses(self) -> None:
        """Attribute accesses whose receiver the scanner could not type:
        a field that belongs to exactly one struct (per the extraction
        manifests and the receiver-typed accesses) names its struct, and
        a function running in exactly one kernel's contexts names its
        kernel.  Refined attribution is marked ``inferred`` so the
        crosscheck can treat it as soft."""
        fields: Dict[str, Set[str]] = {f: set(s)
                                       for f, s in self.field_structs.items()}
        for fn in self.functions.values():
            for access in fn.accesses:
                if access.struct != "?":
                    fields.setdefault(access.field, set()) \
                        .add(access.struct)
        for fn in self.functions.values():
            refined: List[HeapAccess] = []
            for access in fn.accesses:
                struct, kernel = access.struct, access.kernel
                inferred = access.inferred
                if struct == "?":
                    candidates = fields.get(access.field, set())
                    if len(candidates) == 1:
                        struct = next(iter(candidates))
                        inferred = True
                if kernel == "?":
                    contexts = self.contexts.get(access.func, set())
                    if contexts and contexts <= {"lwk"}:
                        kernel, inferred = "mckernel", True
                    elif contexts and contexts <= {"linux", "irq"}:
                        kernel, inferred = "linux", True
                if (struct, kernel, inferred) != (access.struct,
                                                  access.kernel,
                                                  access.inferred):
                    access = replace(access, struct=struct, kernel=kernel,
                                     inferred=inferred)
                refined.append(access)
            fn.accesses = refined

    # -- effect fixpoint ---------------------------------------------------

    def _fixpoint(self) -> None:
        self.effects = {qual: fn.effect.copy()
                        for qual, fn in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for qual in self.functions:
                eff = self.effects[qual]
                for rc in self.edges.get(qual, []):
                    for target in rc.targets:
                        if eff.absorb(self.effects[target],
                                      rc.site.handled,
                                      self.error_hierarchy):
                            changed = True

    # -- queries used by the checkers and the CLI --------------------------

    def entry_points(self) -> List[FunctionInfo]:
        """The Pico fast-path entry points (``fast_*`` of chassis)."""
        out = [fn for fn in self.functions.values()
               if fn.cls is not None and fn.cls.pico_like
               and fn.name.startswith("fast_")]
        return sorted(out, key=lambda fn: fn.qualname)

    def witness_chain(self, entry: str, offender) -> List[str]:
        """Shortest confident-first call chain from ``entry`` to a
        function whose *local* effect satisfies ``offender``."""
        parents: Dict[str, Optional[str]] = {entry: None}
        queue = [entry]
        goal: Optional[str] = None
        while queue and goal is None:
            qual = queue.pop(0)
            if offender(self.functions[qual].effect):
                goal = qual
                break
            for rc in self.edges.get(qual, []):
                for target in rc.targets:
                    if target not in parents:
                        parents[target] = qual
                        queue.append(target)
        if goal is None:
            return [entry]
        chain = [goal]
        while parents[chain[-1]] is not None:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return chain

    def all_accesses(self) -> List[HeapAccess]:
        """Every statically inferred shared-heap access, tree-wide."""
        out: List[HeapAccess] = []
        for fn in self.functions.values():
            out.extend(fn.accesses)
        return out

    def to_dot(self) -> str:
        """Graphviz call graph (confident solid, ambiguous dashed)."""
        lines = ["digraph picovet_calls {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9, fontname="monospace"];']
        interesting: Set[str] = set()
        for qual, rcs in sorted(self.edges.items()):
            for rc in rcs:
                interesting.add(qual)
                interesting.update(rc.targets)
        for qual in sorted(interesting):
            contexts = ",".join(sorted(self.contexts.get(qual, ())))
            label = qual + (f"\\n[{contexts}]" if contexts else "")
            lines.append(f'  "{qual}" [label="{label}"];')
        for qual, rcs in sorted(self.edges.items()):
            for rc in rcs:
                style = "solid" if rc.confident else "dashed"
                for target in sorted(rc.targets):
                    lines.append(f'  "{qual}" -> "{target}" '
                                 f'[style={style}];')
        lines.append("}")
        return "\n".join(lines)

    def json_summary(self) -> Dict[str, object]:
        """Per-function contexts + transitive effects for ``--json``."""
        out: Dict[str, object] = {}
        for qual in sorted(self.functions):
            eff = self.effects[qual]
            summary = eff.summary()
            if not any(summary.values()) \
                    and not self.contexts.get(qual):
                continue
            out[qual] = {"contexts": sorted(self.contexts.get(qual, ())),
                         "effects": summary}
        return out
