"""Benchmarks and mini-applications (paper section 4.2).

Each CORAL proxy app is described once, as an :class:`~repro.apps.base.AppSpec`
communication signature (ranks/threads geometry, compute per iteration, and
a sequence of per-iteration communication phases).  The same signature
drives both execution backends:

* the **micro** driver (:func:`repro.apps.base.run_micro`) interprets the
  signature through the real MPI/PSM/driver stack in the discrete-event
  simulator — used for small scales and integration tests;
* the **macro** cluster model (:mod:`repro.cluster`) evaluates the
  signature in closed form at up to 256 nodes / 16K ranks — used to
  regenerate Figures 5-9 and Table 1.
"""

from .base import (AppSpec, CollectivePhase, FileIO, HaloExchange,
                   MemChurn, SweepPhase, run_micro)
from .imb import PingPing, PingPong, SendRecv
from .lammps import LAMMPS
from .nekbone import NEKBONE
from .umt import UMT2013
from .hacc import HACC
from .qbox import QBOX

ALL_APPS = {app.name: app for app in (LAMMPS, NEKBONE, UMT2013, HACC, QBOX)}

__all__ = ["ALL_APPS", "AppSpec", "CollectivePhase", "FileIO", "HACC",
           "HaloExchange", "LAMMPS", "MemChurn", "NEKBONE", "PingPing", "PingPong", "SendRecv",
           "QBOX", "SweepPhase", "UMT2013", "run_micro"]
