"""Application communication signatures and the micro execution driver.

A signature is deliberately coarse: per iteration, an app does some
computation and a sequence of *phases* chosen from a small vocabulary that
covers the paper's workloads:

* :class:`HaloExchange` — nonblocking neighbor exchange then waitall
  (LAMMPS halos, HACC particle exchange);
* :class:`SweepPhase` — latency-chained pipeline stages where downstream
  ranks wait on upstream messages (UMT2013 Sn transport sweeps); this is
  the phase that converts per-syscall offload latency into critical-path
  time;
* :class:`CollectivePhase` — barrier/allreduce/bcast/alltoallv/scan;
* :class:`MemChurn` — mmap/munmap pairs per iteration (QBOX temporary
  buffers);
* :class:`FileIO` — small offloaded reads (diagnostics).

``imbalance_cv`` adds app-intrinsic load imbalance (log-normal multiplier
on compute), absorbed at the next synchronizing phase — the source of the
Barrier/Wait time Table 1 shows even on Linux.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import ReproError
from ..mpi import collectives
from ..mpi.communicator import MpiRank
from ..mpi.p2p import waitall
from ..units import KiB


@dataclass(frozen=True)
class HaloExchange:
    """Nonblocking exchange with ``neighbors`` partners of ``msg_bytes``
    each, completed by a waitall."""

    neighbors: int
    msg_bytes: int
    rounds: int = 1


@dataclass(frozen=True)
class SweepPhase:
    """``stages`` dependency-chained hops; at each stage the active ranks
    (``active_fraction`` of all) forward ``msg_bytes`` downstream and the
    next stage cannot start before delivery."""

    stages: int
    msg_bytes: int
    active_fraction: float = 1.0
    msgs_per_stage: int = 1


@dataclass(frozen=True)
class CollectivePhase:
    """``count`` back-to-back collectives of ``kind`` on ``nbytes``.

    ``scope`` restricts the collective to a sub-communicator of that many
    ranks (0 = world) — QBOX's alltoallv runs within column groups."""

    kind: str            # barrier|allreduce|bcast|alltoallv|allgather|scan
    nbytes: int = 8
    count: int = 1
    scope: int = 0


@dataclass(frozen=True)
class MemChurn:
    """``mmaps`` mmap+munmap pairs of ``nbytes`` each per iteration."""

    mmaps: int
    nbytes: int


@dataclass(frozen=True)
class FileIO:
    """Small offloaded reads (diagnostics, tables)."""

    reads: int
    nbytes: int = 4 * KiB


Phase = Union[HaloExchange, SweepPhase, CollectivePhase, MemChurn, FileIO]


@dataclass(frozen=True)
class AppSpec:
    """One mini-application's signature (weak scaling: per-rank work and
    message sizes stay constant as nodes are added)."""

    name: str
    ranks_per_node: int
    threads_per_rank: int
    iterations: int
    #: computation seconds per rank per iteration
    compute_seconds: float
    phases: Tuple[Phase, ...]
    #: log-normal CV of per-rank compute (app-intrinsic imbalance)
    imbalance_cv: float = 0.0
    #: LWK memory-management compute speedup (large pages / contiguous
    #: MCDRAM reduce TLB pressure on KNL); 1.0 = no effect
    lwk_compute_factor: float = 1.0
    #: build a Cartesian topology at init (HACC's 3D grid)
    uses_cart: bool = False
    #: library reorder work inside Cart_create, seconds per rank at P
    #: ranks = cart_coeff * P * log2(P), scaled by the TLB factor
    cart_coeff: float = 0.0
    #: smallest node count the app runs on (QBOX needs 4, section 4.3)
    min_nodes: int = 1

    def ranks_for(self, n_nodes: int) -> int:
        """Total ranks at ``n_nodes`` (weak scaling)."""
        return n_nodes * self.ranks_per_node

    def validate(self) -> None:
        """Reject malformed geometries and unknown collective kinds."""
        if self.ranks_per_node < 1 or self.iterations < 1:
            raise ReproError(f"{self.name}: bad geometry")
        for phase in self.phases:
            if isinstance(phase, CollectivePhase) and phase.kind not in (
                    "barrier", "allreduce", "bcast", "alltoallv",
                    "allgather", "scan"):
                raise ReproError(
                    f"{self.name}: unknown collective {phase.kind!r}")


# --- micro driver ------------------------------------------------------------

def _micro_phase(rank: MpiRank, phase: Phase, it: int):
    """Generator: execute one phase through the real MPI stack."""
    size, me = rank.size, rank.rank
    if isinstance(phase, HaloExchange):
        for r in range(phase.rounds):
            reqs = []
            for k in range(1, phase.neighbors + 1):
                dst = (me + k) % size
                src = (me - k) % size
                tag = ("halo", it, r, k)
                reqs.append(rank.irecv(src, tag, phase.msg_bytes))
                sreq = yield from rank.isend(dst, tag, phase.msg_bytes)
                reqs.append(sreq)
            yield from waitall(rank, reqs)
    elif isinstance(phase, SweepPhase):
        # pipeline along the ring of active ranks using persistent
        # channels — UMT2013's MPI_Start/MPI_Wait/MPI_Request_free pattern
        stride = max(1, round(1 / phase.active_fraction))
        n_active = -(-size // stride)
        if me % stride == 0 and n_active > 1:
            idx = me // stride
            nxt = ((idx + 1) % n_active) * stride
            prv = ((idx - 1) % n_active) * stride
            sends = [rank.send_init(nxt, ("sweep", it, m), phase.msg_bytes)
                     for m in range(phase.msgs_per_stage)]
            recvs = [rank.recv_init(prv, ("sweep", it, m), phase.msg_bytes)
                     for m in range(phase.msgs_per_stage)]
            for _s in range(phase.stages):
                for pr in recvs:
                    yield from pr.start()
                for pr in sends:
                    yield from pr.start()
                for pr in sends + recvs:
                    yield from pr.wait()
            for pr in sends + recvs:
                pr.free()
    elif isinstance(phase, CollectivePhase):
        for c in range(phase.count):
            if phase.kind == "barrier":
                yield from collectives.barrier(rank)
            elif phase.kind == "allreduce":
                yield from collectives.allreduce(rank, phase.nbytes, 1.0)
            elif phase.kind == "bcast":
                yield from collectives.bcast(
                    rank, phase.nbytes, root=0,
                    payload="x" if me == 0 else None)
            elif phase.kind == "alltoallv":
                yield from collectives.alltoallv(
                    rank, [phase.nbytes] * size)
            elif phase.kind == "allgather":
                yield from collectives.allgather(rank, phase.nbytes, me)
            elif phase.kind == "scan":
                yield from collectives.scan(rank, phase.nbytes, me)
    elif isinstance(phase, MemChurn):
        for _ in range(phase.mmaps):
            va = yield from rank.task.syscall("mmap", phase.nbytes)
            yield from rank.task.syscall("munmap", va, phase.nbytes)
    elif isinstance(phase, FileIO):
        fd = yield from rank.task.syscall("open", "/scratch/diag.dat")
        for _ in range(phase.reads):
            yield from rank.task.syscall("read", fd, phase.nbytes)
        yield from rank.task.syscall("close", fd)
    else:  # pragma: no cover - exhaustive over the vocabulary
        raise ReproError(f"unknown phase {phase!r}")


def make_rank_main(spec: AppSpec, iterations: Optional[int] = None):
    """Build the per-rank generator for :meth:`MpiWorld.launch`."""
    spec.validate()
    iters = iterations if iterations is not None else spec.iterations

    def rank_main(rank: MpiRank):
        if spec.uses_cart:
            yield from collectives.cart_create(rank, (rank.size,))
        imb_rng = rank.task.rng
        for it in range(iters):
            compute = spec.compute_seconds
            if spec.imbalance_cv > 0 and imb_rng is not None:
                import math
                sigma = math.sqrt(math.log(1 + spec.imbalance_cv ** 2))
                compute *= float(imb_rng.lognormal(-sigma ** 2 / 2, sigma))
            yield from rank.compute(compute)
            for phase in spec.phases:
                yield from _micro_phase(rank, phase, it)
        return rank.sim.now

    return rank_main


def run_micro(machine, spec: AppSpec, iterations: Optional[int] = None,
              compute_scale: float = 1.0):
    """Run a (usually scaled-down) app through the full DES stack.

    Returns ``(runtime_seconds, aggregated MpiStats)``.
    """
    from ..mpi import MpiWorld
    scaled = spec
    if compute_scale != 1.0:
        from dataclasses import replace
        scaled = replace(spec, compute_seconds=spec.compute_seconds
                         * compute_scale)
    world = MpiWorld.build(machine, scaled.ranks_per_node)
    t0 = machine.sim.now
    world.launch(make_rank_main(scaled, iterations))
    return machine.sim.now - t0, world.aggregate_stats()
