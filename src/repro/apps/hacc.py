"""HACC proxy: N-body cosmology framework (paper section 4.2).

Run configuration from the paper: weak scaling, **32 MPI ranks per node,
4 OpenMP threads per rank**.  HACC builds a 3D Cartesian communicator at
startup — ``MPI_Cart_create`` with reorder is its single largest MPI cost
on Linux in Table 1 (the library-internal reorder is pointer-chasing work
that McKernel's large-page, contiguous memory executes ~3x faster).  The
timestep loop alternates particle/grid exchange with large neighbors
(expected-receive sized) and global reductions, so the original McKernel
loses ~30% to offloaded driver calls while McKernel+HFI beats Linux
(Figure 6b).
"""

from ..units import KiB
from .base import AppSpec, CollectivePhase, HaloExchange

HACC = AppSpec(
    name="HACC",
    ranks_per_node=32,
    threads_per_rank=4,
    iterations=10,
    compute_seconds=40e-3,
    phases=(
        # particle overload + FFT slab exchange: few, large messages
        HaloExchange(neighbors=6, msg_bytes=160 * KiB),
        CollectivePhase("allreduce", nbytes=8),
    ),
    imbalance_cv=0.05,
    lwk_compute_factor=0.95,
    uses_cart=True,
    cart_coeff=3.3e-5,
)
