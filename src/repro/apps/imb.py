"""IMB-MPI1 PingPong: the Figure 4 micro-benchmark.

Two ranks on two nodes bounce messages of increasing size; reported
bandwidth is ``size / (round_trip / 2)``, exactly Intel MPI Benchmarks'
definition.  Runs on the *detailed* simulator (full PSM/driver/NIC stack).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..psm import Endpoint, TagMatcher
from ..units import MiB

#: the paper's Figure 4 x-axis (8B .. 4MB)
DEFAULT_SIZES = tuple(2 ** k for k in range(3, 23))


class PingPong:
    """IMB ping-pong harness over one machine (two spawned ranks)."""

    def __init__(self, machine, repetitions: int = 5, warmup: int = 1):
        if len(machine.nodes) < 2:
            raise ValueError("ping-pong needs two nodes")
        self.machine = machine
        self.reps = repetitions
        self.warmup = warmup

    def run(self, sizes: Sequence[int] = DEFAULT_SIZES) -> Dict[int, float]:
        """Returns {message size: one-way bandwidth in bytes/second}."""
        machine = self.machine
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        sizes = list(sizes)
        bufsize = max(max(sizes) * 2, 1 * MiB)
        out: Dict[int, float] = {}
        reps, warm = self.reps, self.warmup

        def rank0():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            for size in sizes:
                t_start = None
                for r in range(reps + warm):
                    if r == warm:
                        t_start = sim.now
                    yield from ep0.mq_send(ep1.addr, ("pp", size, r), buf,
                                           size)
                    req = ep0.mq_irecv(TagMatcher(tag=("pp2", size, r)),
                                       (buf, bufsize))
                    yield req.event
                dt = (sim.now - t_start) / reps
                out[size] = size / (dt / 2)

        def rank1():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for size in sizes:
                for r in range(reps + warm):
                    req = ep1.mq_irecv(TagMatcher(tag=("pp", size, r)),
                                       (buf, bufsize))
                    yield req.event
                    yield from ep1.mq_send(ep0.addr, ("pp2", size, r),
                                           buf, size)

        sim.process(rank1())
        done = sim.process(rank0())
        sim.run(until=done)
        return out


class PingPing:
    """IMB PingPing: both ranks send simultaneously — exercises
    bidirectional egress/SDMA-engine concurrency."""

    def __init__(self, machine, repetitions: int = 5, warmup: int = 1):
        if len(machine.nodes) < 2:
            raise ValueError("ping-ping needs two nodes")
        self.machine = machine
        self.reps = repetitions
        self.warmup = warmup

    def run(self, sizes: Sequence[int] = DEFAULT_SIZES) -> Dict[int, float]:
        """Returns {size: per-direction bandwidth in bytes/second}."""
        machine = self.machine
        sim = machine.sim
        tasks = [machine.spawn_rank(i, 0, i) for i in (0, 1)]
        eps = [Endpoint(sim, machine.params, machine.nodes[i].node.hfi,
                        tasks[i], tracer=machine.tracer) for i in (0, 1)]
        sizes = list(sizes)
        bufsize = max(max(sizes) * 2, 1 * MiB)
        out: Dict[int, float] = {}
        reps, warm = self.reps, self.warmup
        timings: Dict[int, list] = {s: [] for s in sizes}

        def body(me: int):
            other = 1 - me
            yield from eps[me].open()
            buf = yield from tasks[me].syscall("mmap", bufsize)
            while eps[other].addr is None:
                yield sim.timeout(1e-6)
            for size in sizes:
                t_start = None
                for r in range(reps + warm):
                    if r == warm:
                        t_start = sim.now
                    req = eps[me].mq_irecv(
                        TagMatcher(tag=("ping", size, r, other)),
                        (buf, bufsize))
                    yield from eps[me].mq_send(
                        eps[other].addr, ("ping", size, r, me), buf, size)
                    yield req.event
                timings[size].append((sim.now - t_start) / reps)

        procs = [sim.process(body(i)) for i in (0, 1)]
        for p in procs:
            sim.run(until=p)
        for size in sizes:
            out[size] = size / max(timings[size])
        return out


class SendRecv:
    """IMB Sendrecv over a ring of ranks: every rank forwards to its right
    neighbor while receiving from its left, one rank per node."""

    def __init__(self, machine, repetitions: int = 5, warmup: int = 1):
        if len(machine.nodes) < 2:
            raise ValueError("sendrecv needs at least two nodes")
        self.machine = machine
        self.reps = repetitions
        self.warmup = warmup

    def run(self, sizes: Sequence[int] = DEFAULT_SIZES) -> Dict[int, float]:
        """Returns {size: per-rank throughput (in+out bytes per second)}."""
        machine = self.machine
        sim = machine.sim
        n = len(machine.nodes)
        tasks = [machine.spawn_rank(i, 0, i) for i in range(n)]
        eps = [Endpoint(sim, machine.params, machine.nodes[i].node.hfi,
                        tasks[i], tracer=machine.tracer) for i in range(n)]
        sizes = list(sizes)
        bufsize = max(max(sizes) * 2, 1 * MiB)
        out: Dict[int, float] = {}
        reps, warm = self.reps, self.warmup
        timings: Dict[int, list] = {s: [] for s in sizes}

        def body(me: int):
            right, left = (me + 1) % n, (me - 1) % n
            yield from eps[me].open()
            buf = yield from tasks[me].syscall("mmap", bufsize)
            while any(ep.addr is None for ep in eps):
                yield sim.timeout(1e-6)
            for size in sizes:
                t_start = None
                for r in range(reps + warm):
                    if r == warm:
                        t_start = sim.now
                    req = eps[me].mq_irecv(
                        TagMatcher(tag=("ring", size, r, left)),
                        (buf, bufsize))
                    yield from eps[me].mq_send(
                        eps[right].addr, ("ring", size, r, me), buf, size)
                    yield req.event
                timings[size].append((sim.now - t_start) / reps)

        procs = [sim.process(body(i)) for i in range(n)]
        for p in procs:
            sim.run(until=p)
        for size in sizes:
            out[size] = 2 * size / max(timings[size])
        return out
