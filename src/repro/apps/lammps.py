"""LAMMPS proxy: classical molecular dynamics (paper section 4.2).

Run configuration from the paper: weak scaling, **64 MPI ranks per node,
2 OpenMP threads per rank**.  Communication per timestep is spatial-
decomposition halo exchange (6 neighbors, modest message sizes that stay
on the PIO path) plus a small energy reduction.  Because almost nothing
touches the device driver, LAMMPS is the paper's "no regression" control:
McKernel performs like Linux with or without the PicoDriver (Figure 5a).
"""

from ..units import KiB
from .base import AppSpec, CollectivePhase, HaloExchange

LAMMPS = AppSpec(
    name="LAMMPS",
    ranks_per_node=64,
    threads_per_rank=2,
    iterations=10,
    compute_seconds=30e-3,
    phases=(
        # forward + reverse communication of ghost atoms (PIO-sized)
        HaloExchange(neighbors=6, msg_bytes=40 * KiB, rounds=2),
        # thermodynamic output reduction
        CollectivePhase("allreduce", nbytes=64),
    ),
    imbalance_cv=0.03,
    lwk_compute_factor=1.0,
)
