"""Nekbone proxy: spectral-element CG solver (paper section 4.2).

Run configuration from the paper: weak scaling, **32 MPI ranks per node,
4 OpenMP threads per rank**.  Each conjugate-gradient iteration does
nearest-neighbor gather/scatter (small, PIO) plus several global dot
products — latency-bound allreduces that synchronize every rank.  Those
reductions amplify Linux's residual noise at scale, which is why the
original McKernel already shows a small win (Figure 5b).
"""

from ..units import KiB
from .base import AppSpec, CollectivePhase, HaloExchange

NEKBONE = AppSpec(
    name="Nekbone",
    ranks_per_node=32,
    threads_per_rank=4,
    iterations=12,
    compute_seconds=25e-3,
    phases=(
        HaloExchange(neighbors=6, msg_bytes=24 * KiB),
        # CG dot products: 3 global reductions per iteration
        CollectivePhase("allreduce", nbytes=8, count=3),
    ),
    imbalance_cv=0.005,
    lwk_compute_factor=0.99,
)
