"""QBOX proxy: first-principles molecular dynamics / DFT (section 4.2).

Run configuration from the paper: weak scaling, **32 MPI ranks per node,
4 OpenMP threads per rank**; input decks only exist for 4+ nodes, so
Figure 7's x-axis starts at 4.  QBOX's communication is dense linear
algebra over process grids: large broadcasts of wavefunction panels,
alltoallv transposes within column groups, and global reductions — plus
heavy temporary-buffer churn (mmap/munmap every iteration), which is why
``munmap`` dominates the residual kernel time once the PicoDriver removes
the writev/ioctl cost (Figure 9) and why the paper flags McKernel memory
management as future work.
"""

from ..units import KiB, MiB
from .base import AppSpec, CollectivePhase, FileIO, MemChurn

QBOX = AppSpec(
    name="QBOX",
    ranks_per_node=32,
    threads_per_rank=4,
    iterations=10,
    compute_seconds=30e-3,
    phases=(
        # wavefunction panel broadcasts down the process-grid columns
        CollectivePhase("bcast", nbytes=128 * KiB, count=5),
        # transpose within column groups of 32 ranks
        CollectivePhase("alltoallv", nbytes=24 * KiB, count=2, scope=32),
        CollectivePhase("allreduce", nbytes=8, count=20),
        # temporary work arrays for the dense solvers
        MemChurn(mmaps=6, nbytes=2 * MiB),
        FileIO(reads=2),
    ),
    imbalance_cv=0.03,
    lwk_compute_factor=0.80,
    min_nodes=4,
)
