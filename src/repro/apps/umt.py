"""UMT2013 proxy: deterministic (Sn) radiation transport (section 4.2).

Run configuration from the paper: weak scaling, **32 MPI ranks per node,
4 OpenMP threads per rank**.  The dominant pattern is the *transport
sweep*: wavefronts of angle/energy-group work propagate through the
spatial decomposition, so each stage's message must arrive before the
downstream rank can proceed — communication is dependency-chained, and
message sizes sit squarely in the SDMA/expected-receive regime.

That chain is what makes UMT the paper's worst case for syscall
offloading: every hop serializes a writev (sender) and TID registration
(receiver) through the 4 Linux CPUs shared by 32 ranks, and per-call
queueing/context-switch inflation lands directly on the critical path —
UMT on the original McKernel drops below 20% of Linux beyond 4 nodes
(Figure 6a), while the top McKernel MPI time shifts into MPI_Wait
(Table 1) and ioctl+writev dominate kernel time (Figure 8).
"""

from ..units import KiB
from .base import AppSpec, CollectivePhase, FileIO, SweepPhase

UMT2013 = AppSpec(
    name="UMT2013",
    ranks_per_node=32,
    threads_per_rank=4,
    iterations=8,
    compute_seconds=35e-3,
    phases=(
        # sweep: stages of angle-set pipelining, expected-receive sized
        SweepPhase(stages=22, msg_bytes=224 * KiB, active_fraction=1.0),
        # flux iteration convergence check
        CollectivePhase("barrier"),
        CollectivePhase("allreduce", nbytes=8),
        FileIO(reads=2),
    ),
    imbalance_cv=0.045,          # sweep pipeline fill/drain imbalance
    lwk_compute_factor=0.94,
)
