"""Cluster-scale (macro) simulation.

The detailed discrete-event simulator cannot step 16,384 ranks through
per-descriptor NIC events in reasonable time, so application-scale results
(Figures 5-9, Table 1) come from this vectorized model.  It keeps the
paper's two nonlinearities first-class:

* **offload contention** — every driver syscall from McKernel ranks is a
  job for the node's few OS CPUs; FIFO queueing plus per-dispatch context
  switching inflate per-call latency, which dependency-chained
  communication (sweeps, rendezvous handshakes) turns into critical-path
  time;
* **noise amplification** — Linux residual jitter is converted into
  everyone's time by synchronizing collectives (max over ranks).

Its per-message and per-syscall costs are built from the *same*
``repro.params`` constants as the detailed simulator, and
``tests/cluster/test_calibration.py`` checks the two agree where both
apply.
"""

from .model import CommCostModel, MsgCost
from .run import MacroResult, simulate_app

__all__ = ["CommCostModel", "MacroResult", "MsgCost", "simulate_app"]
