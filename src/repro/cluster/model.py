"""Closed-form communication and syscall costs for the macro model.

Every formula mirrors the detailed stack:

* transport: PIO below 64KB, eager-SDMA to the expected threshold,
  windowed expected receive (TID) above it — with the per-descriptor
  engine overhead that separates 4KB-chopping Linux from the
  10KB-coalescing PicoDriver;
* syscall placement: native on Linux, offloaded over IKC on McKernel,
  local fast path for the PicoDriver-claimed calls;
* contention: offloaded calls pay FIFO queueing on ``os_cores`` CPUs plus
  a context-switch penalty growing with queue depth per CPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import OSConfig
from ..params import Params
from ..units import pages_for


@dataclass(frozen=True)
class MsgCost:
    """Cost decomposition of one off-node point-to-point message."""

    nbytes: int
    #: one-way critical-path latency, uncontended
    latency: float
    #: sender-side caller-visible time (syscalls issued + injection)
    sender_time: float
    #: receiver-side caller-visible time (registrations, copies)
    receiver_time: float
    #: node wire occupancy (egress serialization incl. descriptor overhead)
    wire: float
    #: OS-CPU seconds this message costs the node's offload pool
    node_cpu_demand: float
    #: number of offloaded driver calls on the critical path
    chained_offloads: int
    #: McKernel-visible syscall times: name -> (count, seconds_per_call)
    syscalls: Tuple[Tuple[str, int, float], ...] = ()


class CommCostModel:
    """Per-configuration closed-form costs."""

    def __init__(self, params: Params, config: OSConfig):
        self.params = params
        self.config = config
        self.os_cpus = params.node.os_cores

    # ------------------------------------------------------------------
    # transport primitives
    # ------------------------------------------------------------------

    def desc_size(self) -> int:
        """Largest SDMA request this configuration's driver submits."""
        nic = self.params.nic
        return (nic.sdma_max_request if self.config.has_picodriver
                else nic.linux_max_request)

    def wire_time(self, nbytes: int) -> float:
        """Egress serialization: link time + per-descriptor overhead."""
        nic = self.params.nic
        descs = -(-nbytes // self.desc_size())
        return nbytes / nic.link_bandwidth + descs * nic.sdma_desc_overhead

    def pio_time(self, nbytes: int) -> float:
        """Programmed-I/O injection time for one message."""
        nic = self.params.nic
        return nic.pio_overhead + nbytes / nic.pio_bandwidth

    def shm_msg_time(self, nbytes: int) -> float:
        """Intra-node message: shared-memory transport, no driver."""
        nic = self.params.nic
        return (nic.shm_latency + nbytes / nic.shm_bandwidth
                + self.params.psm.mq_overhead)

    def eager_copy_lag(self, nbytes: int) -> float:
        """Receiver copy time not hidden by arrival pipelining."""
        nic = self.params.nic
        tail = min(nbytes, 8192) / nic.eager_copy_bandwidth
        return tail + max(0.0, nbytes * (1.0 / nic.eager_copy_bandwidth
                                         - 1.0 / nic.link_bandwidth))

    # ------------------------------------------------------------------
    # driver syscall handler times (as executed on the serving CPU)
    # ------------------------------------------------------------------

    def writev_handler(self, nbytes: int) -> float:
        """SDMA-send handler CPU time (gup/ptwalk + descriptor builds)."""
        sc = self.params.syscall
        if self.config.has_picodriver:
            spans = -(-nbytes // (2 * 1024 * 1024))  # contiguous large pages
            descs = -(-nbytes // self.desc_size())
            return (sc.writev_base_pico + spans * sc.ptwalk_per_span
                    + descs * sc.desc_build)
        pages = pages_for(nbytes)
        return (sc.writev_base + pages * sc.gup_per_page
                + pages * sc.desc_build)

    def tid_update_handler(self, nbytes: int) -> float:
        """Expected-receive registration handler CPU time."""
        sc = self.params.syscall
        nic = self.params.nic
        if self.config.has_picodriver:
            entries = max(1, -(-nbytes // nic.tid_max_span))
            return (sc.tid_ioctl_base_pico + entries * nic.tid_program_cost
                    + entries * sc.ptwalk_per_span)
        pages = pages_for(nbytes)
        return (sc.tid_ioctl_base + pages * sc.gup_per_page
                + pages * nic.tid_program_cost)

    def tid_free_handler(self, nbytes: int) -> float:
        """TID unregistration handler CPU time."""
        sc = self.params.syscall
        nic = self.params.nic
        if self.config.has_picodriver:
            entries = max(1, -(-nbytes // nic.tid_max_span))
            return sc.tid_ioctl_base_pico + entries * nic.tid_program_cost
        return (sc.tid_ioctl_base
                + pages_for(nbytes) * nic.tid_program_cost)

    # ------------------------------------------------------------------
    # syscall placement
    # ------------------------------------------------------------------

    def switch_penalty(self, depth_per_cpu: float) -> float:
        """Per-dispatch disturbance at the given queue depth per CPU."""
        ikc = self.params.ikc
        return ikc.context_switch_cost * min(max(depth_per_cpu - 1.0, 0.0),
                                             ikc.contention_cap)

    def driver_call(self, handler: float, fast_path: bool,
                    depth_per_cpu: float) -> Tuple[float, float]:
        """One driver syscall -> (caller-visible time, OS-CPU demand).

        ``depth_per_cpu`` is the phase's average offload queue depth per
        OS CPU; caller-visible time includes the FIFO wait it implies.
        """
        sc = self.params.syscall
        ikc = self.params.ikc
        if self.config is OSConfig.LINUX:
            return sc.linux_entry + handler, 0.0
        if fast_path and self.config.has_picodriver:
            return sc.lwk_entry + handler, 0.0
        switch = self.switch_penalty(depth_per_cpu)
        service = ikc.dispatch_cost + switch + handler + ikc.response_cost
        queue_wait = max(depth_per_cpu - 1.0, 0.0) * service
        visible = (sc.lwk_entry + ikc.request_cost + ikc.ipi_cost
                   + queue_wait + service)
        return visible, service

    # ------------------------------------------------------------------
    # message-level costs
    # ------------------------------------------------------------------

    def message(self, nbytes: int, depth_per_cpu: float = 0.0) -> MsgCost:
        """Cost of one off-node point-to-point message."""
        params = self.params
        psm = params.psm
        mq = psm.mq_overhead
        lat_wire = params.nic.wire_latency
        if nbytes <= params.nic.pio_threshold:
            send = mq + self.pio_time(nbytes)
            return MsgCost(nbytes=nbytes, latency=send + lat_wire + mq,
                           sender_time=send, receiver_time=mq,
                           wire=self.pio_time(nbytes), node_cpu_demand=0.0,
                           chained_offloads=0)
        if nbytes <= psm.expected_threshold:
            handler = self.writev_handler(nbytes)
            visible, demand = self.driver_call(handler, fast_path=True,
                                               depth_per_cpu=depth_per_cpu)
            wire = self.wire_time(nbytes)
            copy = self.eager_copy_lag(nbytes)
            return MsgCost(
                nbytes=nbytes,
                latency=mq + visible + wire + lat_wire + copy + mq,
                sender_time=mq + visible,
                receiver_time=mq + copy,
                wire=wire,
                node_cpu_demand=demand,
                chained_offloads=0 if demand == 0.0 else 1,
                syscalls=(("writev", 1, visible),))
        # expected receive: windowed rendezvous
        windows = -(-nbytes // psm.window_size)
        wsize = min(nbytes, psm.window_size)
        wv_vis, wv_dem = self.driver_call(self.writev_handler(wsize), True,
                                          depth_per_cpu)
        up_vis, up_dem = self.driver_call(self.tid_update_handler(wsize),
                                          True, depth_per_cpu)
        fr_vis, fr_dem = self.driver_call(self.tid_free_handler(wsize),
                                          True, depth_per_cpu)
        wire = self.wire_time(nbytes)
        wire_per_window = self.wire_time(wsize)
        # critical path: RTS, first registration + CTS, then windows
        # pipelined at the pace of the slowest station
        rndv = psm.rndv_window_overhead
        station = max(wire_per_window, up_vis + fr_vis + rndv, wv_vis)
        first = (mq + self.pio_time(psm.ctrl_bytes) + lat_wire    # RTS
                 + rndv + up_vis                                   # TID reg
                 + self.pio_time(psm.ctrl_bytes) + lat_wire)       # CTS
        latency = first + wv_vis + windows * station + lat_wire
        sender_time = mq + windows * wv_vis
        receiver_time = windows * (rndv + up_vis + fr_vis)
        demand = windows * (wv_dem + up_dem + fr_dem)
        chained = 0 if wv_dem == 0.0 else windows * 3
        return MsgCost(
            nbytes=nbytes, latency=latency, sender_time=sender_time,
            receiver_time=receiver_time, wire=wire, node_cpu_demand=demand,
            chained_offloads=chained,
            syscalls=(("writev", windows, wv_vis),
                      ("ioctl", windows, up_vis),
                      ("ioctl", windows, fr_vis)))

    # ------------------------------------------------------------------
    # non-driver syscalls
    # ------------------------------------------------------------------

    def plain_call(self, handler: float,
                   depth_per_cpu: float = 0.0) -> Tuple[float, float]:
        """A non-device syscall that offloads on both McKernel configs."""
        return self.driver_call(handler, fast_path=False,
                                depth_per_cpu=depth_per_cpu)

    def mmap_times(self, nbytes: int,
                   depth_per_cpu: float = 0.0) -> Dict[str, Tuple[float, float]]:
        """mmap+munmap pair -> {name: (visible, demand)}."""
        sc = self.params.syscall
        pages = pages_for(nbytes)
        mmap_h = sc.mmap_cost + pages * sc.page_map_cost
        munmap_h = sc.munmap_cost + pages * sc.page_unmap_cost
        if self.config is OSConfig.LINUX:
            return {"mmap": (sc.linux_entry + mmap_h, 0.0),
                    "munmap": (sc.linux_entry + munmap_h, 0.0)}
        # McKernel: both local, but munmap adds the offloaded shadow unmap
        shadow_vis, shadow_dem = self.plain_call(munmap_h, depth_per_cpu)
        return {"mmap": (sc.lwk_entry + mmap_h, 0.0),
                "munmap": (sc.lwk_entry + munmap_h + shadow_vis, shadow_dem)}

    def init_times(self, depth_per_cpu: float = 0.0) -> Dict[str, Tuple[float, float]]:
        """Per-rank device initialization (open, context, device mmaps)."""
        sc = self.params.syscall
        open_vis, open_dem = self.plain_call(sc.open_cost, depth_per_cpu)
        ioctl_vis, ioctl_dem = self.plain_call(0.7e-6, depth_per_cpu)
        mmap_vis, mmap_dem = self.plain_call(sc.mmap_cost, depth_per_cpu)
        out = {"open": (open_vis, open_dem),
               "ioctl": (ioctl_vis, ioctl_dem),
               "mmap": (mmap_vis, mmap_dem)}
        return out

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------

    @property
    def compute_factor(self) -> float:
        return 1.0

    def tlb_factor(self) -> float:
        """Large-page/contiguous memory speedup of library-internal
        pointer-chasing work (MPI_Cart_create reorder on KNL)."""
        return 0.35 if self.config.is_multikernel else 1.0


def off_node_fraction(n_nodes: int, base: float = 0.45,
                      growth: float = 0.06, cap: float = 0.9) -> float:
    """Fraction of a rank's point-to-point partners on other nodes.

    0 on a single node (everything is shared memory); grows slowly with
    the node count as the decomposition surface crosses more node
    boundaries."""
    if n_nodes <= 1:
        return 0.0
    return min(cap, base + growth * math.log2(n_nodes))


def collective_rounds(kind: str, n_ranks: int) -> int:
    """Message rounds of the named collective algorithm at ``n_ranks``."""
    if n_ranks <= 1:
        return 0
    log2p = math.ceil(math.log2(n_ranks))
    if kind in ("barrier", "allreduce", "bcast", "scan"):
        return log2p
    if kind in ("allgather", "alltoallv"):
        return n_ranks - 1
    raise ValueError(f"unknown collective {kind!r}")
