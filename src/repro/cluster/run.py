"""The macro application simulator: evaluate an AppSpec at scale.

Per-rank clocks are numpy arrays; phases advance them according to the
closed-form costs of :mod:`repro.cluster.model`.  Synchronizing collectives
take the max over ranks (straggler absorption), which is where Linux noise
and McKernel offload inflation become everyone's problem.

Outputs per run: mean runtime, an ``I_MPI_STATS``-style per-call profile
(Table 1) and a kernel-side per-syscall profile (Figures 8-9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..apps.base import (AppSpec, CollectivePhase, FileIO, HaloExchange,
                         MemChurn, SweepPhase)
from ..config import OSConfig
from ..mpi.stats import MpiStats, StatRow
from ..params import Params, default_params
from ..sim import RngFactory
from ..units import USEC
from .model import CommCostModel, collective_rounds, off_node_fraction

#: MPI waits issue a nanosleep back-off roughly this often
_NANOSLEEP_PERIOD = 500 * USEC


@dataclass
class MacroResult:
    """Everything one macro run produces."""

    app: str
    config: OSConfig
    n_nodes: int
    n_ranks: int
    #: mean per-rank wall-clock seconds
    runtime: float
    #: setup seconds (MPI_Init + Cart_create); CORAL figures of merit are
    #: reported on the solver loop, excluding setup
    init_seconds: float = 0.0
    #: cumulative seconds over all ranks, per MPI call (Table 1 "Time")
    mpi_time: Dict[str, float] = field(default_factory=dict)
    mpi_calls: Dict[str, int] = field(default_factory=dict)
    #: kernel-visible syscall seconds over all ranks (Figures 8-9)
    syscall_time: Dict[str, float] = field(default_factory=dict)
    syscall_count: Dict[str, int] = field(default_factory=dict)

    @property
    def loop_runtime(self) -> float:
        """Solver-loop seconds (runtime minus setup)."""
        return self.runtime - self.init_seconds

    @property
    def figure_of_merit(self) -> float:
        """Weak scaling: work per unit solver-loop time (CORAL FOMs
        exclude initialization); higher is better."""
        return 1.0 / self.loop_runtime

    @property
    def total_mpi_time(self) -> float:
        return sum(self.mpi_time.values())

    @property
    def total_runtime(self) -> float:
        return self.runtime * self.n_ranks

    @property
    def total_kernel_time(self) -> float:
        return sum(self.syscall_time.values())

    def stats(self) -> MpiStats:
        """The profile as an :class:`MpiStats` (Table 1 rendering)."""
        out = MpiStats()
        out._time = dict(self.mpi_time)
        out._calls = dict(self.mpi_calls)
        out._runtime = self.total_runtime
        return out

    def top_calls(self, n: int = 5) -> List[StatRow]:
        """Top-n MPI calls by cumulative time."""
        return self.stats().top(n)

    def syscall_shares(self) -> Dict[str, float]:
        """Per-syscall share of kernel time, sorted descending."""
        total = self.total_kernel_time or 1.0
        return {name: t / total for name, t in
                sorted(self.syscall_time.items(), key=lambda kv: -kv[1])}


class _Accumulator:
    """Mutable run state."""

    def __init__(self, result: MacroResult):
        self.result = result

    def mpi(self, call: str, total_seconds: float, calls: int = 0) -> None:
        r = self.result
        r.mpi_time[call] = r.mpi_time.get(call, 0.0) + float(total_seconds)
        if calls:
            r.mpi_calls[call] = r.mpi_calls.get(call, 0) + calls

    def sys(self, name: str, total_seconds: float, count: int) -> None:
        r = self.result
        r.syscall_time[name] = (r.syscall_time.get(name, 0.0)
                                + float(total_seconds))
        r.syscall_count[name] = r.syscall_count.get(name, 0) + count


def _noise_extra(rng: np.random.Generator, params: Params,
                 dt: float, n: int) -> np.ndarray:
    """Vectorized residual-noise sample for ``n`` Linux app cores over an
    interval of ``dt`` seconds each (mirrors linux.noise.NoiseModel)."""
    p = params.noise
    extra = np.full(n, dt * p.tick_rate_hz * p.tick_cost)
    bursts = rng.poisson(dt * p.burst_rate_hz, size=n)
    hot = bursts > 0
    if hot.any():
        mu = math.log(p.burst_log_median)
        extra[hot] += (bursts[hot]
                       * np.exp(rng.normal(mu, p.burst_log_sigma,
                                           size=int(hot.sum()))))
    return extra


def _burst_tail_mean(params: Params) -> float:
    p = params.noise
    return p.burst_log_median * math.exp(p.burst_log_sigma ** 2 / 2)


def simulate_app(spec: AppSpec, n_nodes: int, config: OSConfig,
                 params: Optional[Params] = None,
                 iterations: Optional[int] = None) -> MacroResult:
    """Evaluate ``spec`` on ``n_nodes`` under ``config``."""
    spec.validate()
    if n_nodes < spec.min_nodes:
        raise ValueError(f"{spec.name} needs >= {spec.min_nodes} nodes")
    params = params if params is not None else default_params()
    iters = iterations if iterations is not None else spec.iterations
    model = CommCostModel(params, config)
    rpn = spec.ranks_per_node
    R = spec.ranks_for(n_nodes)
    cpus = params.node.os_cores
    noisy = config.noisy_app_cores
    multik = config.is_multikernel
    rng = RngFactory(params.seed).stream(
        "macro", spec.name, config.value, n_nodes)

    result = MacroResult(app=spec.name, config=config, n_nodes=n_nodes,
                         n_ranks=R, runtime=0.0)
    acc = _Accumulator(result)
    lag = np.zeros(R)  # absolute per-rank clock

    # ---------------- MPI_Init ------------------------------------------------
    # PMI startup staggers rank initialization; the storm is milder
    # than a bulk-synchronous phase
    init_depth = (rpn / (2.0 * cpus)) if multik else 0.0
    device_calls = model.init_times(depth_per_cpu=max(1.0, init_depth))
    own = 0.0
    demand = 0.0
    for name, (visible, dem) in device_calls.items():
        n_calls = 3 if name == "mmap" else 1   # PIO bufs, rcvhdrq, events
        own += n_calls * visible
        demand += n_calls * dem
        acc.sys(name, R * n_calls * visible, R * n_calls)
    pair = model.mmap_times(24 * 1024 * 1024)   # scratch arena
    own += pair["mmap"][0]
    acc.sys("mmap", R * pair["mmap"][0], R)
    init_wall = max(own, rpn * demand / cpus)
    if config.has_picodriver:
        init_wall += params.syscall.pico_init_cost
    lag += init_wall
    acc.mpi("Init", R * init_wall, R)
    result.init_seconds = init_wall

    # ---------------- MPI_Cart_create (HACC) -----------------------------------
    if spec.uses_cart:
        reorder = (spec.cart_coeff * R * max(1.0, math.log2(R))
                   * model.tlb_factor())
        if noisy:
            reorder += float(_noise_extra(rng, params, reorder, 1)[0])
        ag_rounds = collective_rounds("allgather", R)
        small = model.message(64, depth_per_cpu=1.0)
        cart = reorder + ag_rounds * (small.latency
                                      + params.psm.mq_overhead)
        lag += cart
        acc.mpi("Cart_create", R * cart, R)
        result.init_seconds += cart

    f_halo = off_node_fraction(n_nodes)
    f_sweep = off_node_fraction(n_nodes, base=0.55, growth=0.05)

    # ---------------- iterations -----------------------------------------------
    for _it in range(iters):
        compute = spec.compute_seconds * (spec.lwk_compute_factor
                                          if multik else 1.0)
        t = np.full(R, compute)
        if spec.imbalance_cv > 0:
            sigma = math.sqrt(math.log(1 + spec.imbalance_cv ** 2))
            t *= rng.lognormal(-sigma ** 2 / 2, sigma, size=R)
        if noisy:
            t += _noise_extra(rng, params, compute, R)
        lag += t

        for phase in spec.phases:
            if isinstance(phase, HaloExchange):
                _do_halo(acc, model, phase, f_halo, rpn, R, cpus, lag,
                         multik)
            elif isinstance(phase, SweepPhase):
                _do_sweep(acc, model, phase, f_sweep, rpn, R, cpus, lag,
                          multik, noisy, params)
            elif isinstance(phase, CollectivePhase):
                _do_collective(acc, model, phase, rpn, R, cpus, lag,
                               noisy, rng, params)
            elif isinstance(phase, MemChurn):
                _do_memchurn(acc, model, phase, rpn, R, cpus, lag, multik)
            elif isinstance(phase, FileIO):
                _do_fileio(acc, model, phase, rpn, R, cpus, lag, multik)
            else:  # pragma: no cover
                raise ValueError(f"unknown phase {phase!r}")

    # trailing sync: apps end with a reduction/output step
    final = float(lag.max())
    acc.mpi("Barrier", float((final - lag).sum()), R)
    result.runtime = final

    # nanosleep back-offs while waiting (visible in Figures 8-9)
    wait_total = (result.mpi_time.get("Wait", 0.0)
                  + result.mpi_time.get("Barrier", 0.0))
    sleeps = int(wait_total / _NANOSLEEP_PERIOD)
    if sleeps:
        sc = params.syscall
        per = (sc.lwk_entry + sc.nanosleep_cost / 2 if multik
               else sc.linux_entry + sc.nanosleep_cost)
        acc.sys("nanosleep", sleeps * per, sleeps)
    return result


# ----------------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------------

def _do_halo(acc, model: CommCostModel, phase: HaloExchange, f: float,
             rpn: int, R: int, cpus: int, lag: np.ndarray,
             multik: bool) -> None:
    """Bulk nonblocking neighbor exchange, completed by Waitall."""
    off = phase.neighbors * f
    intra = phase.neighbors - off
    # bulk phase queue depth: one outstanding offload per rank for eager
    # sends, two (tx + rx worker) when expected receive adds TID calls
    expected = phase.msg_bytes > model.params.psm.expected_threshold
    outstanding = 2.0 if expected else 1.0
    depth = max(1.0, outstanding * rpn / cpus) if multik else 0.0
    msg = model.message(phase.msg_bytes, depth_per_cpu=depth)
    # issue time as MPI_Isend reports it (uncontended syscall entry);
    # contention-inflated completion shows up in MPI_Wait, as in Table 1
    base = model.message(phase.msg_bytes, depth_per_cpu=1.0)
    for _round in range(phase.rounds):
        own_issue = (off * base.sender_time
                     + intra * model.shm_msg_time(phase.msg_bytes))
        own_recv = off * msg.receiver_time
        # completion tail: the last message's flight time
        tail = (min(1.0, off) * msg.latency
                + (1.0 if intra > 0 else 0.0)
                * model.shm_msg_time(phase.msg_bytes))
        node_wire = rpn * off * msg.wire
        node_demand = rpn * off * msg.node_cpu_demand
        issue_contended = (off * msg.sender_time
                           + intra * model.shm_msg_time(phase.msg_bytes))
        wall = max(issue_contended + own_recv + tail, node_wire,
                   node_demand / cpus, own_issue)
        # waitall on neighbors partially synchronizes: most of the lag
        # spread is absorbed here as Wait time (HACC's Linux profile)
        spread = (lag.max() - lag) * 0.7
        acc.mpi("Isend", R * own_issue, R * phase.neighbors)
        acc.mpi("Wait",
                R * max(0.0, wall - own_issue) + float(spread.sum()),
                R * phase.neighbors)
        for name, count, visible in msg.syscalls:
            # sender-side writev for sends, receiver-side ioctls for recvs
            acc.sys(name, R * off * count * visible,
                    int(R * off) * count)
        lag += wall + spread


def _do_sweep(acc, model: CommCostModel, phase: SweepPhase, f: float,
              rpn: int, R: int, cpus: int, lag: np.ndarray,
              multik: bool, noisy: bool, params: Params) -> None:
    """Latency-chained pipeline: stage s+1 waits on stage s delivery."""
    active = phase.active_fraction
    jobs_per_stage = rpn * active * phase.msgs_per_stage * f
    # steady state: every active rank keeps ~one offload outstanding
    depth = max(1.0, jobs_per_stage / cpus) if multik else 0.0
    msg = model.message(phase.msg_bytes, depth_per_cpu=depth)
    stage_lat = (f * msg.latency
                 + (1 - f) * model.shm_msg_time(phase.msg_bytes))
    stage_wire = jobs_per_stage * msg.wire
    stage = max(stage_lat, stage_wire)
    # node throughput bound: the OS CPUs must also drain the total demand
    demand_wall = (phase.stages * jobs_per_stage * msg.node_cpu_demand
                   / cpus)
    wall = max(phase.stages * stage, demand_wall) + phase.stages * 2e-6
    if noisy:
        # every stage is a loose synchronization across the wavefront: a
        # noise burst on any active rank stalls the next stage
        active_ranks = R * active
        p_any = min(1.0, active_ranks * params.noise.burst_rate_hz * stage)
        wall += phase.stages * p_any * _burst_tail_mean(params)
    base = model.message(phase.msg_bytes, depth_per_cpu=1.0)
    own_issue = (phase.stages * active
                 * (f * (base.sender_time + base.receiver_time)
                    + (1 - f) * model.shm_msg_time(phase.msg_bytes)))
    # sweeps use persistent channels (MPI_Start + MPI_Wait, the pattern
    # visible in the paper's UMT2013 Table 1 rows)
    acc.mpi("Start", R * own_issue, R * int(phase.stages * active))
    acc.mpi("Wait", R * max(0.0, wall - own_issue))
    acc.mpi("Request_free", R * phase.stages * active * 2e-7,
            R * int(phase.stages * active))
    per_rank_msgs = phase.stages * active * phase.msgs_per_stage * f
    for name, count, visible in msg.syscalls:
        acc.sys(name, R * per_rank_msgs * count * visible,
                int(R * per_rank_msgs * count))
    lag += wall


def _do_collective(acc, model: CommCostModel, phase: CollectivePhase,
                   rpn: int, R: int, cpus: int, lag: np.ndarray,
                   noisy: bool, rng, params: Params) -> None:
    """Synchronize (straggler absorption) then run the collective."""
    scope = phase.scope if phase.scope else R
    name = {"barrier": "Barrier", "allreduce": "Allreduce",
            "bcast": "Bcast", "alltoallv": "Alltoallv",
            "allgather": "Allgather", "scan": "Scan"}[phase.kind]
    multik = model.config.is_multikernel
    sdma = phase.nbytes > params.nic.pio_threshold
    if phase.kind in ("alltoallv", "allgather"):
        # bulk: every rank exchanges concurrently
        depth = max(1.0, 2.0 * rpn / cpus) if multik else 0.0
    else:
        # tree/doubling: few ranks per node send at any instant
        depth = 1.5 if multik else 0.0
    msg = model.message(max(phase.nbytes, 8),
                        depth_per_cpu=depth if sdma else 0.0)
    rounds = collective_rounds(phase.kind, scope)
    f_off = (scope - rpn) / scope if scope > rpn else 0.0
    for _c in range(phase.count):
        entered = lag.copy()
        sync_at = float(lag.max())
        hop = f_off * msg.latency + (1 - f_off) * model.shm_msg_time(
            max(phase.nbytes, 8))
        msgs_per_rank: float
        if phase.kind in ("alltoallv", "allgather"):
            # pairwise/ring: bandwidth- and issue-bound, rounds overlap
            node_bytes = rpn * (scope - 1) * phase.nbytes * f_off
            eff_rate = phase.nbytes / msg.wire if msg.wire else 1.0
            t_bw = node_bytes / eff_rate if eff_rate else 0.0
            t_issue = (scope - 1) * (f_off * msg.sender_time + (1 - f_off)
                                     * model.shm_msg_time(phase.nbytes))
            t_lat = rounds * (params.nic.wire_latency
                              + 2 * params.psm.mq_overhead)
            t_queue = (rpn * (scope - 1) * f_off * msg.node_cpu_demand
                       / cpus)
            cost = max(t_bw, t_issue, t_lat, t_queue)
            msgs_per_rank = (scope - 1) * f_off
        else:
            # tree/recursive doubling: latency chain of ``rounds`` hops
            cost = rounds * (hop + params.psm.mq_overhead)
            t_queue = rpn * rounds * f_off * msg.node_cpu_demand / cpus
            cost = max(cost, t_queue)
            msgs_per_rank = rounds * f_off
        if noisy and rounds:
            # straggler per round: any of R ranks bursting stalls the tree
            p_any = min(1.0, R * params.noise.burst_rate_hz * hop)
            cost += rounds * p_any * _burst_tail_mean(params)
        if sdma:
            for sname, count, visible in msg.syscalls:
                acc.sys(sname, R * msgs_per_rank * count * visible,
                        int(R * msgs_per_rank * count))
        per_rank = (sync_at - entered) + cost
        acc.mpi(name, float(per_rank.sum()), R)
        lag[:] = sync_at + cost


def _do_memchurn(acc, model: CommCostModel, phase: MemChurn, rpn: int,
                 R: int, cpus: int, lag: np.ndarray, multik: bool) -> None:
    # churn is spread through the iteration, not bulk-synchronous
    depth = 2.0 if multik else 0.0
    pair = model.mmap_times(phase.nbytes, depth_per_cpu=depth)
    own = phase.mmaps * (pair["mmap"][0] + pair["munmap"][0])
    demand = phase.mmaps * (pair["mmap"][1] + pair["munmap"][1])
    wall = max(own, rpn * demand / cpus)
    acc.sys("mmap", R * phase.mmaps * pair["mmap"][0], R * phase.mmaps)
    acc.sys("munmap", R * phase.mmaps * pair["munmap"][0], R * phase.mmaps)
    lag += wall


def _do_fileio(acc, model: CommCostModel, phase: FileIO, rpn: int, R: int,
               cpus: int, lag: np.ndarray, multik: bool) -> None:
    sc = model.params.syscall
    # diagnostics I/O is spread through the iteration, not bulk
    depth = 2.0 if multik else 0.0
    open_vis, open_dem = model.plain_call(sc.open_cost, depth)
    read_vis, read_dem = model.plain_call(sc.read_cost, depth)
    close_vis, close_dem = model.plain_call(sc.close_cost, depth)
    own = open_vis + phase.reads * read_vis + close_vis
    demand = open_dem + phase.reads * read_dem + close_dem
    wall = max(own, rpn * demand / cpus)
    acc.sys("open", R * open_vis, R)
    acc.sys("read", R * phase.reads * read_vis, R * phase.reads)
    lag += wall
