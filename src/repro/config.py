"""The three operating-system configurations the paper evaluates."""

from __future__ import annotations

from enum import Enum


class OSConfig(Enum):
    """Which OS stack runs the application ranks."""

    #: Fujitsu's HPC-optimized production Linux (nohz_full app cores).
    LINUX = "linux"
    #: Original IHK/McKernel: all device-driver syscalls offloaded.
    MCKERNEL = "mckernel"
    #: McKernel with the HFI PicoDriver fast path.
    MCKERNEL_HFI = "mckernel_hfi"

    @property
    def is_multikernel(self) -> bool:
        return self is not OSConfig.LINUX

    @property
    def has_picodriver(self) -> bool:
        return self is OSConfig.MCKERNEL_HFI

    @property
    def noisy_app_cores(self) -> bool:
        """Only Linux app cores see residual OS noise; LWK cores are
        tickless and isolated."""
        return self is OSConfig.LINUX

    @property
    def label(self) -> str:
        return {OSConfig.LINUX: "Linux",
                OSConfig.MCKERNEL: "McKernel",
                OSConfig.MCKERNEL_HFI: "McKernel+HFI1"}[self]


ALL_CONFIGS = (OSConfig.LINUX, OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI)
