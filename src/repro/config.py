"""The three operating-system configurations the paper evaluates, plus
process-wide toggles for the opt-in analysis layer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass
class AnalysisConfig:
    """Opt-in dynamic-analysis toggles (see :mod:`repro.analysis`).

    ``race_detection`` makes every machine built by
    :class:`repro.experiments.common.Machine` install a KSan
    :class:`~repro.analysis.ksan.RaceDetector` on each node's shared
    kernel heap.  Off by default: the hooks cost a branch per heap
    access and the experiments' numbers must not depend on them.

    ``lockdep`` likewise installs a
    :class:`~repro.analysis.lockdep.LockdepValidator` per machine
    (as a heap monitor on every node plus the simulator's wait
    observer), checking lock-class acquisition order, IRQ context and
    held-across-wait hazards.  Off by default for the same reason.

    ``check`` marks a PicoCheck exploration run (see
    :mod:`repro.analysis.check`): the bounded model checker installs a
    controlled scheduler on each simulator it drives and turns KSan,
    lockdep and the delivery contract into in-harness oracles.  Off by
    default; with it off no simulator ever carries a scheduler, so
    ``Simulator.step()`` stays on the single cheap pop path and every
    experiment is bit-identical to a build without the hooks (lint
    rule PD012 enforces the gating).
    """

    race_detection: bool = False
    lockdep: bool = False
    check: bool = False


#: the process-wide analysis configuration (mutated by
#: ``python -m repro sanitize`` and tests)
ANALYSIS = AnalysisConfig()


def enable_race_detection(enabled: bool = True) -> None:
    """Toggle KSan installation for machines built after this call."""
    ANALYSIS.race_detection = enabled


def enable_lockdep(enabled: bool = True) -> None:
    """Toggle lockdep installation for machines built after this call."""
    ANALYSIS.lockdep = enabled


def enable_check(enabled: bool = True) -> None:
    """Toggle PicoCheck exploration mode (controlled scheduling)."""
    ANALYSIS.check = enabled


@dataclass
class FaultConfig:
    """Opt-in fault-injection toggles (see :mod:`repro.faults`).

    ``enabled`` gates every injection hook in the hardware and driver
    models behind a single branch, so the zero-fault paths stay
    branch-cheap and bit-identical to a build without the hooks (lint
    rule PD007 enforces the gating).  ``plan`` holds the active
    :class:`~repro.faults.FaultPlan` while a chaos run is in progress.
    """

    enabled: bool = False
    plan: object = None


#: the process-wide fault-injection configuration (mutated by
#: ``python -m repro chaos`` and tests)
FAULTS = FaultConfig()


def enable_fault_injection(plan: object = None) -> None:
    """Install a fault plan for machines built after this call.

    Passing ``None`` disables injection entirely (the default state).
    """
    FAULTS.enabled = plan is not None
    FAULTS.plan = plan


@dataclass
class TraceConfig:
    """Opt-in causal-tracing toggles (see :mod:`repro.obs`).

    ``enabled`` gates every span-emission hook on the data path behind
    a single branch, so traced-off runs stay branch-cheap and
    bit-identical to a build without the hooks (lint rule PD011
    enforces the gating, mirroring PD007 for faults).  ``collector``
    holds the active :class:`~repro.obs.spans.SpanCollector` while a
    traced run is in progress.
    """

    enabled: bool = False
    collector: object = None


#: the process-wide tracing configuration (mutated by
#: ``python -m repro trace`` and tests)
TRACE = TraceConfig()


def enable_tracing(collector: object = None) -> None:
    """Install a span collector for machines built after this call.

    Passing ``None`` disables tracing entirely (the default state).
    """
    TRACE.enabled = collector is not None
    TRACE.collector = collector


@dataclass
class GuardConfig:
    """Opt-in fast-path health management (see :mod:`repro.guard`).

    ``enabled`` gates every guard hook on the data path — breaker
    success/failure recording, dispatch-time path admission, congestion
    watermark accounting and suspend parking — behind a single branch,
    so guarded-off runs stay branch-cheap and bit-identical to a build
    without the hooks (lint rule PD013 enforces the gating, mirroring
    PD007 for faults and PD011 for tracing).  ``policy`` holds the
    active :class:`~repro.guard.GuardPolicy` (thresholds, probe
    hysteresis, watermarks) while a guarded run is in progress.
    """

    enabled: bool = False
    policy: object = None


#: the process-wide guard configuration (mutated by
#: ``python -m repro chaos --flap`` and tests)
GUARD = GuardConfig()


def enable_guard(policy: object = None) -> None:
    """Install a guard policy for machines built after this call.

    Passing ``None`` disables the guard plane entirely (the default
    state); any policy object (normally a
    :class:`repro.guard.GuardPolicy`) enables it.
    """
    GUARD.enabled = policy is not None
    GUARD.policy = policy


@dataclass
class TuneConfig:
    """Opt-in PicoTune observation hooks (see :mod:`repro.tune`).

    ``enabled`` gates the single simulator-side hook PicoTune owns —
    :class:`repro.experiments.common.Machine` calling the probe's
    ``on_machine_built`` at the end of construction — behind one
    branch, so untuned runs stay branch-cheap and bit-identical to a
    build without the hook (lint rule PD016 enforces the gating,
    mirroring PD007/PD011/PD013).  ``probe`` holds the active
    :class:`~repro.tune.env.EvalProbe` while an evaluation is in
    progress.
    """

    enabled: bool = False
    probe: object = None


#: the process-wide PicoTune configuration (mutated by
#: ``python -m repro tune`` and tests)
TUNE = TuneConfig()


def enable_tune_probe(probe: object = None) -> None:
    """Install a PicoTune probe for machines built after this call.

    Passing ``None`` disables the tune hook entirely (the default
    state).
    """
    TUNE.enabled = probe is not None
    TUNE.probe = probe


class OSConfig(Enum):
    """Which OS stack runs the application ranks."""

    #: Fujitsu's HPC-optimized production Linux (nohz_full app cores).
    LINUX = "linux"
    #: Original IHK/McKernel: all device-driver syscalls offloaded.
    MCKERNEL = "mckernel"
    #: McKernel with the HFI PicoDriver fast path.
    MCKERNEL_HFI = "mckernel_hfi"

    @property
    def is_multikernel(self) -> bool:
        return self is not OSConfig.LINUX

    @property
    def has_picodriver(self) -> bool:
        return self is OSConfig.MCKERNEL_HFI

    @property
    def noisy_app_cores(self) -> bool:
        """Only Linux app cores see residual OS noise; LWK cores are
        tickless and isolated."""
        return self is OSConfig.LINUX

    @property
    def label(self) -> str:
        return {OSConfig.LINUX: "Linux",
                OSConfig.MCKERNEL: "McKernel",
                OSConfig.MCKERNEL_HFI: "McKernel+HFI1"}[self]


ALL_CONFIGS = (OSConfig.LINUX, OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI)
