"""The paper's contribution: the PicoDriver framework.

Subpackages/modules:

* :mod:`repro.core.structs` — C structure layout modeling (sizes, alignment,
  offsets) backing the driver's in-memory state.
* :mod:`repro.core.dwarf` — a miniature DWARF: debug-information entries
  (DIEs) emitted into simulated module binaries.
* :mod:`repro.core.extract` — the ``dwarf-extract-struct`` tool: walks DWARF
  and generates padded-layout headers for the fields the LWK needs
  (paper section 3.2, Listing 1).
* :mod:`repro.core.address_space` — kernel virtual address space layouts and
  the unification that lets the kernels dereference each other's pointers
  (section 3.1, Figure 3).
* :mod:`repro.core.sync` — cross-kernel spinlocks over shared memory
  (section 3.3).
* :mod:`repro.core.callbacks` — Linux-invokable callbacks living in
  McKernel's TEXT (section 3.3).
* :mod:`repro.core.picodriver` — the driver-split framework itself.
* :mod:`repro.core.hfi_pico` — the Intel OmniPath HFI PicoDriver.
"""

from .structs import (ARRAY, ENUM, PTR, U8, U16, U32, U64, CStructDef,
                      Field, StructInstance)
from .dwarf import DwarfDie, DwarfInfo, ModuleBinary, emit_dwarf
from .extract import ExtractedLayout, StructView, dwarf_extract_struct, generate_header
from .address_space import (KernelAddressSpace, Region,
                            linux_layout, mckernel_original_layout,
                            mckernel_unified_layout, unify_address_spaces)
from .sync import CrossKernelSpinLock
from .callbacks import CallbackRegistry
from .picodriver import FastPathDecision, PicoDriver, PicoDriverRegistry
# must come last: pulls in repro.linux, which imports the modules above
from .hfi_pico import EXTRACTION_MANIFEST, HFIPicoDriver
from .mlx_pico import MlxMemRegPicoDriver

__all__ = [
    "ARRAY", "ENUM", "EXTRACTION_MANIFEST", "HFIPicoDriver",
    "PTR", "U8", "U16", "U32", "U64",
    "CStructDef", "CallbackRegistry", "CrossKernelSpinLock", "DwarfDie",
    "DwarfInfo", "ExtractedLayout", "FastPathDecision", "Field",
    "KernelAddressSpace", "MlxMemRegPicoDriver", "ModuleBinary",
    "PicoDriver", "PicoDriverRegistry",
    "Region", "StructInstance", "StructView", "dwarf_extract_struct",
    "emit_dwarf", "generate_header", "linux_layout",
    "mckernel_original_layout", "mckernel_unified_layout",
    "unify_address_spaces",
]
