"""Kernel virtual address space layouts and their unification (Figure 3).

McKernel runs its own ELF image with its own virtual-to-physical mappings.
Before PicoDriver, its layout collided with Linux (kernel images at the same
address) and disagreed with it (direct map of physical memory at a different
base) — so a pointer to a Linux ``kmalloc`` object was *not dereferenceable*
from McKernel, and Linux could not call McKernel functions.

The unification applies the paper's three modifications (section 3.1):

1. move the McKernel image to the top of the Linux module space, so the
   TEXT/DATA/BSS segments of the two kernels never overlap;
2. shift McKernel's direct mapping of physical memory to the Linux base
   (``0xFFFF880000000000``), so any ``kmalloc`` pointer is valid in both
   kernels;
3. map McKernel's ELF image into Linux (at LWK boot), so Linux can invoke
   callback functions living in McKernel TEXT.

Every cross-kernel dereference in the simulator is checked against these
layouts — accessing a Linux driver structure from McKernel without the
unified layout raises :class:`~repro.errors.PageFault`, exactly the failure
the paper's design removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import LayoutError, PageFault

# --- Figure 3 constants (x86_64, 48-bit addressing) -------------------------

USER_START = 0x0000_0000_0000_0000
USER_END = 0x0000_7FFF_FFFF_FFFF

LINUX_DIRECT_MAP_BASE = 0xFFFF_8800_0000_0000
LINUX_DIRECT_MAP_SIZE = 64 << 40                      # 64TB

MCK_ORIG_DIRECT_MAP_BASE = 0xFFFF_8000_0000_0000
MCK_ORIG_DIRECT_MAP_SIZE = 256 << 30                  # 256GB

LINUX_VMALLOC_BASE = 0xFFFF_C900_0000_0000
LINUX_VMALLOC_SIZE = 32 << 40

MCK_UNIFIED_VALLOC_BASE = 0xFFFF_C800_0000_0000       # below Linux vmalloc
MCK_UNIFIED_VALLOC_SIZE = 1 << 40

LINUX_TEXT_BASE = 0xFFFF_FFFF_8000_0000
LINUX_TEXT_SIZE = 0x2000_0000                          # 512MB

MODULE_SPACE_BASE = 0xFFFF_FFFF_A000_0000
MODULE_SPACE_END = 0xFFFF_FFFF_FF5F_FFFF

MCK_IMAGE_SIZE = 0x60_0000                             # 6MB LWK image
#: unified location: the *top* of the Linux module space
MCK_UNIFIED_TEXT_BASE = MODULE_SPACE_END + 1 - MCK_IMAGE_SIZE


@dataclass(frozen=True)
class Region:
    """A named virtual address range ``[start, start+size)``."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this region."""
        return self.start <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        """True if the two regions share any address."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:
        return f"<Region {self.name} [{self.start:#018x}, {self.end:#018x})>"


class KernelAddressSpace:
    """The set of regions a kernel maps, plus foreign mappings added by
    the unification (e.g. McKernel's image mapped into Linux)."""

    def __init__(self, kernel: str, regions: List[Region]):
        self.kernel = kernel
        self.regions: Dict[str, Region] = {}
        for region in regions:
            self.add_region(region)

    def add_region(self, region: Region) -> None:
        """Install a region, rejecting overlaps and duplicates."""
        if region.name in self.regions:
            raise LayoutError(f"{self.kernel}: duplicate region {region.name}")
        for existing in self.regions.values():
            if region.overlaps(existing):
                raise LayoutError(
                    f"{self.kernel}: region {region.name} overlaps "
                    f"{existing.name}")
        self.regions[region.name] = region

    def replace_region(self, name: str, new: Region) -> None:
        """Swap a named region for a new range (layout modification)."""
        if name not in self.regions:
            raise LayoutError(f"{self.kernel}: no region {name} to replace")
        del self.regions[name]
        self.add_region(new)

    def region_of(self, addr: int) -> Optional[Region]:
        """The region mapping ``addr``, or None."""
        for region in self.regions.values():
            if region.contains(addr):
                return region
        return None

    def check_access(self, addr: int, why: str = "") -> Region:
        """Raise :class:`PageFault` unless ``addr`` is mapped here."""
        region = self.region_of(addr)
        if region is None:
            raise PageFault(self.kernel, addr, why or "address not mapped")
        return region

    def can_access(self, addr: int) -> bool:
        """True if ``addr`` is mapped in this kernel."""
        return self.region_of(addr) is not None

    def shared_regions(self, other: "KernelAddressSpace") -> List[Tuple[Region, Region]]:
        """Pairs of same-range regions mapped identically in both spaces."""
        out = []
        for mine in self.regions.values():
            for theirs in other.regions.values():
                if mine.start == theirs.start and mine.size == theirs.size:
                    out.append((mine, theirs))
        return out


def linux_layout() -> KernelAddressSpace:
    """Linux x86_64 layout (Figure 3, left)."""
    return KernelAddressSpace("linux", [
        Region("user", USER_START, USER_END + 1),
        Region("direct_map", LINUX_DIRECT_MAP_BASE, LINUX_DIRECT_MAP_SIZE),
        Region("vmalloc", LINUX_VMALLOC_BASE, LINUX_VMALLOC_SIZE),
        Region("kernel_image", LINUX_TEXT_BASE, LINUX_TEXT_SIZE),
        Region("module_space", MODULE_SPACE_BASE,
               MODULE_SPACE_END + 1 - MODULE_SPACE_BASE),
    ])


def mckernel_original_layout() -> KernelAddressSpace:
    """The pre-PicoDriver McKernel layout (Figure 3, middle): image at the
    same address as Linux's, direct map at its own base."""
    return KernelAddressSpace("mckernel", [
        Region("user", USER_START, USER_END + 1),
        Region("direct_map", MCK_ORIG_DIRECT_MAP_BASE,
               MCK_ORIG_DIRECT_MAP_SIZE),
        Region("kernel_image", LINUX_TEXT_BASE, MCK_IMAGE_SIZE),
        Region("virtual_alloc", LINUX_VMALLOC_BASE, LINUX_VMALLOC_SIZE),
    ])


def mckernel_unified_layout() -> KernelAddressSpace:
    """The PicoDriver-ready McKernel layout (Figure 3, right)."""
    return KernelAddressSpace("mckernel", [
        Region("user", USER_START, USER_END + 1),
        Region("direct_map", LINUX_DIRECT_MAP_BASE, LINUX_DIRECT_MAP_SIZE),
        Region("kernel_image", MCK_UNIFIED_TEXT_BASE, MCK_IMAGE_SIZE),
        Region("virtual_alloc", MCK_UNIFIED_VALLOC_BASE,
               MCK_UNIFIED_VALLOC_SIZE),
        #: Linux's module space mapped so driver code/data is reachable
        Region("linux_module_space", MODULE_SPACE_BASE,
               MCK_UNIFIED_TEXT_BASE - MODULE_SPACE_BASE),
    ])


def unify_address_spaces(linux: KernelAddressSpace,
                         mckernel: KernelAddressSpace) -> None:
    """Apply the three section-3.1 modifications in place.

    ``mckernel`` must be an original-style layout; after the call it has the
    unified layout and ``linux`` additionally maps the McKernel image
    (established at LWK boot via Linux's ``vmap_area`` reservation).
    """
    # 1. move the LWK image to the top of the Linux module space
    mckernel.replace_region(
        "kernel_image",
        Region("kernel_image", MCK_UNIFIED_TEXT_BASE, MCK_IMAGE_SIZE))
    # 2. shift the direct mapping to the Linux base
    mckernel.replace_region(
        "direct_map",
        Region("direct_map", LINUX_DIRECT_MAP_BASE, LINUX_DIRECT_MAP_SIZE))
    # keep the dynamic range out of Linux's way too
    if "virtual_alloc" in mckernel.regions:
        mckernel.replace_region(
            "virtual_alloc",
            Region("virtual_alloc", MCK_UNIFIED_VALLOC_BASE,
                   MCK_UNIFIED_VALLOC_SIZE))
    # make the Linux module space (where the HFI1 driver lives) reachable
    if "linux_module_space" not in mckernel.regions:
        mckernel.add_region(
            Region("linux_module_space", MODULE_SPACE_BASE,
                   MCK_UNIFIED_TEXT_BASE - MODULE_SPACE_BASE))
    # 3. map the McKernel ELF image into Linux. The image sits inside the
    # module space Linux already maps, so record it as a named sub-view by
    # replacing the tail of the module space.
    if "mckernel_image" not in linux.regions:
        module_space = linux.regions["module_space"]
        linux.replace_region(
            "module_space",
            Region("module_space", module_space.start,
                   MCK_UNIFIED_TEXT_BASE - module_space.start))
        linux.add_region(
            Region("mckernel_image", MCK_UNIFIED_TEXT_BASE, MCK_IMAGE_SIZE))
    validate_unification(linux, mckernel)


def validate_unification(linux: KernelAddressSpace,
                         mckernel: KernelAddressSpace) -> None:
    """Check the three PicoDriver requirements; raise LayoutError if any
    is violated (used by the machine builder before registering drivers)."""
    l_img = linux.regions["kernel_image"]
    m_img = mckernel.regions["kernel_image"]
    if l_img.overlaps(m_img):
        raise LayoutError("kernel images overlap: "
                          f"{l_img} vs {m_img}")
    l_dm = linux.regions["direct_map"]
    m_dm = mckernel.regions["direct_map"]
    if (l_dm.start, l_dm.size) != (m_dm.start, m_dm.size):
        raise LayoutError(
            f"direct maps disagree: linux {l_dm} vs mckernel {m_dm} — "
            f"kmalloc pointers are not mutually dereferenceable")
    if not linux.can_access(m_img.start):
        raise LayoutError("Linux cannot see McKernel TEXT — completion "
                          "callbacks would fault")
