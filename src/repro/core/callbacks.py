"""Cross-kernel callback functions (paper section 3.3).

SDMA completion IRQs land on Linux CPUs, but McKernel-initiated transfers
carry completion callbacks whose *code lives in McKernel's TEXT* (the
deallocation routine must be McKernel's ``kfree``).  Linux can only invoke
such a function pointer if McKernel's ELF image is mapped in Linux — the
third unification requirement.  The registry models function pointers as
addresses inside the owning kernel's image region and enforces that check
on every invocation.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import PageFault, ReproError
from .address_space import KernelAddressSpace


class CallbackRegistry:
    """Function pointers with address-space-checked invocation."""

    def __init__(self, aspaces: Dict[str, KernelAddressSpace]):
        self.aspaces = dict(aspaces)
        self._by_addr: Dict[int, Tuple[str, Callable]] = {}
        self._next_slot: Dict[str, int] = {k: 0 for k in aspaces}

    def register(self, kernel: str, fn: Callable) -> int:
        """Place ``fn`` in ``kernel``'s TEXT; returns its address."""
        if kernel not in self.aspaces:
            raise ReproError(f"unknown kernel {kernel!r}")
        image = self.aspaces[kernel].regions.get("kernel_image")
        if image is None:
            raise ReproError(f"{kernel} has no kernel_image region")
        slot = self._next_slot[kernel]
        addr = image.start + 0x1000 + slot * 16  # past the ELF header
        if addr >= image.end:
            raise ReproError(f"{kernel} TEXT exhausted for callbacks")
        self._next_slot[kernel] = slot + 1
        self._by_addr[addr] = (kernel, fn)
        return addr

    def invoke(self, caller_kernel: str, addr: int, *args, **kwargs):
        """Call the function at ``addr`` from ``caller_kernel``'s context.

        Raises :class:`PageFault` if the caller does not map the address —
        e.g. Linux invoking a McKernel callback before the LWK image was
        mapped at boot.
        """
        if caller_kernel not in self.aspaces:
            raise ReproError(f"unknown caller kernel {caller_kernel!r}")
        entry = self._by_addr.get(addr)
        if entry is None:
            raise ReproError(f"no callback registered at {addr:#x}")
        owner = entry[0]
        region = self.aspaces[caller_kernel].check_access(
            addr, f"callback owned by {owner}")
        if caller_kernel != owner and owner not in region.name:
            # the address is mapped, but to the *caller's* image (the
            # pre-unification overlap of Figure 3): jumping there would
            # execute unrelated code
            raise PageFault(
                caller_kernel, addr,
                f"region {region.name!r} is not a mapping of {owner}'s "
                f"image — address spaces not unified")
        return entry[1](*args, **kwargs)

    def owner_of(self, addr: int) -> str:
        """Which kernel's TEXT holds the callback at ``addr``."""
        entry = self._by_addr.get(addr)
        if entry is None:
            raise ReproError(f"no callback registered at {addr:#x}")
        return entry[0]
