"""A miniature DWARF debugging-information model.

The real PicoDriver workflow inspects the DWARF headers of Intel's shipped
``hfi1.ko`` to recover structure layouts (paper section 3.2).  Here the
simulated driver build does the same thing: :func:`emit_dwarf` compiles the
driver's :class:`~repro.core.structs.CStructDef` definitions into a tree of
debugging-information entries (DIEs) with the tags and attributes the real
tool walks — ``DW_TAG_structure_type``, ``DW_TAG_member``,
``DW_AT_data_member_location``, ``DW_AT_type`` — and packages them into a
:class:`ModuleBinary`.

Crucially, the extractor (:mod:`repro.core.extract`) consumes *only* this
DWARF tree, never the Python-level struct definitions, so layout drift
between driver versions is discovered the same way the real tool discovers
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..errors import DwarfError
from .structs import CStructDef, CType

# DWARF tag and attribute names (subset used by dwarf-extract-struct).
DW_TAG_compile_unit = "DW_TAG_compile_unit"
DW_TAG_structure_type = "DW_TAG_structure_type"
DW_TAG_member = "DW_TAG_member"
DW_TAG_base_type = "DW_TAG_base_type"
DW_TAG_pointer_type = "DW_TAG_pointer_type"
DW_TAG_enumeration_type = "DW_TAG_enumeration_type"
DW_TAG_array_type = "DW_TAG_array_type"
DW_TAG_subrange_type = "DW_TAG_subrange_type"

DW_AT_name = "DW_AT_name"
DW_AT_byte_size = "DW_AT_byte_size"
DW_AT_data_member_location = "DW_AT_data_member_location"
DW_AT_type = "DW_AT_type"
DW_AT_upper_bound = "DW_AT_upper_bound"
DW_AT_producer = "DW_AT_producer"


@dataclass
class DwarfDie:
    """One debugging-information entry: a tag, attributes and children.

    ``DW_AT_type`` attributes hold a *reference* (integer offset) to another
    DIE, as in real DWARF; :meth:`DwarfInfo.resolve` follows them.
    """

    tag: str
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["DwarfDie"] = field(default_factory=list)
    offset: int = 0  # assigned when attached to a DwarfInfo

    def at(self, name: str) -> object:
        """Read a required attribute (DwarfError if absent)."""
        try:
            return self.attrs[name]
        except KeyError:
            raise DwarfError(f"{self.tag} at {self.offset:#x} lacks {name}")


class DwarfInfo:
    """The .debug_info section of a module binary: a forest of DIEs."""

    def __init__(self) -> None:
        self.units: List[DwarfDie] = []
        self._by_offset: Dict[int, DwarfDie] = {}
        self._next_offset = 0x0B  # arbitrary non-zero start, like real DWARF

    def add_unit(self, unit: DwarfDie) -> None:
        """Attach a compile unit, assigning DIE offsets."""
        self._index(unit)
        self.units.append(unit)

    def _index(self, die: DwarfDie) -> None:
        die.offset = self._next_offset
        self._next_offset += 1 + 2 * len(die.attrs)
        self._by_offset[die.offset] = die
        for child in die.children:
            self._index(child)

    def resolve(self, ref: int) -> DwarfDie:
        """Follow a DW_AT_type reference to its DIE."""
        try:
            return self._by_offset[ref]
        except KeyError:
            raise DwarfError(f"dangling DW_AT_type reference {ref:#x}")

    def walk(self) -> Iterator[DwarfDie]:
        """Depth-first iteration over every DIE (the tool 'systematically
        walks the DWARF headers', section 3.2)."""
        stack = list(reversed(self.units))
        while stack:
            die = stack.pop()
            yield die
            stack.extend(reversed(die.children))


@dataclass
class ModuleBinary:
    """A built kernel module as shipped: name, version string and its
    embedded debug information.  The runtime struct definitions stay
    *private* to the driver; consumers get DWARF only."""

    name: str
    version: str
    dwarf: DwarfInfo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleBinary {self.name} v{self.version}>"


def emit_dwarf(structs: List[CStructDef], producer: str = "simcc 1.0",
               module: str = "hfi1", version: str = "0") -> ModuleBinary:
    """Compile struct definitions into a module binary with DWARF info."""
    info = DwarfInfo()
    unit = DwarfDie(DW_TAG_compile_unit, {DW_AT_name: f"{module}.c",
                                          DW_AT_producer: producer})
    # First pass so DW_AT_type can reference embedded struct DIEs by name.
    type_dies: Dict[str, DwarfDie] = {}

    def type_die_for(ctype: CType) -> DwarfDie:
        key = ctype.name
        if key in type_dies:
            return type_dies[key]
        if ctype.name == "void *":
            die = DwarfDie(DW_TAG_pointer_type, {DW_AT_byte_size: ctype.size})
        elif ctype.name.startswith("enum "):
            die = DwarfDie(DW_TAG_enumeration_type,
                           {DW_AT_name: ctype.name[5:],
                            DW_AT_byte_size: ctype.size})
        elif ctype.name.startswith("struct "):
            # opaque embedded structure (e.g. kobject): size only
            die = DwarfDie(DW_TAG_structure_type,
                           {DW_AT_name: ctype.name[7:],
                            DW_AT_byte_size: ctype.size})
        else:
            die = DwarfDie(DW_TAG_base_type, {DW_AT_name: ctype.name,
                                              DW_AT_byte_size: ctype.size})
        type_dies[key] = die
        unit.children.append(die)
        return die

    # Array types are interned like element types: two fields of type
    # u64[16] share one DW_TAG_array_type DIE (as real compilers emit),
    # instead of minting a fresh DIE + subrange per field.
    array_dies: Dict[Tuple[str, int], DwarfDie] = {}

    def array_die_for(elem: CType, count: int) -> DwarfDie:
        key = (elem.name, count)
        if key in array_dies:
            return array_dies[key]
        arr = DwarfDie(DW_TAG_array_type, {DW_AT_type: type_die_for(elem)},
                       children=[DwarfDie(DW_TAG_subrange_type,
                                          {DW_AT_upper_bound: count - 1})])
        array_dies[key] = arr
        unit.children.append(arr)
        return arr

    for sdef in structs:
        sdie = DwarfDie(DW_TAG_structure_type,
                        {DW_AT_name: sdef.name, DW_AT_byte_size: sdef.size})
        for f in sdef.fields:
            elem_die = type_die_for(f.elem)
            if f.count > 1:
                tdie = array_die_for(f.elem, f.count)
            else:
                tdie = elem_die
            sdie.children.append(DwarfDie(
                DW_TAG_member,
                {DW_AT_name: f.name,
                 DW_AT_data_member_location: sdef.offset_of(f.name),
                 DW_AT_type: tdie}))
        unit.children.append(sdie)

    # Convert DIE-object references to integer offsets (real DWARF form).
    info.add_unit(unit)
    for die in info.walk():
        ref = die.attrs.get(DW_AT_type)
        if isinstance(ref, DwarfDie):
            die.attrs[DW_AT_type] = ref.offset
    return ModuleBinary(name=module, version=version, dwarf=info)
