"""``dwarf-extract-struct``: generate partial structure layouts from DWARF.

Reimplements the workflow of the tool the authors published
(http://cgit.notk.org/asmadeus/dwarf-extract-struct.git): walk the DWARF
headers until the requested ``DW_TAG_structure_type`` is found, then for
each requested field locate its ``DW_TAG_member``, read the offset from
``DW_AT_data_member_location`` and the type through ``DW_AT_type``
(arrays supply element counts via ``DW_AT_upper_bound``).

Two artifacts come out:

* an :class:`ExtractedLayout` — the machine-usable offsets the LWK-side
  :class:`StructView` uses to access Linux driver memory, and
* :func:`generate_header` — the C header text with an unnamed union of
  independently padded members, exactly the shape of the paper's Listing 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import DwarfError, ReproError
from . import dwarf as D
from .dwarf import DwarfDie, DwarfInfo, ModuleBinary
# StructView historically lived here; it is a blessed heap accessor now
# hosted with its sibling StructInstance (lint rule PD005), re-exported
# for compatibility.
from .structs import StructView

__all__ = ["ExtractedField", "ExtractedLayout", "StructView",
           "dwarf_extract_struct", "generate_header"]


@dataclass(frozen=True)
class ExtractedField:
    """One extracted member: offset, element size/count, C type name."""

    name: str
    offset: int
    elem_size: int
    count: int
    type_name: str

    @property
    def size(self) -> int:
        return self.elem_size * self.count


@dataclass(frozen=True)
class ExtractedLayout:
    """A partial view of a structure: total size + requested members."""

    struct_name: str
    byte_size: int
    fields: Tuple[ExtractedField, ...]
    source_module: str = ""
    source_version: str = ""

    def field(self, name: str) -> ExtractedField:
        """Look up one extracted member by name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise ReproError(f"extracted layout of {self.struct_name} "
                         f"has no field {name!r}")


def _resolve_type(info: DwarfInfo, die: DwarfDie) -> Tuple[int, int, str]:
    """Follow DW_AT_type; return (elem_size, count, type_name)."""
    if die.tag == D.DW_TAG_array_type:
        elem = info.resolve(die.at(D.DW_AT_type))  # type: ignore[arg-type]
        if not die.children or die.children[0].tag != D.DW_TAG_subrange_type:
            raise DwarfError("array type without subrange child")
        count = int(die.children[0].at(D.DW_AT_upper_bound)) + 1  # type: ignore[arg-type]
        size, _, name = _resolve_type(info, elem)
        return size, count, name
    if die.tag == D.DW_TAG_pointer_type:
        return int(die.at(D.DW_AT_byte_size)), 1, "void *"  # type: ignore[arg-type]
    if die.tag == D.DW_TAG_enumeration_type:
        return (int(die.at(D.DW_AT_byte_size)), 1,  # type: ignore[arg-type]
                f"enum {die.at(D.DW_AT_name)}")
    if die.tag == D.DW_TAG_structure_type:
        return (int(die.at(D.DW_AT_byte_size)), 1,  # type: ignore[arg-type]
                f"struct {die.at(D.DW_AT_name)}")
    if die.tag == D.DW_TAG_base_type:
        return (int(die.at(D.DW_AT_byte_size)), 1,  # type: ignore[arg-type]
                str(die.at(D.DW_AT_name)))
    raise DwarfError(f"unsupported type DIE {die.tag}")


def dwarf_extract_struct(binary: ModuleBinary, struct_name: str,
                         field_names: List[str]) -> ExtractedLayout:
    """Extract ``field_names`` of ``struct_name`` from a module binary."""
    info = binary.dwarf
    target: Optional[DwarfDie] = None
    for die in info.walk():
        if (die.tag == D.DW_TAG_structure_type
                and die.attrs.get(D.DW_AT_name) == struct_name
                and die.children):  # skip opaque embedded declarations
            target = die
            break
    if target is None:
        raise DwarfError(
            f"struct {struct_name!r} not found in DWARF of "
            f"{binary.name} v{binary.version}")
    members: Dict[str, DwarfDie] = {
        str(child.attrs.get(D.DW_AT_name)): child
        for child in target.children if child.tag == D.DW_TAG_member}
    extracted = []
    for fname in field_names:
        if fname not in members:
            raise DwarfError(f"struct {struct_name} has no member {fname!r} "
                             f"in {binary.name} v{binary.version}")
        mdie = members[fname]
        offset = int(mdie.at(D.DW_AT_data_member_location))  # type: ignore[arg-type]
        tdie = info.resolve(mdie.at(D.DW_AT_type))  # type: ignore[arg-type]
        elem_size, count, type_name = _resolve_type(info, tdie)
        extracted.append(ExtractedField(fname, offset, elem_size, count,
                                        type_name))
    return ExtractedLayout(
        struct_name=struct_name,
        byte_size=int(target.at(D.DW_AT_byte_size)),  # type: ignore[arg-type]
        fields=tuple(extracted),
        source_module=binary.name,
        source_version=binary.version,
    )


def generate_header(layout: ExtractedLayout) -> str:
    """Render the layout as the generated C header of Listing 1: an unnamed
    union with a whole-struct character array and one padded entry per
    requested member."""
    lines = [f"struct {layout.struct_name} {{", "\tunion {",
             f"\t\tchar whole_struct[{layout.byte_size}];"]
    for i, f in enumerate(layout.fields):
        lines.append("\t\tstruct {")
        if f.offset:
            lines.append(f"\t\t\tchar padding{i}[{f.offset}];")
        decl = f"{f.type_name} {f.name}"
        if f.count > 1:
            decl += f"[{f.count}]"
        lines.append(f"\t\t\t{decl};")
        lines.append("\t\t};")
    lines += ["\t};", "};"]
    return "\n".join(lines)


