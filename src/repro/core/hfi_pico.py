"""The Intel OmniPath HFI PicoDriver (paper sections 3, 3.4).

The fast path ported to McKernel:

* ``writev`` — SDMA send.  Instead of ``get_user_pages()`` the driver walks
  the LWK's *pinned* page tables and coalesces physically contiguous spans
  into SDMA requests up to the hardware maximum of 10KB (the Linux driver
  stops at PAGE_SIZE).
* the three expected-receive ``ioctl`` commands — ``TID_UPDATE``,
  ``TID_FREE``, ``TID_INVAL_READ``.  Large pages collapse many RcvArray
  entries into few.

Everything else the HFI1 driver implements — ``open``, ``mmap``, ``poll``,
the ten administrative ioctls — remains on the offloaded slow path through
the *unmodified* Linux driver.

Cooperation with the Linux driver is done the way the paper does it:

* structure layouts come from DWARF extraction of the loaded module binary
  (never from the driver's headers);
* driver state is read/written through those offsets in shared kernel
  memory, legal only because the address spaces are unified;
* submission is serialized by the driver's own spin lock (compatible
  implementations, shared lock word);
* the completion callback registered with each transfer lives in McKernel
  TEXT, is invoked by Linux from IRQ context, and frees the LWK-allocated
  metadata via the foreign-CPU kfree extension.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import FAULTS, GUARD, TRACE
from ..errors import DriverError, FastPathUnavailable, TransientDeviceError
from ..hw.hfi import Packet, SdmaRequestGroup
from ..obs.spans import track_of
from ..linux.hfi1 import ioctls as ioc
from ..linux.hfi1.debuginfo import SDMA_STATE_S99_RUNNING
from ..linux.hfi1.driver import Hfi1Driver
from ..linux.hfi1.sdma import build_descs_from_spans, split_spans_for_tids
from .callbacks import CallbackRegistry
from .extract import ExtractedLayout, StructView, dwarf_extract_struct
from .lockclasses import declare_lock_use
from .picodriver import FastPathDecision, PicoDriver

# the fast path takes the Linux driver's submit lock (declared with its
# rank in linux/hfi1/driver.py) without owning it — exactly the
# cross-kernel sharing the lockdep hierarchy exists to police
declare_lock_use("hfi1.sdma_submit", "core/hfi_pico")

#: (struct, fields) the fast path needs — note how small a slice of the
#: driver's state this is (section 3.2: "in most cases we only need a
#: small subset of the fields")
EXTRACTION_MANIFEST = {
    "sdma_state": ["current_state", "go_s99_running", "previous_state"],
    "hfi1_filedata": ["ctxt", "pq", "tid_used", "tid_limit"],
    "user_sdma_pkt_q": ["n_reqs", "state"],
    "hfi1_devdata": ["num_sdma"],
}


class HFIPicoDriver(PicoDriver):
    """Fast-path HFI driver resident in McKernel."""

    def __init__(self, linux_driver: Hfi1Driver):
        self.linux_driver = linux_driver
        self.device_path = linux_driver.device_path
        #: the shipped binary is all we consume for layouts
        self.module = linux_driver.binary
        self.layouts: Dict[str, ExtractedLayout] = {}
        self.lwk = None
        self.hfi = None
        self.heap = None
        self.callbacks: Optional[CallbackRegistry] = None
        self.completion_addr: Optional[int] = None

    # -- attach (the porting checklist of section 3) ------------------------

    def attach(self, lwk) -> None:
        """Run the section-3 porting checklist against the LWK."""
        linux = lwk.linux
        # 3.1: address space unification is a hard prerequisite
        self.require_unified(linux.aspace, lwk.aspace)
        self.lwk = lwk
        self.hfi = lwk.node.hfi
        self.heap = lwk.node.kheap
        # 3.2: extract structure layouts from the module's DWARF
        for struct, fields in EXTRACTION_MANIFEST.items():
            layout = dwarf_extract_struct(self.module, struct, fields)
            self.require_layout_version(layout, self.linux_driver.version)
            self.layouts[struct] = layout
        # 3.3: register the completion callback in McKernel TEXT and make
        # it invokable from Linux
        if self.linux_driver.callbacks is None:
            self.linux_driver.callbacks = CallbackRegistry(
                {"linux": linux.aspace, "mckernel": lwk.aspace})
        self.callbacks = self.linux_driver.callbacks
        self.completion_addr = self.callbacks.register(
            "mckernel", self._completion)
        # 3.3: SDMA completions free LWK memory from Linux CPUs
        lwk.alloc.foreign_free_enabled = True

    # -- claim policy ----------------------------------------------------------

    def claims(self, syscall: str, args: tuple) -> FastPathDecision:
        """Claim writev and the three TID ioctls; offload the rest."""
        if syscall == "writev":
            return FastPathDecision.claim("SDMA send fast path")
        if syscall == "ioctl":
            cmd = args[1]
            if cmd in ioc.TID_IOCTLS:
                return FastPathDecision.claim(
                    "expected-receive registration fast path")
            return FastPathDecision.offload(
                f"administrative ioctl {cmd:#x} stays in Linux")
        return FastPathDecision.offload(f"{syscall} is slow path")

    # -- views over Linux driver state -------------------------------------------

    def _view(self, struct: str, addr: int,
              kernel: str = "mckernel") -> StructView:
        """A DWARF-layout view of Linux driver state; ``kernel`` is the
        context *performing* the accesses (the completion callback runs
        on a Linux CPU)."""
        self.lwk.aspace.check_access(addr, f"Linux {struct}")
        return StructView(self.layouts[struct], self.heap, addr,
                          kernel=kernel)

    def _file_views(self, task, fd: int):
        path, file = self.lwk.device_file(task, fd)
        fdata = self._view("hfi1_filedata", file.private_data)
        pq = self._view("user_sdma_pkt_q", fdata.get("pq"))
        return file, fdata, pq

    # -- fast-path writev: SDMA send ------------------------------------------------

    def fast_writev(self, task, fd: int, iovecs):
        """Generator: the LWK-local SDMA send fast path (section 3.4)."""
        if len(iovecs) < 2:
            raise DriverError("hfi1 writev needs a header iovec and at "
                              "least one data iovec")
        lwk = self.lwk
        sim = lwk.sim
        sc = lwk.params.syscall
        nic = lwk.params.nic
        meta = iovecs[0]
        file, fdata, pq = self._file_views(task, fd)

        spans = []
        total = 0
        for vaddr, length in iovecs[1:]:
            # McKernel ANONYMOUS memory is pinned by construction; no page
            # references are taken (section 3.4)
            if not task.pagetable.is_pinned(vaddr, length):
                raise DriverError(
                    f"pico writev over unpinned range {vaddr:#x}+{length:#x}")
            spans.extend(task.pagetable.phys_spans(vaddr, length))
            total += length
        # coalesce up to the hardware max (10KB), crossing page boundaries
        descs = build_descs_from_spans(spans, nic.sdma_max_request)

        span = TRACE.collector.begin_span(
            "pico.writev", track_of(self), cat="fastpath",
            args={"nbytes": total, "descs": len(descs)}) \
            if TRACE.enabled else None
        guard = self.linux_driver.guard if GUARD.enabled else None
        try:
            if guard is not None:
                # suspended device: park on the queued-IO list; resume()
                # replays us in arrival order
                yield from guard.park_if_suspended()
            # with the guard installed, pick over healthy engines only
            # (a DOWN engine is routed around at dispatch time; PROBING
            # admits one probe)
            engine = (guard.pick_healthy_engine(self.hfi)
                      if guard is not None else self.hfi.pick_engine())
            sstate = self._view(
                "sdma_state",
                self.linux_driver.engine_states[engine.index].addr)
            if (sstate.get("go_s99_running") != 1
                    or sstate.get("current_state") != SDMA_STATE_S99_RUNNING):
                # The fast path cannot afford the drain/restart wait and
                # has no business driving recovery; defer to the Linux
                # slow path, which blocks until the engine is healthy
                # (section 3: the slow path handles everything the fast
                # path does not).
                lwk.tracer.count("pico.engine_not_running")
                if guard is not None:
                    guard.record_failure(guard.engine_path(engine.index),
                                         "engine not running at fast path")
                raise FastPathUnavailable(
                    f"SDMA engine {engine.index} not running",
                    engine=engine.index)

            meta_addr, alloc_cost = lwk.alloc.kmalloc(192, task.core_id)
            yield sim.timeout(sc.writev_base_pico
                              + len(spans) * sc.ptwalk_per_span
                              + len(descs) * sc.desc_build
                              + alloc_cost)
            # atomic_t-style ring refcount: the Linux-side completion IRQ
            # decrements this concurrently, so a plain read-modify-write
            # races
            pq.add("n_reqs", 1)

            packet = Packet(kind=meta.get("kind", "eager"),
                            src_node=self.hfi.node_id,
                            dst_node=meta["dst_node"],
                            dst_ctxt=meta["dst_ctxt"],
                            nbytes=total, tag=meta.get("tag"),
                            payload=meta.get("payload"),
                            tids=tuple(meta.get("tids", ())),
                            seq=meta.get("seq"), csum=meta.get("csum"))
            group = SdmaRequestGroup(
                descriptors=descs, packet=packet, owner_kernel="mckernel",
                meta_addrs=[meta_addr], callback_addr=self.completion_addr,
                user_ctx={"completion": meta.get("completion"),
                          "pq_addr": fdata.get("pq")})
            if TRACE.enabled:
                group.trace_ctx = span
            yield from self.linux_driver.sdma_lock.acquire("mckernel",
                                                           lwk.aspace)
            submit_exc: Optional[DriverError] = None
            try:
                yield from engine.submit(group)
            except DriverError as exc:
                # A rejected submit fires no completion; record it and
                # fall through — the undo bookkeeping includes a timed
                # kfree, which must not run while Linux spins on the
                # submit lock.
                submit_exc = exc
            finally:
                self.linux_driver.sdma_lock.release("mckernel")
            if submit_exc is not None:
                # Undo our bookkeeping and let the slow path redo the call.
                pq.add("n_reqs", -1)
                kfree_cost = lwk.alloc.kfree(meta_addr, task.core_id)
                yield sim.timeout(kfree_cost)
                if guard is not None:
                    guard.record_failure(guard.engine_path(engine.index),
                                         f"submit failed: {submit_exc}")
                raise FastPathUnavailable(
                    f"pico writev submit failed: {submit_exc}",
                    engine=engine.index) from submit_exc
            if guard is not None:
                guard.record_success(guard.engine_path(engine.index))
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        lwk.tracer.count("pico.sdma_sends")
        lwk.tracer.record("pico.sdma_descs_per_send", len(descs))
        return total

    def _completion(self, group: SdmaRequestGroup):
        """Completion callback — lives in McKernel TEXT, *runs on a Linux
        CPU* in IRQ context (generator: its cost is charged there)."""
        lwk = self.lwk
        linux_core = lwk.node.cpus.owned_by("linux")[0].core_id
        cost = 0.0
        for addr in group.meta_addrs:
            # McKernel kfree from a Linux CPU: the foreign-free extension
            cost += lwk.alloc.kfree(addr, linux_core)
        yield lwk.sim.timeout(cost)
        ctx = group.user_ctx or {}
        pq_addr = ctx.get("pq_addr")
        if pq_addr is not None:
            pq = self._view("user_sdma_pkt_q", pq_addr, kernel="linux")
            pq.add("n_reqs", -1)
        completion = ctx.get("completion")
        if completion is not None:
            completion.succeed(group)

    # -- fast-path ioctl: expected-receive TIDs ----------------------------------------

    def fast_ioctl(self, task, fd: int, cmd: int, arg):
        """Generator: the LWK-local expected-receive TID fast paths."""
        if cmd == ioc.HFI1_IOCTL_TID_UPDATE:
            span = TRACE.collector.begin_span(
                "pico.tid_update", track_of(self), cat="fastpath") \
                if TRACE.enabled else None
            try:
                return (yield from self._tid_update(task, fd, arg))
            finally:
                if TRACE.enabled and span is not None:
                    TRACE.collector.end_span(span)
        if cmd == ioc.HFI1_IOCTL_TID_FREE:
            span = TRACE.collector.begin_span(
                "pico.tid_free", track_of(self), cat="fastpath") \
                if TRACE.enabled else None
            try:
                return (yield from self._tid_free(task, fd, arg))
            finally:
                if TRACE.enabled and span is not None:
                    TRACE.collector.end_span(span)
        if cmd == ioc.HFI1_IOCTL_TID_INVAL_READ:
            yield self.lwk.sim.timeout(
                self.lwk.params.syscall.tid_ioctl_base_pico)
            return []
        raise DriverError(f"pico ioctl does not claim {cmd:#x}")

    def _tid_update(self, task, fd: int, arg):
        lwk = self.lwk
        sc = lwk.params.syscall
        nic = lwk.params.nic
        inj = self.hfi.injector
        if FAULTS.enabled and inj is not None and inj.fires("tid.transient"):
            # Same retryable RcvArray race the Linux driver can hit; the
            # fast path surfaces it identically so PSM's retry loop is
            # OS-agnostic.
            yield lwk.sim.timeout(sc.tid_ioctl_base_pico)
            raise TransientDeviceError("TID_UPDATE raced RcvArray update")
        vaddr, length = arg["vaddr"], arg["length"]
        if not task.pagetable.is_pinned(vaddr, length):
            raise DriverError(
                f"pico TID_UPDATE over unpinned range {vaddr:#x}")
        file, fdata, _pq = self._file_views(task, fd)
        spans = task.pagetable.phys_spans(vaddr, length)
        # one entry per contiguous span (up to the 2MB entry max) instead
        # of one per base page
        tid_spans = split_spans_for_tids(spans, nic.tid_max_span)
        ctxt = self.hfi.context(fdata.get("ctxt"))
        entries = self.hfi.program_tids(ctxt, tid_spans)
        yield lwk.sim.timeout(sc.tid_ioctl_base_pico
                              + len(spans) * sc.ptwalk_per_span
                              + len(entries) * nic.tid_program_cost)
        # keep the Linux driver's bookkeeping coherent (shared state)
        state = self.linux_driver.file_state_by_addr(file.private_data)
        for e, (pa, nbytes) in zip(entries, tid_spans):
            state.tids[e.tid] = nbytes
        # benign by construction: TID ioctls for one fd are issued
        # sequentially by the owning task, so the fast- and slow-path
        # writers of tid_used never interleave for a single fd
        fdata.set("tid_used", len(state.tids))  # pd-ignore[PD015.5]
        lwk.tracer.count("pico.tid_updates")
        lwk.tracer.record("pico.tids_per_update", len(entries))
        return [e.tid for e in entries]

    def _tid_free(self, task, fd: int, arg):
        lwk = self.lwk
        tids = list(arg["tids"])
        file, fdata, _pq = self._file_views(task, fd)
        state = self.linux_driver.file_state_by_addr(file.private_data)
        for tid in tids:
            if tid not in state.tids:
                raise DriverError(f"pico TID_FREE of unowned tid {tid}")
        self.hfi.unprogram_tids(tids)
        for tid in tids:
            del state.tids[tid]
        fdata.set("tid_used", len(state.tids))
        yield lwk.sim.timeout(
            lwk.params.syscall.tid_ioctl_base_pico
            + len(tids) * lwk.params.nic.tid_program_cost)
        return len(tids)
