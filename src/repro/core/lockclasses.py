"""Declared cross-kernel lock classes and their acquisition hierarchy.

Linux lockdep reasons about lock *classes*, not lock instances: every
lock is registered under a class carrying its name and its place in the
kernel's documented acquisition order.  PicoDriver needs the same notion
more than Linux does — here two *kernels* spin on the same shared-heap
lock words (paper section 3.3), so an AB-BA inversion does not merely
deadlock one machine, it wedges both kernels with no one left to run a
watchdog.

This module is the registry both views of the analyzer share:

* the *dynamic* validator (:mod:`repro.analysis.lockdep`) resolves every
  :class:`~repro.core.sync.CrossKernelSpinLock` to its class by lock
  name and checks observed acquisition order against ``rank``;
* the *static* pass (lint rule PD008) resolves ``X.acquire(...)`` sites
  to classes through constructor ``name=`` bindings and the ``attrs``
  map below, and checks the compile-time order.

The rule is the Linux one: locks must be acquired in **strictly
increasing rank order**.  Ranks are sparse so subsystems can be
inserted between existing levels.

Declarations live next to the lock owners (``linux/hfi1/driver.py``,
``mckernel/kernel.py``, ``core/hfi_pico.py``); this module only hosts
the mechanism, so it stays import-light (the static pass must be able
to load it without dragging in the whole simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class LockClass:
    """One declared cross-kernel lock class.

    ``rank`` orders the acquisition hierarchy (take lower ranks first);
    ``attrs`` lists the attribute names instances conventionally live
    under, so the static pass can resolve ``self.foo.sdma_lock`` without
    seeing the constructor.
    """

    name: str
    rank: int
    subsystem: str
    doc: str = ""
    attrs: Tuple[str, ...] = ()
    #: subsystems that acquire this class without owning it (declared
    #: via :func:`declare_lock_use`)
    users: Tuple[str, ...] = field(default_factory=tuple, compare=False)


class LockClassRegistry:
    """The process-wide table of declared lock classes."""

    def __init__(self) -> None:
        self._classes: Dict[str, LockClass] = {}
        self._by_attr: Dict[str, str] = {}

    def declare(self, name: str, rank: int, subsystem: str, doc: str = "",
                attrs: Tuple[str, ...] = ()) -> LockClass:
        """Register a lock class; idempotent for identical redeclaration.

        A *conflicting* redeclaration (same name, different rank or
        owner) is a protocol bug and raises :class:`ReproError` — two
        subsystems disagreeing about a lock's place in the hierarchy is
        exactly the confusion the hierarchy exists to prevent.
        """
        cls = LockClass(name=name, rank=rank, subsystem=subsystem,
                        doc=doc, attrs=tuple(attrs))
        existing = self._classes.get(name)
        if existing is not None:
            if (existing.rank, existing.subsystem, existing.attrs) != \
                    (cls.rank, cls.subsystem, cls.attrs):
                raise ReproError(
                    f"conflicting lock-class declaration for {name!r}: "
                    f"rank {existing.rank} ({existing.subsystem}) vs "
                    f"rank {cls.rank} ({cls.subsystem})")
            return existing
        self._classes[name] = cls
        for attr in cls.attrs:
            self._by_attr[attr] = name
        return cls

    def declare_use(self, name: str, subsystem: str) -> None:
        """Record that ``subsystem`` acquires class ``name`` it does not
        own (e.g. the pico fast path taking the hfi1 submit lock)."""
        cls = self._classes.get(name)
        if cls is None:
            raise ReproError(
                f"declare_use of unknown lock class {name!r}; declare "
                f"the class (with a rank) before declaring users")
        if subsystem not in cls.users:
            self._classes[name] = LockClass(
                name=cls.name, rank=cls.rank, subsystem=cls.subsystem,
                doc=cls.doc, attrs=cls.attrs,
                users=cls.users + (subsystem,))

    def get(self, name: str) -> Optional[LockClass]:
        """The class declared under ``name``, or None if undeclared."""
        return self._classes.get(name)

    def by_attr(self, attr: str) -> Optional[LockClass]:
        """Resolve an instance attribute name (e.g. ``sdma_lock``)."""
        name = self._by_attr.get(attr)
        return None if name is None else self._classes[name]

    def rank_of(self, name: str) -> Optional[int]:
        """The declared rank of ``name``, or None if undeclared."""
        cls = self._classes.get(name)
        return None if cls is None else cls.rank

    def classes(self) -> List[LockClass]:
        """All declared classes, outermost (lowest rank) first."""
        return sorted(self._classes.values(),
                      key=lambda c: (c.rank, c.name))

    def hierarchy_table(self) -> str:
        """Human-readable hierarchy (lockgraph output / DESIGN.md)."""
        lines = ["rank  class                 owner           "
                 "acquired by",
                 "----  --------------------  --------------  "
                 "-----------"]
        for cls in self.classes():
            users = ", ".join((cls.subsystem,) + cls.users)
            lines.append(f"{cls.rank:4d}  {cls.name:20s}  "
                         f"{cls.subsystem:14s}  {users}")
        return "\n".join(lines)


#: the process-wide registry; lock owners declare into it at import time
REGISTRY = LockClassRegistry()


def declare_lock_class(name: str, rank: int, subsystem: str, doc: str = "",
                       attrs: Tuple[str, ...] = ()) -> LockClass:
    """Module-level convenience over :meth:`LockClassRegistry.declare`."""
    return REGISTRY.declare(name, rank, subsystem, doc, attrs)


def declare_lock_use(name: str, subsystem: str) -> None:
    """Module-level convenience over
    :meth:`LockClassRegistry.declare_use`."""
    REGISTRY.declare_use(name, subsystem)


def ensure_declarations() -> None:
    """Import the modules that own lock declarations.

    The static pass and the lockgraph CLI need the full hierarchy
    without having built a machine first; importing the owners is
    enough because declarations run at module import.
    """
    from ..linux.hfi1 import driver as _hfi1_driver  # noqa: F401
    from ..mckernel import kernel as _mckernel  # noqa: F401
    from . import hfi_pico as _hfi_pico  # noqa: F401
