"""The Mellanox InfiniBand memory-registration PicoDriver.

This is the paper's stated next step ("we intend to further extend this
work by porting memory registration routines from the Mellanox
Infiniband driver", section 6), built on exactly the same framework
contract as the HFI port:

* address spaces must be unified before attach;
* structure layouts come from DWARF extraction of the loaded
  ``mlx5_ib`` module, verified against its version;
* the fast path claims only the two memory-registration verbs commands
  (of nine); everything else — PDs, CQs, QPs, queries — stays on the
  offloaded slow path through the unmodified driver;
* McKernel's pinned, physically contiguous memory lets the fast path
  program one MTT entry per *span* instead of one per 4KB page.
"""

from __future__ import annotations

from typing import Dict

from ..config import GUARD
from ..errors import DriverError
from ..linux.mlx import verbs
from ..linux.mlx.driver import (MTT_PROGRAM_COST, MemoryRegion,
                                MlxDriver)
from ..units import USEC
from .extract import ExtractedLayout, dwarf_extract_struct
from .picodriver import FastPathDecision, PicoDriver
from .structs import StructInstance, StructView

#: fast-path fixed costs (no gup, no key-table locking contention)
REG_MR_BASE_PICO = 0.55 * USEC
DEREG_MR_BASE_PICO = 0.40 * USEC

EXTRACTION_MANIFEST = {
    "mlx5_ib_dev": ["mtt_entries_used", "mtt_entries_max"],
    "mlx5_ib_mr": ["lkey", "rkey", "iova", "length", "npages", "mtt_base"],
}


class MlxMemRegPicoDriver(PicoDriver):
    """LWK-resident fast path for ``reg_mr``/``dereg_mr``."""

    def __init__(self, linux_driver: MlxDriver):
        self.linux_driver = linux_driver
        self.device_path = linux_driver.device_path
        self.module = linux_driver.binary
        self.layouts: Dict[str, ExtractedLayout] = {}
        self.lwk = None
        self.heap = None

    def attach(self, lwk) -> None:
        """Verify unification and extract mlx5 layouts from DWARF."""
        self.require_unified(lwk.linux.aspace, lwk.aspace)
        self.lwk = lwk
        self.heap = lwk.node.kheap
        for struct, fields in EXTRACTION_MANIFEST.items():
            layout = dwarf_extract_struct(self.module, struct, fields)
            self.require_layout_version(layout, self.linux_driver.version)
            self.layouts[struct] = layout

    def claims(self, syscall: str, args: tuple) -> FastPathDecision:
        """Claim REG_MR/DEREG_MR; offload the other verbs commands."""
        if syscall == "ioctl" and args[1] in verbs.MEMREG_COMMANDS:
            return FastPathDecision.claim("memory registration fast path")
        return FastPathDecision.offload(
            f"{syscall} stays in the Linux verbs stack")

    # -- views ---------------------------------------------------------------

    def _dev_view(self) -> StructView:
        addr = self.linux_driver.devdata.addr
        self.lwk.aspace.check_access(addr, "mlx5_ib_dev")
        return StructView(self.layouts["mlx5_ib_dev"], self.heap, addr)

    # -- fast paths -------------------------------------------------------------

    def fast_ioctl(self, task, fd: int, cmd: int, arg):
        """Generator: LWK-local memory (de)registration."""
        if cmd == verbs.MLX_CMD_REG_MR:
            return (yield from self._reg_mr(task, fd, arg))
        if cmd == verbs.MLX_CMD_DEREG_MR:
            return (yield from self._dereg_mr(task, fd, arg))
        raise DriverError(f"mlx pico does not claim {cmd:#x}")

    def _reg_mr(self, task, fd: int, arg):
        lwk = self.lwk
        sc = lwk.params.syscall
        vaddr, length = arg["vaddr"], arg["length"]
        if not task.pagetable.is_pinned(vaddr, length):
            raise DriverError(
                f"pico reg_mr over unpinned range {vaddr:#x}+{length:#x}")
        _path, file = lwk.device_file(task, fd)
        state = self.linux_driver.file_state(file)
        spans = task.pagetable.phys_spans(vaddr, length)
        # one MTT entry per contiguous span — the whole point of the port
        entries = len(spans)
        self._dev_view()  # faults here if the address space is not unified
        guard = self.linux_driver.guard if GUARD.enabled else None
        try:
            self.linux_driver.take_mtt(entries)
        except DriverError as exc:
            if guard is not None:
                # resource exhaustion is path health, not a caller bug:
                # feed the memreg breaker so dispatch routes around it
                guard.record_failure(guard.path_name(0),
                                     f"reg_mr: {exc}")
            raise
        mr = StructInstance(self.linux_driver._defs["mlx5_ib_mr"], self.heap)
        lkey = self.linux_driver.alloc_key()
        mr.set("lkey", lkey)
        mr.set("rkey", lkey + 1)
        mr.set("iova", vaddr)
        mr.set("length", length)
        # benign by construction: the MR lifecycle serializes reg_mr
        # before dereg_mr for each key, and the mckernel-side read is
        # an attribution artifact of the linux-bound StructInstance
        mr.set("npages", entries)  # pd-ignore[PD015.5]
        mr.set("mtt_base", spans[0][0])
        state.regions[lkey] = MemoryRegion(mr=mr, owner=task.name,
                                           spans=tuple(spans))
        yield lwk.sim.timeout(REG_MR_BASE_PICO
                              + len(spans) * sc.ptwalk_per_span
                              + entries * MTT_PROGRAM_COST)
        lwk.tracer.count("pico.mlx_reg_mr")
        lwk.tracer.record("pico.mtt_entries_per_mr", entries)
        if guard is not None:
            guard.record_success(guard.path_name(0))
        return {"lkey": lkey, "rkey": lkey + 1}

    def _dereg_mr(self, task, fd: int, arg):
        lwk = self.lwk
        _path, file = lwk.device_file(task, fd)
        state = self.linux_driver.file_state(file)
        lkey = arg["lkey"]
        region = state.regions.pop(lkey, None)
        if region is None:
            raise DriverError(f"pico dereg_mr of unknown lkey {lkey:#x}")
        entries = region.mr.get("npages")
        self.linux_driver.put_mtt(entries)
        region.mr.free()
        yield lwk.sim.timeout(DEREG_MR_BASE_PICO
                              + entries * MTT_PROGRAM_COST / 2)
        guard = self.linux_driver.guard if GUARD.enabled else None
        if guard is not None:
            guard.record_success(guard.path_name(0))
        return 0
