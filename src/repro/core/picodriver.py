"""The PicoDriver framework: fast-path/slow-path device driver splitting.

A :class:`PicoDriver` is the small, LWK-resident part of a device driver.
For each device-file syscall the LWK asks the driver whether it *claims*
the call (e.g. the HFI PicoDriver claims ``writev`` and exactly three of
the driver's dozen-plus ``ioctl`` commands); claimed calls run locally on
the LWK core, everything else is transparently offloaded to the unmodified
Linux driver (paper section 3).

The framework enforces the porting prerequisites at attach time:

* the kernel virtual address spaces must be unified (section 3.1) — the
  fast path dereferences Linux driver structures;
* structure layouts must come from DWARF extraction of the *loaded* Linux
  module binary (section 3.2) — attaching against a module whose version
  differs from the extraction source is refused;
* completion callbacks must be registered in LWK TEXT through the
  cross-kernel callback registry (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import DriverError
from .address_space import KernelAddressSpace, validate_unification
from .extract import ExtractedLayout


@dataclass(frozen=True)
class FastPathDecision:
    """Outcome of asking a PicoDriver about one syscall invocation."""

    handled: bool
    reason: str = ""

    @classmethod
    def claim(cls, reason: str = "fast path") -> "FastPathDecision":
        return cls(True, reason)

    @classmethod
    def offload(cls, reason: str = "slow path") -> "FastPathDecision":
        return cls(False, reason)


class PicoDriver:
    """Base class for LWK fast-path drivers.

    Subclasses implement :meth:`claims` and one generator method per
    claimed syscall named ``fast_<syscall>`` (e.g. ``fast_writev``).
    """

    #: device file path the driver serves, e.g. "/dev/hfi1_0"
    device_path: str = ""

    def claims(self, syscall: str, args: tuple) -> FastPathDecision:
        """Decide whether this invocation runs on the fast path.

        Typed even at the base class: a driver with no ``claims`` is a
        porting bug, and the dispatcher must surface it as a
        :class:`DriverError` an application can handle — never a bare
        ``NotImplementedError`` that escapes the syscall layer.
        """
        raise DriverError(
            f"{type(self).__name__} implements no claims(); a PicoDriver "
            f"must explicitly claim or offload every device syscall")

    def attach(self, lwk) -> None:
        """Called when registered with an LWK; perform layout extraction
        checks and driver-state mapping here."""

    # the framework dispatcher *returns* the handler's generator
    def fast_call(self, task, syscall: str, args: tuple):  # pd-ignore[PD003]
        """Dispatch to the ``fast_<syscall>`` generator."""
        handler = getattr(self, f"fast_{syscall}", None)
        if handler is None:
            raise DriverError(
                f"{type(self).__name__} claims {syscall} but implements "
                f"no fast_{syscall}")
        return handler(task, *args)

    # -- attach-time verification helpers --------------------------------

    @staticmethod
    def require_unified(linux_aspace: KernelAddressSpace,
                        lwk_aspace: KernelAddressSpace) -> None:
        """Fast paths dereference Linux structures; refuse to attach on a
        non-unified layout rather than fault at runtime."""
        validate_unification(linux_aspace, lwk_aspace)

    @staticmethod
    def require_layout_version(layout: ExtractedLayout,
                               module_version: str) -> None:
        """DWARF layouts are only valid for the module they came from."""
        if layout.source_version != module_version:
            raise DriverError(
                f"layout for {layout.struct_name} extracted from "
                f"v{layout.source_version} but loaded module is "
                f"v{module_version}; re-run dwarf-extract-struct")


class PicoDriverRegistry:
    """Per-LWK registry mapping device paths to their PicoDrivers."""

    def __init__(self) -> None:
        self._drivers: Dict[str, PicoDriver] = {}

    def register(self, driver: PicoDriver) -> None:
        """Register a driver for its device path (one per device)."""
        if not driver.device_path:
            raise DriverError(f"{type(driver).__name__} has no device_path")
        if driver.device_path in self._drivers:
            raise DriverError(
                f"a PicoDriver is already registered for {driver.device_path}")
        self._drivers[driver.device_path] = driver

    def unregister(self, device_path: str) -> None:
        """Remove the driver registered for ``device_path``."""
        if device_path not in self._drivers:
            raise DriverError(f"no PicoDriver for {device_path}")
        del self._drivers[device_path]

    def lookup(self, device_path: str) -> Optional[PicoDriver]:
        """The PicoDriver for ``device_path``, or None."""
        return self._drivers.get(device_path)

    def decide(self, device_path: str, syscall: str,
               args: tuple) -> FastPathDecision:
        """Should this invocation run on the LWK fast path?"""
        driver = self._drivers.get(device_path)
        if driver is None:
            return FastPathDecision.offload("no PicoDriver for device")
        return driver.claims(syscall, args)

    def __len__(self) -> int:
        return len(self._drivers)
