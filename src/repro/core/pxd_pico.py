"""The pxd block-device PicoDriver (px-fuse fast path, paper section 3).

The replicated-write fast path ported to McKernel:

* ``writev`` — the write is cloned to every in-service replica straight
  from the LWK: the replica set comes from a DWARF-layout read of the
  Linux driver's ``pxd_fastpath_extension.inservice_mask`` in shared
  kernel memory, the per-IO ``pxd_io_tracker`` is allocated on the LWK
  heap, and submission is serialized by the driver's own cross-kernel
  submit lock.
* the ``PXD_IOCTL_READ`` data ioctl — served replica-direct with the
  same retry-next policy as the Linux driver.

Everything else — admin ioctls, eviction, probing, resync — stays on
the offloaded slow path through the *unmodified* Linux driver; the fast
path only observes its decisions (the in-service mask, the suspend
bit).  Completion IRQs always run on Linux CPUs, so the eviction policy
has a single home regardless of which kernel submitted the write.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import GUARD, TRACE
from ..errors import BadSyscall, FastPathUnavailable, MediaError
from ..hw.blockdev import BlockIo
from ..linux.pxd import ioctls as ioc
from ..linux.pxd.driver import PxdDriver, PxdIoHead
from ..obs.spans import track_of
from ..sim import Event
from .callbacks import CallbackRegistry
from .extract import ExtractedLayout, StructView, dwarf_extract_struct
from .lockclasses import declare_lock_use
from .picodriver import FastPathDecision, PicoDriver

# the fast path takes the Linux driver's submit lock (declared with its
# rank in linux/pxd/driver.py) without owning it
declare_lock_use("pxd.submit", "core/pxd_pico")

#: (struct, fields) the fast path needs (section 3.2)
EXTRACTION_MANIFEST = {
    "pxd_device": ["size", "qdepth", "nfd"],
    "pxd_fastpath_extension": ["nfd", "inservice_mask", "suspend",
                               "wr_seq", "congested"],
    "pxd_io_tracker": ["orig_sector", "nsectors", "active", "fails"],
}


class PxdPicoDriver(PicoDriver):
    """Fast-path pxd driver resident in McKernel."""

    def __init__(self, linux_driver: PxdDriver):
        self.linux_driver = linux_driver
        self.device_path = linux_driver.device_path
        #: the shipped binary is all we consume for layouts
        self.module = linux_driver.binary
        self.layouts: Dict[str, ExtractedLayout] = {}
        self.lwk = None
        self.blockdev = None
        self.heap = None
        self.callbacks: Optional[CallbackRegistry] = None
        self.completion_addr: Optional[int] = None

    # -- attach (the porting checklist of section 3) ------------------------

    def attach(self, lwk) -> None:
        """Run the section-3 porting checklist against the LWK."""
        linux = lwk.linux
        # 3.1: address space unification is a hard prerequisite
        self.require_unified(linux.aspace, lwk.aspace)
        self.lwk = lwk
        self.blockdev = lwk.node.blockdev
        self.heap = lwk.node.kheap
        # 3.2: extract structure layouts from the module's DWARF
        for struct, fields in EXTRACTION_MANIFEST.items():
            layout = dwarf_extract_struct(self.module, struct, fields)
            self.require_layout_version(layout, self.linux_driver.version)
            self.layouts[struct] = layout
        # 3.3: register the completion callback in McKernel TEXT and make
        # it invokable from Linux
        if self.linux_driver.callbacks is None:
            self.linux_driver.callbacks = CallbackRegistry(
                {"linux": linux.aspace, "mckernel": lwk.aspace})
        self.callbacks = self.linux_driver.callbacks
        self.completion_addr = self.callbacks.register(
            "mckernel", self._completion)
        # 3.3: block completions free LWK memory from Linux CPUs
        lwk.alloc.foreign_free_enabled = True

    # -- claim policy -------------------------------------------------------

    def claims(self, syscall: str, args: tuple) -> FastPathDecision:
        """Claim writev and the READ data ioctl; offload the rest."""
        if syscall == "writev":
            return FastPathDecision.claim("replicated write fast path")
        if syscall == "ioctl":
            cmd = args[1]
            if cmd in ioc.DATA_IOCTLS:
                return FastPathDecision.claim("replica-direct read fast path")
            return FastPathDecision.offload(
                f"administrative ioctl {cmd:#x} stays in Linux")
        return FastPathDecision.offload(f"{syscall} is slow path")

    # -- views over Linux driver state --------------------------------------

    def _view(self, struct: str, addr: int,
              kernel: str = "mckernel") -> StructView:
        """A DWARF-layout view of Linux driver state; ``kernel`` is the
        context *performing* the accesses."""
        self.lwk.aspace.check_access(addr, f"Linux {struct}")
        return StructView(self.layouts[struct], self.heap, addr,
                          kernel=kernel)

    def _fpext(self, task, fd: int):
        _path, file = self.lwk.device_file(task, fd)
        return self._view("pxd_fastpath_extension", file.private_data)

    def _targets(self, fpext: StructView) -> "tuple[int, ...]":
        """The in-service replica set, decoded from the shared-memory
        mask the Linux driver maintains."""
        mask = fpext.get("inservice_mask", atomic=True)
        return tuple(i for i in range(fpext.get("nfd")) if (mask >> i) & 1)

    def _check_range(self, sector: int, nsectors: int) -> None:
        data_sectors = self.blockdev.params.sectors - 1  # scratch reserved
        if sector < 0 or nsectors <= 0 or sector + nsectors > data_sectors:
            raise BadSyscall(
                f"pico pxd: sector range [{sector}, {sector + nsectors}) "
                f"outside data region [0, {data_sectors})")

    # -- fast-path writev: replicated write ---------------------------------

    def fast_writev(self, task, fd: int, iovecs):
        """Generator: the LWK-local replicated write fast path."""
        if len(iovecs) < 2:
            raise BadSyscall("pxd writev needs a header iovec and at "
                             "least one data iovec")
        lwk = self.lwk
        sim = lwk.sim
        sc = lwk.params.syscall
        blk = self.blockdev.params
        meta = iovecs[0]
        payload: bytes = meta["payload"]
        sector: int = meta["sector"]
        if len(payload) % blk.sector_size:
            raise BadSyscall(f"pxd write of {len(payload)}B is not "
                             f"sector-aligned ({blk.sector_size}B sectors)")
        nsectors = len(payload) // blk.sector_size
        self._check_range(sector, nsectors)
        fpext = self._fpext(task, fd)
        if fpext.get("suspend", atomic=True) != 0:
            # the device is being quiesced; the slow path parks and
            # replays, the fast path simply defers to it
            lwk.tracer.count("pico.pxd_suspended")
            raise FastPathUnavailable("pxd device suspended")
        targets = self._targets(fpext)
        if not targets:
            # no in-service replica: the slow path owns the typed refusal
            lwk.tracer.count("pico.pxd_no_replicas")
            raise FastPathUnavailable("pxd has no in-service replicas")

        spans = []
        for vaddr, length in iovecs[1:]:
            # McKernel ANONYMOUS memory is pinned by construction
            if not task.pagetable.is_pinned(vaddr, length):
                raise BadSyscall(
                    f"pico writev over unpinned range {vaddr:#x}+{length:#x}")
            spans.extend(task.pagetable.phys_spans(vaddr, length))

        # per-IO tracker on the LWK heap; the completion IRQ updates it
        # from Linux CPUs through the same DWARF layout
        trk_layout = self.layouts["pxd_io_tracker"]
        trk_addr, alloc_cost = lwk.alloc.kmalloc(trk_layout.byte_size,
                                                 task.core_id)
        tracker = StructView(trk_layout, self.heap, trk_addr,
                             kernel="mckernel")
        # benign by construction: io trackers are per-request
        # allocations; the fast and slow paths never share one, so
        # the cross-kernel writes below target distinct objects
        tracker.set("orig_sector", sector)  # pd-ignore[PD015.5]
        tracker.set("nsectors", nsectors)  # pd-ignore[PD015.5]
        tracker.set("active", len(targets), atomic=True)
        tracker.set("fails", 0, atomic=True)
        # atomic cross-kernel increment of the driver's write sequence
        fpext.add("wr_seq", 1)
        completion_tracker = StructView(trk_layout, self.heap, trk_addr,
                                        kernel="linux")
        head = PxdIoHead(sector=sector, nsectors=nsectors, payload=payload,
                         targets=targets, tracker_add=completion_tracker.add,
                         remaining=len(targets),
                         completion=meta.get("completion"),
                         callback_addr=self.completion_addr,
                         meta_addrs=[trk_addr], owner_kernel="mckernel")
        linux_driver = self.linux_driver
        # registered before any yield: the slow path's probe machinery
        # must see fast-path writes in its drain checks too
        linux_driver._inflight.add(head)
        span = TRACE.collector.begin_span(
            "pico.pxd_writev", track_of(self), cat="fastpath",
            args={"sector": sector, "nsectors": nsectors,
                  "replicas": len(targets)}) if TRACE.enabled else None
        if TRACE.enabled:
            head.trace_ctx = span
        try:
            yield sim.timeout(blk.submit_base_pico
                              + len(spans) * sc.ptwalk_per_span
                              + alloc_cost)
            guard = linux_driver.guard if GUARD.enabled else None
            if guard is not None:
                yield from guard.park_if_suspended()
                # same qdepth bound as the slow path, same ascending
                # order so mixed-kernel writers cannot deadlock
                for r in targets:
                    yield from guard.gates[r].acquire_slots(1)
                # WRITE_ONCE: the slow path updates the same flag
                # lock-free from Linux CPUs
                fpext.set("congested",
                          1 if any(guard.gates[r].congested
                                   for r in targets) else 0,
                          atomic=True)
            yield from linux_driver.submit_lock.acquire("mckernel",
                                                        lwk.aspace)
            try:
                for r in targets:
                    self.blockdev.submit(BlockIo(
                        op="write", replica=r, sector=sector,
                        nsectors=nsectors, payload=payload, user_ctx=head,
                        trace_ctx=head.trace_ctx))
            finally:
                linux_driver.submit_lock.release("mckernel")
        except BaseException:
            linux_driver._inflight.discard(head)
            kfree_cost = lwk.alloc.kfree(trk_addr, task.core_id)
            yield sim.timeout(kfree_cost)
            raise
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        lwk.tracer.count("pico.pxd_writes")
        return len(payload)

    def _completion(self, head: PxdIoHead):
        """Completion callback — lives in McKernel TEXT, *runs on a Linux
        CPU* in IRQ context (generator: its cost is charged there)."""
        lwk = self.lwk
        linux_core = lwk.node.cpus.owned_by("linux")[0].core_id
        cost = 0.0
        for addr in head.meta_addrs:
            # McKernel kfree from a Linux CPU: the foreign-free extension
            cost += lwk.alloc.kfree(addr, linux_core)
        yield lwk.sim.timeout(cost)
        # the acknowledgement policy (survivors ack / all-failed typed)
        # is the Linux driver's, shared by both submit paths
        self.linux_driver._ack(head)

    # -- fast-path ioctl: replica-direct read -------------------------------

    def fast_ioctl(self, task, fd: int, cmd: int, arg):
        """Generator: the LWK-local data-path ioctls."""
        if cmd == ioc.PXD_IOCTL_READ:
            span = TRACE.collector.begin_span(
                "pico.pxd_read", track_of(self), cat="fastpath") \
                if TRACE.enabled else None
            try:
                return (yield from self._read(task, fd, arg))
            finally:
                if TRACE.enabled and span is not None:
                    TRACE.collector.end_span(span)
        raise BadSyscall(f"pico pxd ioctl does not claim {cmd:#x}")

    def _read(self, task, fd: int, arg):
        """Replica-direct read: lowest in-service replica first, retry
        the next on media errors; typed when every target fails."""
        lwk = self.lwk
        sim = lwk.sim
        blk = self.blockdev.params
        sector, nsectors = arg["sector"], arg["nsectors"]
        self._check_range(sector, nsectors)
        fpext = self._fpext(task, fd)
        if fpext.get("suspend", atomic=True) != 0:
            lwk.tracer.count("pico.pxd_suspended")
            raise FastPathUnavailable("pxd device suspended")
        targets = self._targets(fpext)
        if not targets:
            lwk.tracer.count("pico.pxd_no_replicas")
            raise FastPathUnavailable("pxd has no in-service replicas")
        yield sim.timeout(blk.submit_base_pico)
        guard = self.linux_driver.guard if GUARD.enabled else None
        errors = []
        for r in targets:
            evt = Event(sim)
            io = BlockIo(op="read", replica=r, sector=sector,
                         nsectors=nsectors, user_ctx={"io_evt": evt})
            yield from self.linux_driver.submit_lock.acquire("mckernel",
                                                             lwk.aspace)
            try:
                self.blockdev.submit(io)
            finally:
                self.linux_driver.submit_lock.release("mckernel")
            yield evt
            done: BlockIo = evt.value
            if done.status is None:
                lwk.tracer.count("pico.pxd_reads")
                return done.data
            errors.append((r, done.status))
            lwk.tracer.count("pico.pxd_read_retries")
            if guard is not None:
                guard.record_failure(guard.path_name(r),
                                     f"read error: {done.status}")
        raise MediaError(
            f"pico pxd read at sector {sector} failed on every in-service "
            "replica: " + "; ".join(str(e) for _r, e in errors))
