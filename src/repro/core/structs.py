"""C structure layout modeling and the blessed heap accessors.

The simulated Linux HFI1 driver keeps its state in :class:`CStructDef`-shaped
objects stored in the node's byte-backed kernel heap.  Offsets follow the
System V x86_64 ABI (natural alignment, trailing padding to the largest
member alignment), so layouts shift realistically when a driver update adds,
removes or reorders fields — exactly the drift that makes hand-copied
headers fragile (paper section 3.2).

This module (together with :mod:`repro.core.sync`) is the only place in
``repro.core`` allowed to touch raw :class:`~repro.hw.memory.SharedHeap`
words (lint rule PD005): :class:`StructInstance` is the owning driver's
view of a structure, :class:`StructView` is the LWK's DWARF-derived view
of the same bytes.  Both carry the accessing kernel and annotate every
access for the KSan race detector (:mod:`repro.analysis.ksan`), and both
offer :meth:`StructInstance.add`, an atomic read-modify-write modeling
the ``LOCK XADD`` behind Linux ``atomic_t`` counters — which is how the
driver's cross-kernel reference counts stay race-free without a lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..hw.memory import SharedHeap


@dataclass(frozen=True)
class CType:
    """A primitive C type: name, byte size and alignment."""

    name: str
    size: int
    align: int
    signed: bool = False


U8 = CType("unsigned char", 1, 1)
U16 = CType("unsigned short", 2, 2)
U32 = CType("unsigned int", 4, 4)
U64 = CType("unsigned long", 8, 8)
S32 = CType("int", 4, 4, signed=True)
S64 = CType("long", 8, 8, signed=True)
PTR = CType("void *", 8, 8)


def ENUM(name: str) -> CType:
    """An enum type (4 bytes on x86_64 Linux)."""
    return CType(f"enum {name}", 4, 4)


def ARRAY(elem: CType, count: int) -> Tuple[CType, int]:
    """An array member; used as the ``ctype`` of a :class:`Field`."""
    return (elem, count)


@dataclass(frozen=True)
class Field:
    """One structure member.

    ``ctype`` is a :class:`CType` or an ``ARRAY(...)`` tuple.  Embedded
    sub-structures are expressed with :meth:`CStructDef.as_ctype` — opaque
    blobs from the extractor's point of view, matching how PicoDriver
    treats Linux ``kobject`` and friends.
    """

    name: str
    ctype: Union[CType, Tuple[CType, int]]

    @property
    def elem(self) -> CType:
        return self.ctype[0] if isinstance(self.ctype, tuple) else self.ctype

    @property
    def count(self) -> int:
        return self.ctype[1] if isinstance(self.ctype, tuple) else 1

    @property
    def size(self) -> int:
        return self.elem.size * self.count

    @property
    def align(self) -> int:
        return self.elem.align


class CStructDef:
    """A C structure definition with ABI-correct offsets."""

    def __init__(self, name: str, fields: List[Field]):
        if not fields:
            raise ReproError(f"struct {name} has no fields")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ReproError(f"struct {name} has duplicate field names")
        self.name = name
        self.fields = list(fields)
        self._offsets: Dict[str, int] = {}
        off = 0
        max_align = 1
        for f in self.fields:
            align = f.align
            max_align = max(max_align, align)
            off = -(-off // align) * align
            self._offsets[f.name] = off
            off += f.size
        self.align = max_align
        #: total size including trailing padding
        self.size = -(-off // max_align) * max_align

    def offset_of(self, field: str) -> int:
        """ABI byte offset of a field within the struct."""
        try:
            return self._offsets[field]
        except KeyError:
            raise ReproError(f"struct {self.name} has no field {field!r}")

    def field(self, name: str) -> Field:
        """Look up a field definition by name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise ReproError(f"struct {self.name} has no field {name!r}")

    def as_ctype(self) -> CType:
        """Use this struct as an embedded member of another struct."""
        return CType(f"struct {self.name}", self.size, self.align)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CStructDef {self.name} size={self.size}>"


def _annotate(heap: SharedHeap, kernel: str, label: str,
              atomic: bool = False) -> None:
    """Declare the next heap access to an installed KSan monitor."""
    monitor = heap.monitor
    if monitor is not None:
        monitor.annotate(kernel, label, atomic)


class StructInstance:
    """A live structure in kernel heap memory, accessed through its *own*
    definition — this is the Linux driver's (always correct) view.

    ``kernel`` names the kernel this view belongs to for the race
    detector; the owning Linux driver is the default.
    """

    def __init__(self, defn: CStructDef, heap: SharedHeap,
                 addr: Optional[int] = None, kernel: str = "linux"):
        self.defn = defn
        self.heap = heap
        self.kernel = kernel
        self.addr = heap.kmalloc(defn.size) if addr is None else addr

    def _loc(self, field: str, index: int):
        f = self.defn.field(field)
        self._check_index(f, index)
        off = self.defn.offset_of(field) + index * f.elem.size
        return f, self.addr + off

    def get(self, field: str, index: int = 0, *,
            atomic: bool = False) -> int:
        """Read a field (array ``index`` optional).  ``atomic=True``
        models ``READ_ONCE``/``atomic_read`` — race-free in the KSan
        model; use for lock-free reads of shared control words."""
        f, addr = self._loc(field, index)
        _annotate(self.heap, self.kernel, f"{self.defn.name}.{field}",
                  atomic=atomic)
        raw = self.heap.read_u(addr, f.elem.size)
        if f.elem.signed and raw >= 1 << (8 * f.elem.size - 1):
            raw -= 1 << (8 * f.elem.size)
        return raw

    def set(self, field: str, value: int, index: int = 0, *,
            atomic: bool = False) -> None:
        """Write a field (array ``index`` optional).  ``atomic=True``
        models ``WRITE_ONCE``/``atomic_set`` — race-free in the KSan
        model; use for lock-free writes of shared control words."""
        f, addr = self._loc(field, index)
        if value < 0:
            value += 1 << (8 * f.elem.size)
        _annotate(self.heap, self.kernel, f"{self.defn.name}.{field}",
                  atomic=atomic)
        self.heap.write_u(addr, f.elem.size, value)

    def add(self, field: str, delta: int, index: int = 0) -> int:
        """Atomic read-modify-write (``LOCK XADD``): add ``delta`` to the
        field and return the new value.  Atomic accesses are race-free
        against any other access in the KSan model — use for the
        driver's ``atomic_t``-style counters."""
        f, addr = self._loc(field, index)
        label = f"{self.defn.name}.{field}"
        _annotate(self.heap, self.kernel, label, atomic=True)
        raw = self.heap.read_u(addr, f.elem.size)
        raw = (raw + delta) % (1 << (8 * f.elem.size))
        _annotate(self.heap, self.kernel, label, atomic=True)
        self.heap.write_u(addr, f.elem.size, raw)
        return raw

    def free(self) -> None:
        """Release the backing heap allocation."""
        self.heap.kfree(self.addr)

    @staticmethod
    def _check_index(f: Field, index: int) -> None:
        if not (0 <= index < f.count):
            raise ReproError(
                f"index {index} out of bounds for {f.name}[{f.count}]")


class StructView:
    """LWK-side access to a Linux structure through an extracted layout
    (see :mod:`repro.core.extract` for the extraction workflow).

    Reads and writes go to the same byte-backed heap the Linux driver
    uses — if the layout is stale (built from a different driver version)
    the view silently reads the wrong bytes, which is precisely the
    failure mode the DWARF workflow exists to prevent.

    ``kernel`` names the kernel *performing* the accesses for the race
    detector; the McKernel fast path is the default, but a completion
    callback running on a Linux CPU should pass ``"linux"``.
    """

    def __init__(self, layout, heap: SharedHeap, addr: int,
                 kernel: str = "mckernel"):
        self.layout = layout
        self.heap = heap
        self.addr = addr
        self.kernel = kernel

    def _loc(self, field: str, index: int):
        f = self.layout.field(field)
        self._check_index(f, index)
        return f, self.addr + f.offset + index * f.elem_size

    def get(self, field: str, index: int = 0, *,
            atomic: bool = False) -> int:
        """Read a field (array ``index`` optional) from heap memory.
        ``atomic=True`` models ``READ_ONCE``/``atomic_read``; see
        :meth:`StructInstance.get`."""
        f, addr = self._loc(field, index)
        _annotate(self.heap, self.kernel,
                  f"{self.layout.struct_name}.{field}", atomic=atomic)
        return self.heap.read_u(addr, f.elem_size)

    def set(self, field: str, value: int, index: int = 0, *,
            atomic: bool = False) -> None:
        """Write a field (array ``index`` optional) to heap memory.
        ``atomic=True`` models ``WRITE_ONCE``/``atomic_set``; see
        :meth:`StructInstance.set`."""
        f, addr = self._loc(field, index)
        if value < 0:
            value += 1 << (8 * f.elem_size)
        _annotate(self.heap, self.kernel,
                  f"{self.layout.struct_name}.{field}", atomic=atomic)
        self.heap.write_u(addr, f.elem_size, value)

    def add(self, field: str, delta: int, index: int = 0) -> int:
        """Atomic read-modify-write (``LOCK XADD``); see
        :meth:`StructInstance.add`."""
        f, addr = self._loc(field, index)
        label = f"{self.layout.struct_name}.{field}"
        _annotate(self.heap, self.kernel, label, atomic=True)
        raw = self.heap.read_u(addr, f.elem_size)
        raw = (raw + delta) % (1 << (8 * f.elem_size))
        _annotate(self.heap, self.kernel, label, atomic=True)
        self.heap.write_u(addr, f.elem_size, raw)
        return raw

    @staticmethod
    def _check_index(f, index: int) -> None:
        if not (0 <= index < f.count):
            raise ReproError(f"index {index} out of bounds for "
                             f"{f.name}[{f.count}]")
