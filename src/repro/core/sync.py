"""Cross-kernel synchronization (paper section 3.3).

Both kernels touch HFI driver state concurrently — Linux from offloaded
syscalls and completion IRQs, McKernel from the PicoDriver fast path — so
they must share locks.  The lock word lives in the shared kernel heap (the
direct-mapped region both kernels address after unification) and the two
kernels must run *compatible spin-lock implementations*; McKernel adopted
the Linux x86_64 implementation, which the constructor enforces.

In the discrete-event model, waiting for the lock burns CPU time (a spinner
does not sleep — Linux cannot send wake-ups across kernel boundaries), and
that spin time is accounted to the acquiring context.
"""

from __future__ import annotations

import sys
from typing import Optional

from ..errors import DriverError
from ..hw.memory import SharedHeap
from ..sim import Resource, Simulator, Tracer
from .address_space import KernelAddressSpace
from .lockclasses import REGISTRY as LOCK_CLASSES

#: the one implementation both kernels must agree on
LINUX_QSPINLOCK = "linux-x86_64-qspinlock"


class CrossKernelSpinLock:
    """A spin lock whose state word lives in shared kernel memory.

    ``acquire``/``release`` are generators (simulation processes).  FIFO
    fairness comes from the underlying queue; the heap word is maintained
    for real so tests can observe lock state from either kernel's view.
    """

    def __init__(self, sim: Simulator, heap: SharedHeap, name: str = "lock",
                 impl: str = LINUX_QSPINLOCK,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.heap = heap
        self.name = name
        self.impl = impl
        self.tracer = tracer if tracer is not None else Tracer()
        self.word_addr = heap.kmalloc(4)
        heap.write_u(self.word_addr, 4, 0)
        self._res = Resource(sim, capacity=1, name=name)
        self._holder: Optional[str] = None
        self._held_req = None
        #: the holder's critical-section frame, captured at grant time —
        #: recursion detection and lockdep's held-across-wait attribution
        #: both key off frame identity, because kernel strings are shared
        #: by every process of that kernel
        self._holder_frame = None

    @property
    def locked(self) -> bool:
        return self.heap.read_u(self.word_addr, 4) != 0

    @property
    def holder(self) -> Optional[str]:
        return self._holder

    @property
    def lock_class(self):
        """The declared :class:`~repro.core.lockclasses.LockClass` this
        lock's name resolves to, or None for an undeclared lock."""
        return LOCK_CLASSES.get(self.name)

    def acquire(self, kernel: str, aspace: KernelAddressSpace,
                impl: str = LINUX_QSPINLOCK):
        """Generator: spin until the lock is ours.

        ``aspace`` is the acquiring kernel's address space — dereferencing
        the lock word requires the shared direct mapping, so acquiring a
        Linux-heap lock from a non-unified McKernel page-faults here, just
        as it would on hardware.
        """
        if impl != self.impl:
            raise DriverError(
                f"spin-lock implementation mismatch on {self.name}: "
                f"lock is {self.impl}, acquirer uses {impl}")
        aspace.check_access(self.word_addr, f"spin-lock word of {self.name}")
        if self._holder is not None and self._holder_frame is not None \
                and self._frame_is_live_caller(self._holder_frame):
            # The FIFO resource would queue this request behind the very
            # critical section issuing it — a silent self-deadlock (a
            # real qspinlock spins forever here).  Kernel identity is not
            # enough to detect it (two processes of one kernel contend
            # legally), so we check whether the holder's recorded
            # critical-section frame is on the *current* call chain.
            raise DriverError(
                f"recursive acquisition of {self.name} by {kernel}: "
                f"already held by this context (acquired as "
                f"{self._holder}); a spinning kernel never sees its own "
                f"release")
        t0 = self.sim.now
        req = self._res.request()
        yield req
        spin = self.sim.now - t0
        if spin > 0:
            self.tracer.record(f"spin.{self.name}", spin)
        # the lock word is manipulated with atomic instructions (cmpxchg)
        monitor = self.heap.monitor
        if monitor is not None:
            monitor.annotate(kernel, f"lock:{self.name}", atomic=True)
        self.heap.write_u(self.word_addr, 4, 1)
        self._holder = kernel
        self._held_req = req
        # the delegating frame one level up is the critical section
        self._holder_frame = sys._getframe().f_back
        if monitor is not None:
            monitor.on_lock_acquired(self.name, kernel)
            hook = getattr(monitor, "on_lockdep_acquire", None)
            if hook is not None:
                hook(self, kernel, self._holder_frame)
        return req

    @staticmethod
    def _frame_is_live_caller(holder_frame) -> bool:
        """True if ``holder_frame`` is on the current Python call chain
        (i.e. the code attempting to acquire *is* the critical section
        that already holds the lock, however many ``yield from`` levels
        deep)."""
        frame = sys._getframe(2)
        while frame is not None:
            if frame is holder_frame:
                return True
            frame = frame.f_back
        return False

    def release(self, kernel: str) -> None:
        """Clear the lock word and wake the next FIFO waiter.

        Misuse — releasing an unheld lock (double release) or a lock
        held by the *other* kernel — is a driver-protocol violation and
        raises :class:`~repro.errors.DriverError`; on hardware it would
        hand the critical section to a racing waiter.
        """
        if self._holder is None:
            raise DriverError(
                f"double release of {self.name}: lock is not held")
        if self._holder != kernel:
            raise DriverError(
                f"{kernel} releasing {self.name} held by {self._holder}")
        monitor = self.heap.monitor
        if monitor is not None:
            monitor.annotate(kernel, f"lock:{self.name}", atomic=True)
        self.heap.write_u(self.word_addr, 4, 0)
        self._holder = None
        self._holder_frame = None
        req, self._held_req = self._held_req, None
        if monitor is not None:
            monitor.on_lock_released(self.name, kernel)
            hook = getattr(monitor, "on_lockdep_release", None)
            if hook is not None:
                hook(self, kernel)
        self._res.release(req)

    def held_by(self, kernel: str) -> bool:
        """True if ``kernel`` currently holds the lock."""
        return self._holder == kernel


def rcu_synchronize(*_args, **_kwargs):
    """Cross-kernel RCU is explicitly unsupported.

    Paper section 3.3: "although we did not need it in this study, we
    have not solved the problem of RCU locks, which we left for future
    work."  A PicoDriver port that needs an RCU grace period spanning
    both kernels must fail loudly rather than race silently.
    """
    raise NotImplementedError(
        "cross-kernel RCU grace periods are unsupported (PicoDriver "
        "future work, paper section 3.3); restructure the fast path to "
        "use spin locks or defer the RCU-protected operation to Linux")
