"""Exception hierarchy for the simulated machine and OS stack."""

from __future__ import annotations

#: when set (``python -m repro vet --crosscheck`` installs one), called
#: with every constructed :class:`ReproError` so a dynamic run's typed
#: errors can be checked for containment in PicoVet's static index of
#: construction sites
OBSERVER = None


class ReproError(Exception):
    """Base class for all simulator-domain errors."""

    def __init__(self, *args):
        super().__init__(*args)
        if OBSERVER is not None:
            OBSERVER(self)


class OutOfMemory(ReproError):
    """A physical-frame or heap allocation could not be satisfied."""


class PageFault(ReproError):
    """An address was dereferenced that the accessing kernel does not map.

    This is the error the PicoDriver's virtual-address-space unification
    exists to prevent: before unification, McKernel dereferencing a Linux
    ``kmalloc`` pointer faults (paper section 3.1).
    """

    def __init__(self, kernel: str, addr: int, why: str = ""):
        self.kernel = kernel
        self.addr = addr
        super().__init__(
            f"{kernel}: page fault dereferencing {addr:#018x}"
            + (f" ({why})" if why else ""))


class BadSyscall(ReproError):
    """Invalid syscall number/arguments (simulated -EINVAL and friends)."""


class DriverError(ReproError):
    """Device-driver level failure (bad TID, ring overflow misuse, ...)."""


class FastPathUnavailable(DriverError):
    """The PicoDriver fast path cannot serve this call right now.

    Raised when the fast path observes (through its DWARF struct views)
    that the device is not in a serviceable state — e.g. the target SDMA
    engine is halted mid-recovery — or when a device submit fails under
    the fast path.  The McKernel syscall dispatcher catches this and
    re-issues the call over the offloaded Linux slow path (graceful
    degradation, paper section 3: the slow path "handles everything").

    ``engine`` carries the index of the SDMA engine that declined the
    call when one was already reserved (``None`` for failures before
    engine selection), so the dispatcher's fallback accounting and the
    guard plane's per-path breakers can attribute the failure.
    """

    def __init__(self, msg: str, engine: "int | None" = None):
        super().__init__(msg)
        self.engine = engine


class MediaError(DriverError):
    """A block-device backing replica failed a media operation.

    Carries the replica index so the pxd driver's per-path accounting
    (tracker ``fails`` counters, guard breakers, eviction) can attribute
    the failure; surfaced to the application only when *every*
    in-service replica fails the same IO.
    """

    def __init__(self, msg: str, replica: "int | None" = None):
        super().__init__(msg)
        self.replica = replica


class TransientDeviceError(DriverError):
    """A device operation failed in a retryable way (e.g. a TID_UPDATE
    that raced a receive-array update); the caller should back off and
    retry before surfacing a hard failure."""


class DeviceTimeout(ReproError):
    """Bounded retries/timeouts exhausted without the transfer completing.

    Surfaced to MPI through the request's completion event after the PSM
    reliability layer gives up (lost packets that outlived every
    retransmit, a peer that never answered an RTS, ...).
    """


class TransferCorrupt(ReproError):
    """Payload integrity check failed and retransmits could not repair it.

    Raised by the PSM expected-receive checksum when injected fabric
    corruption survives the bounded retransmit budget.
    """


class DwarfError(ReproError):
    """Requested structure/field not found in DWARF debug information."""


class LayoutError(ReproError):
    """Kernel virtual address space layout constraint violated."""
