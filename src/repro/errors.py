"""Exception hierarchy for the simulated machine and OS stack."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator-domain errors."""


class OutOfMemory(ReproError):
    """A physical-frame or heap allocation could not be satisfied."""


class PageFault(ReproError):
    """An address was dereferenced that the accessing kernel does not map.

    This is the error the PicoDriver's virtual-address-space unification
    exists to prevent: before unification, McKernel dereferencing a Linux
    ``kmalloc`` pointer faults (paper section 3.1).
    """

    def __init__(self, kernel: str, addr: int, why: str = ""):
        self.kernel = kernel
        self.addr = addr
        super().__init__(
            f"{kernel}: page fault dereferencing {addr:#018x}"
            + (f" ({why})" if why else ""))


class BadSyscall(ReproError):
    """Invalid syscall number/arguments (simulated -EINVAL and friends)."""


class DriverError(ReproError):
    """Device-driver level failure (bad TID, ring overflow misuse, ...)."""


class DwarfError(ReproError):
    """Requested structure/field not found in DWARF debug information."""


class LayoutError(ReproError):
    """Kernel virtual address space layout constraint violated."""
