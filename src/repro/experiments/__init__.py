"""Experiment harnesses: machine builders and one module per paper
table/figure (see DESIGN.md section 3 for the index)."""

from .common import Machine, MachineNode, build_machine
from .contention import ContentionResult, run_contention
from .fig4 import Fig4Result, run_fig4
from .fig5 import run_fig5a, run_fig5b
from .fig6 import run_fig6a, run_fig6b
from .fig7 import run_fig7
from .fig8_9 import Fig89Result, run_breakdown, run_fig8, run_fig9
from .scaling import ScalingResult, run_scaling
from .sloc import SlocResult, run_sloc
from .table1 import Table1Result, run_table1

__all__ = [
    "ContentionResult", "Fig4Result", "Fig89Result", "Machine",
    "MachineNode", "ScalingResult", "SlocResult", "Table1Result",
    "build_machine", "run_breakdown", "run_contention", "run_fig4",
    "run_fig5a", "run_fig5b", "run_fig6a", "run_fig6b", "run_fig7",
    "run_fig8", "run_fig9", "run_scaling", "run_sloc", "run_table1",
]
