"""``python -m repro chaos`` — the fault-injection sweep.

For every OS configuration the paper evaluates, run a two-node message
workload under increasing uniform fault rates and check the end-to-end
contract of the recovery machinery: **every message is either delivered
byte-intact or surfaces a typed error** (:class:`DeviceTimeout` /
:class:`TransferCorrupt`) — nothing is silently lost or silently
corrupted.  Alongside the integrity verdict the sweep reports the
goodput degradation curve and the recovery counters (PicoDriver
fast→slow fallbacks, SDMA halts, PSM retransmits), which is how the
reproduction demonstrates the paper's central fast/slow split under
adversity rather than only on a perfect device.

The machine uses a 2-engine SDMA pool so that engine halts land on
in-use engines often enough to observe fallbacks at modest message
counts; all fault decisions come from dedicated seeded RNG streams, so
every cell of the sweep is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (ALL_CONFIGS, OSConfig, enable_fault_injection,
                      enable_guard)
from ..errors import DeviceTimeout, TransferCorrupt
from ..faults import FaultPlan
from ..params import default_params
from ..psm import Endpoint, TagMatcher
from ..sim import Event
from ..units import KiB, MiB, USEC
from .common import build_machine

#: one of each protocol regime: eager PIO, eager SDMA, rendezvous (4
#: windows at the default 256KB window size)
MESSAGE_SIZES = (4 * KiB, 96 * KiB, 1 * MiB)

#: uniform per-opportunity fault rates swept by the full run
DEFAULT_RATES = (0.0, 0.002, 0.005, 0.01)

#: trimmed sweep for CI (--smoke)
SMOKE_RATES = (0.0, 0.01)


@dataclass
class CellResult:
    """Outcome of one (OS config, fault rate) cell."""

    os_config: OSConfig
    rate: float
    messages: int
    delivered: int
    failed_typed: int
    goodput: float                     # bytes/second of intact delivery
    counters: Dict[str, int]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every message was delivered intact or typed-failed."""
        return not self.violations


@dataclass
class ChaosResult:
    """The full sweep: cells plus a render method."""

    workload: str
    cells: List[CellResult]

    @property
    def violations(self) -> List[str]:
        """All integrity violations across the sweep."""
        return [v for cell in self.cells for v in cell.violations]

    def render(self) -> str:
        """Human-readable sweep table plus the integrity verdict."""
        lines = [f"Chaos sweep: {self.workload} "
                 f"({self.cells[0].messages if self.cells else 0} messages"
                 f" per cell)",
                 "", "config          rate     delivered  typed-fail  "
                 "goodput MB/s  fallbacks  halts  retransmits"]
        for c in self.cells:
            lines.append(
                f"{c.os_config.label:<15} {c.rate:<8g} "
                f"{c.delivered:>3}/{c.messages:<5}  {c.failed_typed:>10}  "
                f"{c.goodput / 1e6:>12.1f}  "
                f"{c.counters.get('pico.fallbacks', 0):>9}  "
                f"{c.counters.get('hfi.sdma_halts', 0):>5}  "
                f"{c.counters.get('psm.retransmits', 0):>11}")
        lines.append("")
        if self.violations:
            lines.append(f"INTEGRITY VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("data integrity: every message delivered intact "
                         "or failed with a typed error")
        return "\n".join(lines)


def _chaos_params():
    params = default_params()
    return params.with_overrides(
        nic=replace(params.nic, sdma_engines=2))


def _run_cell(os_config: OSConfig, rate: float, n_messages: int,
              params=None) -> CellResult:
    """Run one (config, rate) cell of the ping-pong-style workload.

    ``params`` overrides the 2-engine chaos calibration — the PicoTune
    environment reuses this cell as its goodput-under-faults fitness
    over arbitrary design points.
    """
    # A zero-rate *plan* (rather than no plan) keeps the reliability
    # protocol active, so the rate-0 row is the protocol-overhead
    # baseline and the curve isolates the cost of the faults themselves.
    enable_fault_injection(FaultPlan.uniform(rate))
    try:
        machine = build_machine(
            2, os_config,
            params=params if params is not None else _chaos_params())
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        msgs: List[Tuple[int, int]] = [
            (i, MESSAGE_SIZES[i % len(MESSAGE_SIZES)])
            for i in range(n_messages)]
        bufsize = 2 * max(MESSAGE_SIZES)
        send_out: Dict[int, str] = {}
        recv_reqs: Dict[int, object] = {}
        span: Dict[str, Optional[float]] = {"start": None, "end": None}

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            span["start"] = sim.now
            for i, size in msgs:
                try:
                    yield from ep0.mq_send(ep1.addr, ("chaos", i), buf,
                                           size, payload=("tok", i, size))
                    send_out[i] = "ok"
                except (DeviceTimeout, TransferCorrupt) as exc:
                    send_out[i] = type(exc).__name__
            span["end"] = sim.now

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for i, _size in msgs:
                recv_reqs[i] = ep1.mq_irecv(
                    TagMatcher(tag=("chaos", i)), (buf, bufsize))

        sim.process(receiver())
        sim.process(sender())
        # Drain completely: bounded watchdogs mean the simulation always
        # quiesces, even for messages that end in a typed failure.
        sim.run()

        delivered = failed = 0
        delivered_bytes = 0
        violations: List[str] = []
        typed = ("DeviceTimeout", "TransferCorrupt")
        for i, size in msgs:
            req = recv_reqs.get(i)
            s_out = send_out.get(i, "hung")
            label = f"{os_config.label} rate={rate:g} msg {i} ({size}B)"
            if req is not None and req.event.triggered \
                    and req.event.exception is None:
                if req.payload == ("tok", i, size) and req.nbytes == size:
                    delivered += 1
                    delivered_bytes += size
                else:
                    violations.append(
                        f"{label}: delivered corrupt "
                        f"(payload={req.payload!r}, nbytes={req.nbytes})")
                continue
            r_exc = (req.event.exception
                     if req is not None and req.event.triggered else None)
            if (r_exc is not None and type(r_exc).__name__ in typed) \
                    or s_out in typed:
                failed += 1
                continue
            if r_exc is not None:
                violations.append(f"{label}: untyped receive error "
                                  f"{r_exc!r}")
            else:
                violations.append(f"{label}: never delivered and no "
                                  f"typed error (sender: {s_out})")
        start = span["start"] if span["start"] is not None else 0.0
        end = span["end"] if span["end"] is not None else sim.now
        elapsed = max(end - start, 1e-12)
        return CellResult(
            os_config=os_config, rate=rate, messages=len(msgs),
            delivered=delivered, failed_typed=failed,
            goodput=delivered_bytes / elapsed,
            counters=dict(machine.tracer.counters),
            violations=violations)
    finally:
        enable_fault_injection(None)


def _cell_job(job: Tuple[OSConfig, float, int]) -> CellResult:
    """Top-level (picklable) shard form of :func:`_run_cell`."""
    os_config, rate, n_messages = job
    return _run_cell(os_config, rate, n_messages)


def run_chaos(workload: str = "pingpong", smoke: bool = False,
              rates: Optional[Sequence[float]] = None,
              configs: Sequence[OSConfig] = ALL_CONFIGS,
              n_messages: Optional[int] = None,
              workers: int = 1) -> ChaosResult:
    """Run the fault-rate sweep over every requested OS configuration.

    ``workers > 1`` fans the (config, rate) cells across processes via
    the PicoTune shard runner; every cell seeds its own machine, so the
    merged result is bit-identical to the serial sweep.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown chaos workload {workload!r}; choose "
                         f"from {', '.join(WORKLOADS)}")
    if rates is None:
        rates = SMOKE_RATES if smoke else DEFAULT_RATES
    if n_messages is None:
        n_messages = 9 if smoke else 24
    from ..tune.runner import map_shards
    cells = map_shards(_cell_job,
                       [(os_config, rate, n_messages)
                        for os_config in configs for rate in rates],
                       workers=workers)
    return ChaosResult(workload=workload, cells=cells)


# -- the flap campaign: sustained faults + recovery under PicoGuard ---------

#: guard policy of the flap campaign: aggressive enough that a burst of
#: SDMA faults visibly opens per-engine breakers within a few dozen
#: messages, with quick probe turnaround so the recovery phase shows
#: failback rather than a still-degraded tail
FLAP_POLICY_KW = dict(failure_window=6, failure_threshold=2,
                      probe_successes=2, probe_backoff=100 * USEC,
                      probe_backoff_factor=2.0,
                      probe_backoff_max=2_000 * USEC,
                      qdepth=32, nr_congestion_on=24, nr_congestion_off=8)

#: the burst segment's fault mix: heavy SDMA descriptor errors and
#: spontaneous halts (the events that feed the per-engine breakers)
#: plus a trickle of fabric drops so the PSM reliability layer stays hot
FLAP_BURST_PLAN = FaultPlan(sdma_desc_error=0.08, sdma_engine_halt=0.08,
                            fabric_drop=0.01)

#: message counts per campaign phase: a no-fault baseline, the fault
#: burst, the recovery segment (faults off again), and a final segment
#: run across a suspend/resume drill on the sender's device
FLAP_PHASES = (("baseline", 18), ("burst", 18), ("recovery", 18),
               ("drill", 9))
FLAP_SMOKE_PHASES = (("baseline", 6), ("burst", 6), ("recovery", 9),
                     ("drill", 3))

#: how long the drill holds the sender's device suspended (well under
#: the PSM watchdogs' total retry budget, so parked traffic replays
#: instead of timing out)
FLAP_SUSPEND_HOLD = 300 * USEC

#: post-burst settle time before the recovery phase starts measuring:
#: long enough for every opened breaker's probe timer to elapse (twice
#: the backoff cap), so recovery goodput measures the re-admitted fast
#: path rather than the tail of the probe backoff
FLAP_SETTLE = 2 * FLAP_POLICY_KW["probe_backoff_max"]

#: acceptance bar: recovery-phase goodput as a fraction of the no-fault
#: baseline phase
FLAP_RECOVERY_BAR = 0.9


@dataclass
class FlapPhase:
    """Per-phase outcome of the flap campaign."""

    name: str
    messages: int
    delivered: int
    failed_typed: int
    elapsed: float
    goodput: float                     # bytes/second of intact delivery


@dataclass
class FlapResult:
    """The flap campaign: per-phase goodput plus guard accounting."""

    phases: List[FlapPhase]
    counters: Dict[str, int]
    snapshots: List[Dict[str, object]]  # final guard snapshot per node
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when integrity, FSM legality and the recovery bar held."""
        return not self.violations

    def phase(self, name: str) -> FlapPhase:
        """The named campaign phase."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def recovery_ratio(self) -> float:
        """Recovery-phase goodput over the no-fault baseline phase."""
        base = self.phase("baseline").goodput
        return self.phase("recovery").goodput / base if base > 0 else 0.0

    def render(self) -> str:
        """Human-readable flap report."""
        lines = ["Flap campaign: sustained SDMA fault burst under "
                 "PicoGuard (McKernel+HFI1)",
                 f"  burst plan: {FLAP_BURST_PLAN.describe()}",
                 "", "phase      messages  delivered  typed-fail  "
                 "elapsed ms  goodput MB/s"]
        for p in self.phases:
            lines.append(
                f"{p.name:<10} {p.messages:>8}  {p.delivered:>9}  "
                f"{p.failed_typed:>10}  {p.elapsed * 1e3:>10.2f}  "
                f"{p.goodput / 1e6:>12.1f}")
        lines.append("")
        lines.append(f"recovery ratio: {self.recovery_ratio:.2f} "
                     f"(bar: {FLAP_RECOVERY_BAR:.2f})")
        per_engine = {k: v for k, v in sorted(self.counters.items())
                      if k.startswith(("guard.failover.",
                                       "guard.failback.",
                                       "pico.fallback.engine"))}
        lines.append(
            f"guard: {self.counters.get('guard.failovers', 0)} failovers, "
            f"{self.counters.get('guard.failbacks', 0)} failbacks, "
            f"{self.counters.get('guard.routed_offload', 0)} routed to "
            f"offload at dispatch, "
            f"{self.counters.get('guard.congestion_waits', 0)} congestion "
            f"waits, {self.counters.get('guard.suspends', 0)} suspends / "
            f"{self.counters.get('guard.resumes', 0)} resumes "
            f"({self.counters.get('guard.parked', 0)} parked)")
        for name, value in per_engine.items():
            lines.append(f"  {name} = {value}")
        lines.append("")
        if self.violations:
            lines.append(f"FLAP VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("flap verdict: every message intact or typed, "
                         "breaker FSM legal, goodput recovered")
        return "\n".join(lines)


def run_flap(smoke: bool = False,
             phases: Optional[Sequence[Tuple[str, int]]] = None) -> FlapResult:
    """Run the sustained-fault flap campaign on McKernel+HFI1.

    Four phases over one live machine: a no-fault **baseline**, a
    **burst** during which the shared injector's plan is swapped for
    :data:`FLAP_BURST_PLAN` (per-engine breakers open and traffic
    reroutes), a **recovery** segment with faults off again (probes
    re-admit the engines; goodput must return to
    ``FLAP_RECOVERY_BAR x`` baseline), and a **drill** segment run
    while the sender's device is suspended and resumed under the live
    message stream (parked requests must replay in order).
    """
    from ..guard import GuardPolicy
    if phases is None:
        phases = FLAP_SMOKE_PHASES if smoke else FLAP_PHASES
    zero_plan = FaultPlan.uniform(0.0)
    enable_fault_injection(zero_plan)
    enable_guard(GuardPolicy(**FLAP_POLICY_KW))
    try:
        machine = build_machine(2, OSConfig.MCKERNEL_HFI,
                                params=_chaos_params())
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        msgs: List[Tuple[str, int, int]] = []
        for phase_name, count in phases:
            for _ in range(count):
                i = len(msgs)
                msgs.append((phase_name, i,
                             MESSAGE_SIZES[i % len(MESSAGE_SIZES)]))
        bufsize = 2 * max(MESSAGE_SIZES)
        send_out: Dict[int, str] = {}
        send_done: Dict[int, float] = {}
        recv_reqs: Dict[int, object] = {}
        phase_spans: Dict[str, List[float]] = {}
        drill_start = Event(sim)
        guard0 = machine.nodes[0].guard

        def drill():
            # suspend the sender's device under live traffic, hold it
            # quiescent, then resume and let the parked queue replay
            yield drill_start
            yield from guard0.suspend()
            yield sim.timeout(FLAP_SUSPEND_HOLD)
            guard0.resume()

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            current = None
            for phase_name, i, size in msgs:
                if phase_name != current:
                    if current is not None:
                        phase_spans[current].append(sim.now)
                    if phase_name == "burst":
                        machine.injector.plan = FLAP_BURST_PLAN
                    elif phase_name != "baseline":
                        machine.injector.plan = zero_plan
                    if phase_name == "recovery":
                        # faults are off; idle across the probe backoff
                        # cap so the measurement starts with breakers in
                        # PROBING, ready to fail back on first traffic
                        yield sim.timeout(FLAP_SETTLE)
                    if phase_name == "drill":
                        drill_start.succeed()
                    current = phase_name
                    phase_spans[current] = [sim.now]
                try:
                    yield from ep0.mq_send(ep1.addr, ("flap", i), buf,
                                           size, payload=("tok", i, size))
                    send_out[i] = "ok"
                except (DeviceTimeout, TransferCorrupt) as exc:
                    send_out[i] = type(exc).__name__
                send_done[i] = sim.now
            phase_spans[current].append(sim.now)

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for _phase, i, _size in msgs:
                recv_reqs[i] = ep1.mq_irecv(
                    TagMatcher(tag=("flap", i)), (buf, bufsize))

        sim.process(receiver())
        sim.process(sender())
        sim.process(drill())
        sim.run()

        violations: List[str] = []
        typed = ("DeviceTimeout", "TransferCorrupt")
        by_phase: Dict[str, List[int]] = {}
        delivered_bytes: Dict[str, int] = {}
        results: List[FlapPhase] = []
        for phase_name, i, size in msgs:
            stats = by_phase.setdefault(phase_name, [0, 0, 0])
            label = f"flap msg {i} ({phase_name}, {size}B)"
            req = recv_reqs.get(i)
            s_out = send_out.get(i, "hung")
            if req is not None and req.event.triggered \
                    and req.event.exception is None:
                if req.payload == ("tok", i, size) and req.nbytes == size:
                    stats[0] += 1
                    delivered_bytes[phase_name] = \
                        delivered_bytes.get(phase_name, 0) + size
                else:
                    violations.append(
                        f"{label}: delivered corrupt "
                        f"(payload={req.payload!r}, nbytes={req.nbytes})")
                continue
            r_exc = (req.event.exception
                     if req is not None and req.event.triggered else None)
            if (r_exc is not None and type(r_exc).__name__ in typed) \
                    or s_out in typed:
                stats[1] += 1
                continue
            violations.append(f"{label}: never delivered and no typed "
                              f"error (sender: {s_out}, recv: {r_exc!r})")
        for phase_name, count in phases:
            span = phase_spans.get(phase_name, [0.0, 0.0])
            elapsed = max(span[-1] - span[0], 1e-12)
            stats = by_phase.get(phase_name, [0, 0, 0])
            results.append(FlapPhase(
                name=phase_name, messages=count, delivered=stats[0],
                failed_typed=stats[1], elapsed=elapsed,
                goodput=delivered_bytes.get(phase_name, 0) / elapsed))
        snapshots = [mn.guard.snapshot() for mn in machine.nodes
                     if mn.guard is not None]
        result = FlapResult(phases=results,
                            counters=dict(machine.tracer.counters),
                            snapshots=snapshots, violations=violations)
        # campaign-level oracles beyond per-message integrity
        for mn in machine.nodes:
            if mn.guard is None:
                continue
            violations.extend(mn.guard.fsm_violations())
            violations.extend(mn.guard.violations)
        for phase_name in ("baseline", "drill"):
            stats = by_phase.get(phase_name, [0, 0, 0])
            if stats[1]:
                violations.append(
                    f"{phase_name} phase saw {stats[1]} typed failures "
                    f"with no faults injected")
        if result.recovery_ratio < FLAP_RECOVERY_BAR:
            violations.append(
                f"goodput did not recover: recovery phase ran at "
                f"{result.recovery_ratio:.2f}x the no-fault baseline "
                f"(bar {FLAP_RECOVERY_BAR:.2f})")
        if result.counters.get("guard.failovers", 0) == 0:
            violations.append("burst produced no failovers — the "
                              "campaign did not exercise the breaker")
        if result.counters.get("guard.failbacks", 0) == 0:
            violations.append("no failbacks — probes never re-admitted "
                              "a path after the burst")
        if result.counters.get("guard.parked", 0) == 0:
            violations.append("drill parked no requests — suspend never "
                              "overlapped live traffic")
        return result
    finally:
        enable_guard(None)
        enable_fault_injection(None)


def _run_storage(smoke: bool = False, **kw):
    """Deferred import of the storage campaign (keeps the chaos module
    light for runs that never touch the block device)."""
    from .storage import run_storage
    return run_storage(smoke=smoke, **kw)


#: chaos workloads (the sweep harness is workload-shaped for growth;
#: ping-pong style send/recv is the one the paper's figures build on,
#: ``flap`` is the PicoGuard sustained-fault/recovery campaign, and
#: ``storage`` is the PicoBlock replicated-write sweep + drill)
WORKLOADS = {"pingpong": run_chaos, "flap": run_flap,
             "storage": _run_storage}


def cmd_chaos(argv: List[str]) -> int:
    """Entry point for ``python -m repro chaos [workload] [--smoke]
    [--flap] [--storage] [--workers N]``."""
    argv = list(argv)
    smoke = "--smoke" in argv
    flap = "--flap" in argv
    storage = "--storage" in argv
    workers = 1
    if "--workers" in argv:
        i = argv.index("--workers")
        if i + 1 >= len(argv) or not argv[i + 1].isdigit():
            print("--workers needs an integer value")
            return 2
        workers = int(argv[i + 1])
        del argv[i:i + 2]
    rest = [a for a in argv if a not in ("--smoke", "--flap", "--storage")]
    unknown = [a for a in rest if a.startswith("-")]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n"
              "usage: python -m repro chaos [workload] [--smoke] [--flap] "
              "[--storage] [--workers N]")
        return 2
    workload = rest[0] if rest else (
        "flap" if flap else ("storage" if storage else "pingpong"))
    if workload not in WORKLOADS:
        print(f"unknown chaos workload {workload!r}; choose from "
              f"{', '.join(WORKLOADS)}")
        return 2
    if workload == "flap" or flap:
        result = run_flap(smoke=smoke)
    elif workload == "storage" or storage:
        result = _run_storage(smoke=smoke)
    else:
        result = run_chaos(workload, smoke=smoke, workers=workers)
    print(result.render())
    return 1 if result.violations else 0
