"""``python -m repro chaos`` — the fault-injection sweep.

For every OS configuration the paper evaluates, run a two-node message
workload under increasing uniform fault rates and check the end-to-end
contract of the recovery machinery: **every message is either delivered
byte-intact or surfaces a typed error** (:class:`DeviceTimeout` /
:class:`TransferCorrupt`) — nothing is silently lost or silently
corrupted.  Alongside the integrity verdict the sweep reports the
goodput degradation curve and the recovery counters (PicoDriver
fast→slow fallbacks, SDMA halts, PSM retransmits), which is how the
reproduction demonstrates the paper's central fast/slow split under
adversity rather than only on a perfect device.

The machine uses a 2-engine SDMA pool so that engine halts land on
in-use engines often enough to observe fallbacks at modest message
counts; all fault decisions come from dedicated seeded RNG streams, so
every cell of the sweep is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ALL_CONFIGS, OSConfig, enable_fault_injection
from ..errors import DeviceTimeout, TransferCorrupt
from ..faults import FaultPlan
from ..params import default_params
from ..psm import Endpoint, TagMatcher
from ..units import KiB, MiB
from .common import build_machine

#: one of each protocol regime: eager PIO, eager SDMA, rendezvous (4
#: windows at the default 256KB window size)
MESSAGE_SIZES = (4 * KiB, 96 * KiB, 1 * MiB)

#: uniform per-opportunity fault rates swept by the full run
DEFAULT_RATES = (0.0, 0.002, 0.005, 0.01)

#: trimmed sweep for CI (--smoke)
SMOKE_RATES = (0.0, 0.01)


@dataclass
class CellResult:
    """Outcome of one (OS config, fault rate) cell."""

    os_config: OSConfig
    rate: float
    messages: int
    delivered: int
    failed_typed: int
    goodput: float                     # bytes/second of intact delivery
    counters: Dict[str, int]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every message was delivered intact or typed-failed."""
        return not self.violations


@dataclass
class ChaosResult:
    """The full sweep: cells plus a render method."""

    workload: str
    cells: List[CellResult]

    @property
    def violations(self) -> List[str]:
        """All integrity violations across the sweep."""
        return [v for cell in self.cells for v in cell.violations]

    def render(self) -> str:
        """Human-readable sweep table plus the integrity verdict."""
        lines = [f"Chaos sweep: {self.workload} "
                 f"({self.cells[0].messages if self.cells else 0} messages"
                 f" per cell)",
                 "", "config          rate     delivered  typed-fail  "
                 "goodput MB/s  fallbacks  halts  retransmits"]
        for c in self.cells:
            lines.append(
                f"{c.os_config.label:<15} {c.rate:<8g} "
                f"{c.delivered:>3}/{c.messages:<5}  {c.failed_typed:>10}  "
                f"{c.goodput / 1e6:>12.1f}  "
                f"{c.counters.get('pico.fallbacks', 0):>9}  "
                f"{c.counters.get('hfi.sdma_halts', 0):>5}  "
                f"{c.counters.get('psm.retransmits', 0):>11}")
        lines.append("")
        if self.violations:
            lines.append(f"INTEGRITY VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("data integrity: every message delivered intact "
                         "or failed with a typed error")
        return "\n".join(lines)


def _chaos_params():
    params = default_params()
    return params.with_overrides(
        nic=replace(params.nic, sdma_engines=2))


def _run_cell(os_config: OSConfig, rate: float,
              n_messages: int) -> CellResult:
    """Run one (config, rate) cell of the ping-pong-style workload."""
    # A zero-rate *plan* (rather than no plan) keeps the reliability
    # protocol active, so the rate-0 row is the protocol-overhead
    # baseline and the curve isolates the cost of the faults themselves.
    enable_fault_injection(FaultPlan.uniform(rate))
    try:
        machine = build_machine(2, os_config, params=_chaos_params())
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        msgs: List[Tuple[int, int]] = [
            (i, MESSAGE_SIZES[i % len(MESSAGE_SIZES)])
            for i in range(n_messages)]
        bufsize = 2 * max(MESSAGE_SIZES)
        send_out: Dict[int, str] = {}
        recv_reqs: Dict[int, object] = {}
        span: Dict[str, Optional[float]] = {"start": None, "end": None}

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            span["start"] = sim.now
            for i, size in msgs:
                try:
                    yield from ep0.mq_send(ep1.addr, ("chaos", i), buf,
                                           size, payload=("tok", i, size))
                    send_out[i] = "ok"
                except (DeviceTimeout, TransferCorrupt) as exc:
                    send_out[i] = type(exc).__name__
            span["end"] = sim.now

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for i, _size in msgs:
                recv_reqs[i] = ep1.mq_irecv(
                    TagMatcher(tag=("chaos", i)), (buf, bufsize))

        sim.process(receiver())
        sim.process(sender())
        # Drain completely: bounded watchdogs mean the simulation always
        # quiesces, even for messages that end in a typed failure.
        sim.run()

        delivered = failed = 0
        delivered_bytes = 0
        violations: List[str] = []
        typed = ("DeviceTimeout", "TransferCorrupt")
        for i, size in msgs:
            req = recv_reqs.get(i)
            s_out = send_out.get(i, "hung")
            label = f"{os_config.label} rate={rate:g} msg {i} ({size}B)"
            if req is not None and req.event.triggered \
                    and req.event.exception is None:
                if req.payload == ("tok", i, size) and req.nbytes == size:
                    delivered += 1
                    delivered_bytes += size
                else:
                    violations.append(
                        f"{label}: delivered corrupt "
                        f"(payload={req.payload!r}, nbytes={req.nbytes})")
                continue
            r_exc = (req.event.exception
                     if req is not None and req.event.triggered else None)
            if (r_exc is not None and type(r_exc).__name__ in typed) \
                    or s_out in typed:
                failed += 1
                continue
            if r_exc is not None:
                violations.append(f"{label}: untyped receive error "
                                  f"{r_exc!r}")
            else:
                violations.append(f"{label}: never delivered and no "
                                  f"typed error (sender: {s_out})")
        start = span["start"] if span["start"] is not None else 0.0
        end = span["end"] if span["end"] is not None else sim.now
        elapsed = max(end - start, 1e-12)
        return CellResult(
            os_config=os_config, rate=rate, messages=len(msgs),
            delivered=delivered, failed_typed=failed,
            goodput=delivered_bytes / elapsed,
            counters=dict(machine.tracer.counters),
            violations=violations)
    finally:
        enable_fault_injection(None)


def run_chaos(workload: str = "pingpong", smoke: bool = False,
              rates: Optional[Sequence[float]] = None,
              configs: Sequence[OSConfig] = ALL_CONFIGS,
              n_messages: Optional[int] = None) -> ChaosResult:
    """Run the fault-rate sweep over every requested OS configuration."""
    if workload not in WORKLOADS:
        raise ValueError(f"unknown chaos workload {workload!r}; choose "
                         f"from {', '.join(WORKLOADS)}")
    if rates is None:
        rates = SMOKE_RATES if smoke else DEFAULT_RATES
    if n_messages is None:
        n_messages = 9 if smoke else 24
    cells = [_run_cell(os_config, rate, n_messages)
             for os_config in configs for rate in rates]
    return ChaosResult(workload=workload, cells=cells)


#: chaos workloads (the sweep harness is workload-shaped for growth;
#: ping-pong style send/recv is the one the paper's figures build on)
WORKLOADS = {"pingpong": run_chaos}


def cmd_chaos(argv: List[str]) -> int:
    """Entry point for ``python -m repro chaos [workload] [--smoke]``."""
    smoke = "--smoke" in argv
    rest = [a for a in argv if a != "--smoke"]
    unknown = [a for a in rest if a.startswith("-")]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n"
              "usage: python -m repro chaos [workload] [--smoke]")
        return 2
    workload = rest[0] if rest else "pingpong"
    if workload not in WORKLOADS:
        print(f"unknown chaos workload {workload!r}; choose from "
              f"{', '.join(WORKLOADS)}")
        return 2
    result = run_chaos(workload, smoke=smoke)
    print(result.render())
    return 1 if result.violations else 0
