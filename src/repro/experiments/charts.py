"""Plain-text charts for terminal output.

The paper's figures are line/bar charts; these helpers render comparable
ASCII views so ``python -m repro figN`` output resembles the original
shape at a glance (series over a log-ish x axis, one glyph per
configuration).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: per-series glyphs (Linux, McKernel, McKernel+HFI order by convention)
GLYPHS = ("L", "m", "H", "*", "+")


def ascii_chart(x_labels: Sequence[str],
                series: Dict[str, List[float]],
                height: int = 12,
                y_label: str = "",
                y_max: Optional[float] = None,
                y_min: float = 0.0) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    ``series`` maps a name to one value per ``x_labels`` entry.  Values
    may be ``None`` (not run at that x).
    """
    names = list(series)
    all_vals = [v for vals in series.values() for v in vals if v is not None]
    if not all_vals:
        return "(no data)"
    top = y_max if y_max is not None else max(all_vals) * 1.05
    bottom = y_min
    span = top - bottom or 1.0
    width = len(x_labels)
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        glyph = GLYPHS[si % len(GLYPHS)]
        for xi, value in enumerate(series[name]):
            if value is None:
                continue
            level = int(round((min(max(value, bottom), top) - bottom)
                              / span * (height - 1)))
            row = height - 1 - level
            cell = grid[row][xi]
            grid[row][xi] = "#" if cell not in (" ", glyph) else glyph
    lines = []
    for row in range(height):
        value_at = top - row * span / (height - 1)
        axis = f"{value_at:8.1f} |"
        lines.append(axis + "  ".join(grid[row]))
    lines.append(" " * 9 + "-" * (3 * width - 2))
    label_row = " " * 9
    for label in x_labels:
        label_row += f"{label:<3.3s}"
    lines.append(label_row)
    legend = "   ".join(f"{GLYPHS[i % len(GLYPHS)]}={name}"
                        for i, name in enumerate(names))
    header = (y_label + "\n") if y_label else ""
    return header + "\n".join(lines) + "\n" + legend
