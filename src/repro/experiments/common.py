"""Machine builder: assemble simulated nodes in each OS configuration.

* ``LINUX`` — ranks run on Linux application cores (nohz_full noise
  profile), syscalls are native, the HFI1 driver is local.
* ``MCKERNEL`` — IHK boots McKernel on the application cores (original
  address-space layout); every device syscall offloads through IKC to the
  few Linux OS cores.
* ``MCKERNEL_HFI`` — as above, but the address spaces are unified and the
  HFI PicoDriver is registered, so SDMA sends and TID registration run
  locally on LWK cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import ANALYSIS, FAULTS, GUARD, TRACE, TUNE, OSConfig
from ..core.hfi_pico import HFIPicoDriver
from ..errors import ReproError
from ..hw.fabric import Fabric
from ..hw.node import Node
from ..ihk.manager import IhkManager
from ..kernels.base import Task
from ..linux.hfi1.debuginfo import CURRENT_VERSION
from ..linux.hfi1.driver import Hfi1Driver
from ..linux.kernel import LinuxKernel
from ..params import Params, default_params
from ..sim import RngFactory, Simulator, Tracer


@dataclass
class MachineNode:
    """One assembled node: hardware + kernels + drivers."""

    node: Node
    linux: LinuxKernel
    driver: Hfi1Driver
    ihk: Optional[IhkManager] = None
    mckernel: Optional[object] = None
    pico: Optional[HFIPicoDriver] = None
    ranks: List[Task] = field(default_factory=list)
    #: per-device :class:`repro.guard.GuardManager`, when
    #: ``repro.config.GUARD`` carries a policy (guarded runs)
    guard: Optional[object] = None
    #: the pxd replicated block-device stack, when
    #: ``params.blk.replicas > 0`` (storage runs; absent by default)
    pxd: Optional[object] = None
    pxd_pico: Optional[object] = None
    pxd_guard: Optional[object] = None


class Machine:
    """A cluster of nodes under one OS configuration."""

    def __init__(self, params: Params, n_nodes: int, os_config: OSConfig,
                 driver_version: str = CURRENT_VERSION):
        if n_nodes < 1:
            raise ReproError("machine needs at least one node")
        self.params = params
        self.os_config = os_config
        self.sim = Simulator()
        self.tracer = Tracer()
        self.rng = RngFactory(params.seed)
        self.fabric = Fabric(self.sim, params.nic)
        #: fault injector shared by the fabric and every HFI, when
        #: ``repro.config.FAULTS`` carries a plan (chaos runs)
        self.injector = None
        if FAULTS.enabled and FAULTS.plan is not None:
            from ..faults import FaultInjector
            self.injector = FaultInjector(FAULTS.plan,
                                          self.rng.spawn("faults"),
                                          self.tracer)
            self.fabric.injector = self.injector
        #: KSan race detectors, one per node heap, when
        #: ``repro.config.ANALYSIS.race_detection`` is on
        self.sanitizers: List[object] = []
        #: lockdep validator, one per machine (the lock-class dependency
        #: graph spans nodes), when ``ANALYSIS.lockdep`` is on
        self.lockdep = None
        if ANALYSIS.lockdep:
            from ..analysis.lockdep import LockdepValidator
            self.lockdep = LockdepValidator(self.sim, name="machine.lockdep")
            self.sim.wait_monitor = self.lockdep
        self.nodes: List[MachineNode] = []
        for i in range(n_nodes):
            self.nodes.append(self._build_node(i, driver_version))
        #: when ``repro.config.TRACE`` carries a collector (traced runs),
        #: stamp trace tracks onto the kernels/devices and point the
        #: collector at this machine's clock
        if TRACE.enabled:
            TRACE.collector.attach_machine(self)
        #: when ``repro.config.TUNE`` carries a probe (PicoTune
        #: evaluations), let it observe the fully-built machine
        if TUNE.enabled and TUNE.probe is not None:
            TUNE.probe.on_machine_built(self)

    def race_reports(self):
        """All cross-kernel races found by this machine's detectors."""
        return [report for det in self.sanitizers for report in det.races]

    def lockdep_reports(self):
        """All lock-order hazards found by this machine's validator."""
        return [] if self.lockdep is None else list(self.lockdep.reports)

    def _build_node(self, node_id: int, driver_version: str) -> MachineNode:
        node = Node(self.sim, self.params, node_id, tracer=self.tracer)
        if ANALYSIS.race_detection:
            from ..analysis.ksan import RaceDetector
            detector = RaceDetector(self.sim, name=f"node{node_id}.kheap")
            node.kheap.monitor = detector
            self.sanitizers.append(detector)
        if self.lockdep is not None:
            node.kheap.add_monitor(self.lockdep)
        self.fabric.attach(node.hfi)
        node.hfi.injector = self.injector
        linux = LinuxKernel(
            self.sim, self.params, node, self.rng,
            noisy_app_cores=self.os_config.noisy_app_cores,
            tracer=self.tracer if self.os_config is OSConfig.LINUX
            else Tracer())
        driver = Hfi1Driver(version=driver_version)
        linux.load_driver(driver)
        mnode = MachineNode(node=node, linux=linux, driver=driver)
        if GUARD.enabled and GUARD.policy is not None:
            from ..guard import GuardManager
            manager = GuardManager(self.sim, GUARD.policy,
                                   len(node.hfi.engines),
                                   tracer=self.tracer,
                                   label=f"node{node_id}")
            driver.guard = manager
            for eng, gate in zip(node.hfi.engines, manager.gates):
                eng.gate = gate
            mnode.guard = manager
        if self.params.blk.replicas > 0:
            from ..hw.blockdev import BlockDevice
            from ..linux.pxd import PxdDriver
            node.blockdev = BlockDevice(self.sim, self.params.blk, node_id,
                                        tracer=self.tracer)
            node.blockdev.injector = self.injector
            pxd = PxdDriver()
            linux.load_driver(pxd)
            mnode.pxd = pxd
            if GUARD.enabled and GUARD.policy is not None:
                from ..guard import GuardManager
                pxd_guard = GuardManager(self.sim, GUARD.policy,
                                         self.params.blk.replicas,
                                         tracer=self.tracer,
                                         label=f"node{node_id}.pxd",
                                         path_prefix="replica",
                                         data_syscalls=("writev",))
                pxd.guard = pxd_guard
                mnode.pxd_guard = pxd_guard
        if self.os_config.is_multikernel:
            mnode.ihk = IhkManager(self.sim, self.params, node, linux)
            mnode.mckernel = mnode.ihk.boot_mckernel(
                n_cores=self.params.node.app_cores,
                unified_address_space=self.os_config.has_picodriver)
            # the LWK's syscall accounting is the paper's kernel profiler
            mnode.mckernel.tracer = self.tracer
            if self.os_config.has_picodriver:
                mnode.pico = HFIPicoDriver(driver)
                mnode.mckernel.register_picodriver(mnode.pico)
                if mnode.pxd is not None:
                    from ..core.pxd_pico import PxdPicoDriver
                    mnode.pxd_pico = PxdPicoDriver(mnode.pxd)
                    mnode.mckernel.register_picodriver(mnode.pxd_pico)
        return mnode

    # -- rank placement --------------------------------------------------------

    def app_kernel(self, node_idx: int):
        """The kernel application ranks run on for this configuration."""
        mnode = self.nodes[node_idx]
        return mnode.mckernel if self.os_config.is_multikernel else mnode.linux

    def spawn_rank(self, node_idx: int, local_rank: int,
                   global_rank: Optional[int] = None) -> Task:
        """Create one application rank pinned to its own core."""
        mnode = self.nodes[node_idx]
        name = f"rank{global_rank if global_rank is not None else local_rank}"
        rng = self.rng.stream("rank", node_idx, local_rank)
        if self.os_config.is_multikernel:
            core = mnode.mckernel.partition.cores[
                local_rank % len(mnode.mckernel.partition.cores)].core_id
            task = mnode.mckernel.spawn_process(name, core_id=core, rng=rng)
        else:
            app_cores = [c for c in mnode.node.cpus
                         if c.core_id >= self.params.node.os_cores]
            core = app_cores[local_rank % len(app_cores)].core_id
            task = mnode.linux.spawn_task(name, core, rng)
        mnode.ranks.append(task)
        return task


def build_machine(n_nodes: int, os_config: OSConfig,
                  params: Optional[Params] = None,
                  driver_version: str = CURRENT_VERSION) -> Machine:
    """Convenience constructor with default calibration."""
    return Machine(params if params is not None else default_params(),
                   n_nodes, os_config, driver_version)
