"""Offload-contention study (paper section 4.3, measured on the DES).

The paper's key observation: "simultaneous interaction with the device
driver via system call offloading is ... affected by the fact that there
are substantially lower number of Linux CPUs than the number of MPI
ranks.  This further amplifies the cost of these calls because it
introduces high contention on a few Linux CPUs for driver processing."

This experiment reproduces that amplification on the *detailed*
simulator: N McKernel ranks on one node issue TID-registration ioctls
simultaneously; we report the mean caller-visible latency per call and
compare it with the macro model's closed form (queue depth x service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster.model import CommCostModel
from ..config import OSConfig
from ..linux.hfi1 import ioctls as ioc
from ..params import Params, default_params
from ..units import KiB, fmt_time
from .common import build_machine

DEFAULT_RANK_COUNTS = (1, 2, 4, 8, 16, 32)
CALLS_PER_RANK = 4
REGION = 64 * KiB


@dataclass
class ContentionResult:
    """Measured (DES) and predicted (macro) offload latency per call."""

    rank_counts: Tuple[int, ...]
    measured: Dict[int, float]      # mean visible seconds per ioctl
    predicted: Dict[int, float]

    def amplification(self, n: int) -> float:
        """Latency at ``n`` ranks relative to the uncontended case."""
        return self.measured[n] / self.measured[self.rank_counts[0]]

    def render(self) -> str:
        """Plain-text table of measured vs predicted latencies."""
        lines = ["Offloaded TID_UPDATE latency vs concurrent ranks "
                 "(one node, 4 Linux CPUs)",
                 f"{'ranks':>6s} {'measured':>10s} {'amplif.':>8s} "
                 f"{'macro model':>12s}"]
        for n in self.rank_counts:
            lines.append(f"{n:6d} {fmt_time(self.measured[n]):>10s} "
                         f"{self.amplification(n):7.1f}x "
                         f"{fmt_time(self.predicted[n]):>12s}")
        return "\n".join(lines)


def measure_offload_latency(n_ranks: int,
                            params: Optional[Params] = None) -> float:
    """Mean caller-visible TID_UPDATE latency with ``n_ranks`` issuing
    concurrently on one McKernel node (detailed DES)."""
    params = params if params is not None else default_params()
    machine = build_machine(1, OSConfig.MCKERNEL, params=params)
    sim = machine.sim
    latencies: List[float] = []

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", REGION * CALLS_PER_RANK)
        # synchronize all ranks to issue together (the halo-phase shape)
        yield sim.timeout(1e-3 - sim.now % 1e-3)
        for c in range(CALLS_PER_RANK):
            t0 = sim.now
            tids = yield from task.syscall(
                "ioctl", fd, ioc.HFI1_IOCTL_TID_UPDATE,
                {"vaddr": buf + c * REGION, "length": REGION})
            latencies.append(sim.now - t0)
            yield from task.syscall("ioctl", fd, ioc.HFI1_IOCTL_TID_FREE,
                                    {"tids": tids})

    procs = [sim.process(body(machine.spawn_rank(0, i)))
             for i in range(n_ranks)]
    sim.run()
    for p in procs:
        assert p.ok, p.exception
    return sum(latencies) / len(latencies)


def predict_offload_latency(n_ranks: int,
                            params: Optional[Params] = None) -> float:
    """The macro model's closed form for the same situation."""
    params = params if params is not None else default_params()
    model = CommCostModel(params, OSConfig.MCKERNEL)
    depth = max(1.0, n_ranks / params.node.os_cores)
    # the rank alternates TID_UPDATE and TID_FREE; average the pair
    up, _ = model.driver_call(model.tid_update_handler(REGION), True, depth)
    fr, _ = model.driver_call(model.tid_free_handler(REGION), True, depth)
    return (up + fr) / 2


def run_contention(rank_counts=DEFAULT_RANK_COUNTS,
                   params: Optional[Params] = None,
                   workers: int = 1) -> ContentionResult:
    """Measure (DES) and predict (macro) offload latency per rank count.

    ``workers > 1`` fans the per-rank-count DES measurements across
    processes via the PicoTune shard runner (each builds its own
    machine, so merged results are bit-identical to the serial run).
    """
    from functools import partial

    from ..tune.runner import map_shards
    values = map_shards(partial(measure_offload_latency, params=params),
                        list(rank_counts), workers=workers)
    measured = dict(zip(rank_counts, values))
    predicted = {n: predict_offload_latency(n, params)
                 for n in rank_counts}
    return ContentionResult(rank_counts=tuple(rank_counts),
                            measured=measured, predicted=predicted)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print the contention study."""
    print(run_contention().render())


if __name__ == "__main__":  # pragma: no cover
    main()
