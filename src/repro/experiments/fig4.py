"""Figure 4: MPI ping-pong bandwidth (Linux / McKernel / McKernel+HFI).

Runs the IMB-style ping-pong on the *detailed* discrete-event simulator —
full PSM / driver / SDMA / IKC stack — for each OS configuration and
reports one bandwidth series per configuration.

Paper shape to reproduce: all three equal below the 64KB PIO threshold;
McKernel ~90% of Linux above it; McKernel+HFI above Linux, peaking ~+15%
at 4MB (driven by 10KB vs 4KB SDMA descriptors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..apps.imb import PingPong
from ..config import ALL_CONFIGS, OSConfig
from ..params import Params
from ..units import KiB, MiB, fmt_size
from .common import build_machine

#: the sizes we sweep (a subset of IMB's 8B..4MB by default for speed)
DEFAULT_SIZES = (8, 64, 512, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB,
                 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB)


@dataclass
class Fig4Result:
    """Bandwidth series per OS configuration."""

    sizes: Tuple[int, ...]
    #: config -> {size: bytes/second}
    series: Dict[OSConfig, Dict[int, float]]

    def ratio(self, config: OSConfig, size: int) -> float:
        """Bandwidth of ``config`` relative to Linux at ``size``."""
        return (self.series[config][size]
                / self.series[OSConfig.LINUX][size])

    def render(self) -> str:
        """Plain-text Figure 4 table with config ratios."""
        header = (f"{'Message size':>12s} "
                  + " ".join(f"{c.label:>14s}" for c in ALL_CONFIGS)
                  + f" {'McK/Linux':>10s} {'HFI/Linux':>10s}")
        lines = ["Figure 4: MPI Ping-pong bandwidth (MB/s)", header]
        for size in self.sizes:
            row = [self.series[c][size] / 1e6 for c in ALL_CONFIGS]
            lines.append(
                f"{fmt_size(size):>12s} "
                + " ".join(f"{v:14.1f}" for v in row)
                + f" {self.ratio(OSConfig.MCKERNEL, size):10.2f}"
                + f" {self.ratio(OSConfig.MCKERNEL_HFI, size):10.2f}")
        return "\n".join(lines)


def run_fig4(sizes: Sequence[int] = DEFAULT_SIZES,
             repetitions: int = 5,
             params: Optional[Params] = None) -> Fig4Result:
    """Regenerate Figure 4."""
    series: Dict[OSConfig, Dict[int, float]] = {}
    for config in ALL_CONFIGS:
        machine = build_machine(2, config, params=params)
        series[config] = PingPong(machine, repetitions=repetitions).run(sizes)
    return Fig4Result(sizes=tuple(sizes), series=series)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Figure 4."""
    print(run_fig4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
