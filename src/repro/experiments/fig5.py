"""Figure 5: LAMMPS (a) and Nekbone (b) relative performance.

Paper shape: neither app is hurt by the PicoDriver architecture —
LAMMPS tracks Linux closely; Nekbone shows a small McKernel win (noise-
free allreduces) that the HFI driver preserves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps import LAMMPS, NEKBONE
from ..params import Params
from .scaling import DEFAULT_NODE_COUNTS, ScalingResult, run_scaling


def run_fig5a(node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
              params: Optional[Params] = None,
              iterations: Optional[int] = None) -> ScalingResult:
    """Regenerate Figure 5a (LAMMPS weak scaling)."""
    return run_scaling(LAMMPS, node_counts, params, iterations)


def run_fig5b(node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
              params: Optional[Params] = None,
              iterations: Optional[int] = None) -> ScalingResult:
    """Regenerate Figure 5b (Nekbone weak scaling)."""
    return run_scaling(NEKBONE, node_counts, params, iterations)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Figure 5a and 5b."""
    print(run_fig5a().render("Figure 5a: LAMMPS relative performance (%)"))
    print()
    print(run_fig5b().render("Figure 5b: Nekbone relative performance (%)"))


if __name__ == "__main__":  # pragma: no cover
    main()
