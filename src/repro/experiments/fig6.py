"""Figure 6: UMT2013 (a) and HACC (b) relative performance.

These are the workloads that motivated PicoDriver.  Paper shape: parity
on a single node (intra-node shared memory, no driver calls); the
original McKernel collapses on multi-node runs (UMT below ~20-40% of
Linux, HACC to ~70%) under offloaded-driver-call contention; McKernel
with the HFI PicoDriver beats Linux.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps import HACC, UMT2013
from ..params import Params
from .scaling import DEFAULT_NODE_COUNTS, ScalingResult, run_scaling

#: the paper's Figure 6b stops at 128 nodes for HACC
HACC_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def run_fig6a(node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
              params: Optional[Params] = None,
              iterations: Optional[int] = None) -> ScalingResult:
    """Regenerate Figure 6a (UMT2013 weak scaling)."""
    return run_scaling(UMT2013, node_counts, params, iterations)


def run_fig6b(node_counts: Sequence[int] = HACC_NODE_COUNTS,
              params: Optional[Params] = None,
              iterations: Optional[int] = None) -> ScalingResult:
    """Regenerate Figure 6b (HACC weak scaling)."""
    return run_scaling(HACC, node_counts, params, iterations)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Figure 6a and 6b."""
    print(run_fig6a().render("Figure 6a: UMT2013 relative performance (%)"))
    print()
    print(run_fig6b().render("Figure 6b: HACC relative performance (%)"))


if __name__ == "__main__":  # pragma: no cover
    main()
