"""Figure 7: QBOX relative performance.

QBOX only runs on 4+ nodes (input decks, section 4.3).  Paper shape: the
original McKernel is not significantly below Linux; McKernel+HFI shows
substantial speedups growing with scale (paper: up to 30%).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps import QBOX
from ..params import Params
from .scaling import ScalingResult, run_scaling

#: Figure 7's x-axis starts at 4 nodes
QBOX_NODE_COUNTS = (4, 8, 16, 32, 64, 128, 256)


def run_fig7(node_counts: Sequence[int] = QBOX_NODE_COUNTS,
             params: Optional[Params] = None,
             iterations: Optional[int] = None) -> ScalingResult:
    """Regenerate Figure 7 (QBOX weak scaling, 4+ nodes)."""
    return run_scaling(QBOX, node_counts, params, iterations)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Figure 7."""
    print(run_fig7().render("Figure 7: QBOX relative performance (%)"))


if __name__ == "__main__":  # pragma: no cover
    main()
