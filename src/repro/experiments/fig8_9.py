"""Figures 8 and 9: McKernel kernel-level syscall breakdown.

The paper's in-house McKernel profiler (it has no Linux equivalent, so
only the two McKernel configurations are compared) reports where kernel
time goes, per syscall, for UMT2013 (Figure 8) and QBOX (Figure 9) on
8 nodes.

Shapes to reproduce:

* original McKernel, UMT2013: ioctl() + writev() dominate (the offloaded
  expected-receive registration and SDMA sends) — over 70% of kernel time;
* McKernel+HFI, UMT2013: those calls drop to a small share and total
  kernel time collapses to a few percent of the original;
* McKernel+HFI, QBOX: munmap() dominates the remaining kernel time — the
  memory-management future work the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..apps import ALL_APPS
from ..cluster import MacroResult, simulate_app
from ..config import OSConfig
from ..params import Params

#: the seven calls the paper's pie charts list
PROFILED_SYSCALLS = ("read", "open", "mmap", "munmap", "ioctl", "writev",
                     "nanosleep")


@dataclass
class SyscallBreakdown:
    """One pie chart: per-syscall share of kernel time."""

    app: str
    config: OSConfig
    #: syscall -> share of total kernel time (sums to ~1)
    shares: Dict[str, float]
    total_kernel_time: float

    def share(self, name: str) -> float:
        """This syscall's share of kernel time (0 if absent)."""
        return self.shares.get(name, 0.0)

    def dominant(self) -> str:
        """The syscall with the largest share."""
        return max(self.shares, key=self.shares.get)


@dataclass
class Fig89Result:
    """Both McKernel configurations for one application."""

    app: str
    mckernel: SyscallBreakdown
    mckernel_hfi: SyscallBreakdown

    @property
    def kernel_time_ratio(self) -> float:
        """McKernel+HFI kernel time as a fraction of the original's
        (the paper quotes 7% for UMT2013 and 25% for QBOX)."""
        return (self.mckernel_hfi.total_kernel_time
                / self.mckernel.total_kernel_time)

    def render(self, figure: str) -> str:
        """Plain-text breakdown table for both McKernel configs."""
        lines = [f"{figure}: system call breakdown for {self.app} "
                 f"(share of kernel time)",
                 f"{'syscall':>12s} {'McKernel':>10s} {'McKernel+HFI':>13s}"]
        for name in PROFILED_SYSCALLS:
            lines.append(f"{name + '()':>12s} "
                         f"{100 * self.mckernel.share(name):9.1f}% "
                         f"{100 * self.mckernel_hfi.share(name):12.1f}%")
        lines.append(f"McKernel+HFI total kernel time: "
                     f"{100 * self.kernel_time_ratio:.1f}% of the original")
        return "\n".join(lines)


def _breakdown(result: MacroResult) -> SyscallBreakdown:
    return SyscallBreakdown(app=result.app, config=result.config,
                            shares=result.syscall_shares(),
                            total_kernel_time=result.total_kernel_time)


def run_breakdown(app: str, n_nodes: int = 8,
                  params: Optional[Params] = None,
                  iterations: Optional[int] = None) -> Fig89Result:
    """Kernel syscall breakdown for one app on both McKernel configs."""
    spec = ALL_APPS[app]
    results = {}
    for config in (OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI):
        results[config] = simulate_app(spec, n_nodes, config, params=params,
                                       iterations=iterations)
    return Fig89Result(app=app,
                       mckernel=_breakdown(results[OSConfig.MCKERNEL]),
                       mckernel_hfi=_breakdown(
                           results[OSConfig.MCKERNEL_HFI]))


def run_fig8(n_nodes: int = 8, params: Optional[Params] = None,
             iterations: Optional[int] = None) -> Fig89Result:
    """Regenerate Figure 8 (UMT2013 syscall breakdown)."""
    return run_breakdown("UMT2013", n_nodes, params, iterations)


def run_fig9(n_nodes: int = 8, params: Optional[Params] = None,
             iterations: Optional[int] = None) -> Fig89Result:
    """Regenerate Figure 9 (QBOX syscall breakdown)."""
    return run_breakdown("QBOX", n_nodes, params, iterations)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Figures 8 and 9."""
    print(run_fig8().render("Figure 8"))
    print()
    print(run_fig9().render("Figure 9"))


if __name__ == "__main__":  # pragma: no cover
    main()
