"""Generate a markdown report of every reproduced experiment.

``python -m repro report`` regenerates all tables/figures and emits a
self-contained markdown document with the measured values and the shape
checks — the programmatic counterpart of the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import ALL_CONFIGS, OSConfig
from ..params import Params
from ..units import MiB, fmt_size
from .fig4 import run_fig4
from .fig5 import run_fig5a, run_fig5b
from .fig6 import run_fig6a, run_fig6b
from .fig7 import run_fig7
from .fig8_9 import run_fig8, run_fig9
from .scaling import ScalingResult
from .sloc import run_sloc
from .table1 import run_table1


def _check(ok: bool, text: str) -> str:
    return f"- {'✅' if ok else '❌'} {text}"


def _scaling_table(result: ScalingResult) -> List[str]:
    lines = ["| nodes | " + " | ".join(c.label for c in ALL_CONFIGS) + " |",
             "|---|" + "---|" * len(ALL_CONFIGS)]
    for n in result.node_counts:
        lines.append(
            f"| {n} | "
            + " | ".join(f"{100 * result.relative[c][n]:.1f}%"
                         for c in ALL_CONFIGS) + " |")
    return lines


def generate_report(params: Optional[Params] = None,
                    fast: bool = False) -> str:
    """Run everything; returns the markdown report."""
    iters = 3 if fast else None
    out: List[str] = ["# PicoDriver reproduction — measured report", ""]

    # Figure 4 -------------------------------------------------------------
    fig4 = run_fig4(params=params)
    out += ["## Figure 4 — ping-pong bandwidth", "",
            "| size | " + " | ".join(c.label for c in ALL_CONFIGS)
            + " | McK/Linux | HFI/Linux |",
            "|---|" + "---|" * (len(ALL_CONFIGS) + 2)]
    for size in fig4.sizes:
        out.append(
            f"| {fmt_size(size)} | "
            + " | ".join(f"{fig4.series[c][size] / 1e6:.0f}MB/s"
                         for c in ALL_CONFIGS)
            + f" | {fig4.ratio(OSConfig.MCKERNEL, size):.2f}"
            + f" | {fig4.ratio(OSConfig.MCKERNEL_HFI, size):.2f} |")
    hfi_4m = fig4.ratio(OSConfig.MCKERNEL_HFI, 4 * MiB)
    mck_4m = fig4.ratio(OSConfig.MCKERNEL, 4 * MiB)
    out += ["", _check(1.05 < hfi_4m < 1.3,
                       f"HFI beats Linux at 4MB (+{100 * (hfi_4m - 1):.0f}%, "
                       f"paper: up to +15%)"),
            _check(0.8 < mck_4m < 0.97,
                   f"McKernel ~90% of Linux at 4MB ({100 * mck_4m:.0f}%)"),
            ""]

    # Figures 5-7 -----------------------------------------------------------
    for title, result, checks in (
        ("Figure 5a — LAMMPS", run_fig5a(params=params, iterations=iters),
         lambda r: [_check(all(0.94 < v < 1.08
                               for c in (OSConfig.MCKERNEL,
                                         OSConfig.MCKERNEL_HFI)
                               for v in r.series(c)),
                           "no regression on either multi-kernel")]),
        ("Figure 5b — Nekbone", run_fig5b(params=params, iterations=iters),
         lambda r: [_check(max(r.series(OSConfig.MCKERNEL)) > 1.0,
                           "small McKernel win")]),
        ("Figure 6a — UMT2013", run_fig6a(params=params, iterations=iters),
         lambda r: [
             _check(0.9 < r.relative[OSConfig.MCKERNEL][1] < 1.1,
                    "single-node parity"),
             _check(r.relative[OSConfig.MCKERNEL][128] < 0.25,
                    f"multi-node collapse "
                    f"({100 * r.relative[OSConfig.MCKERNEL][128]:.0f}% at "
                    f"128 nodes; paper: <20%)"),
             _check(r.relative[OSConfig.MCKERNEL_HFI][128] > 1.04,
                    "HFI beats Linux")]),
        ("Figure 6b — HACC", run_fig6b(params=params, iterations=iters),
         lambda r: [
             _check(0.6 < sum(v for n, v in
                              r.relative[OSConfig.MCKERNEL].items()
                              if n > 1) / (len(r.node_counts) - 1) < 0.85,
                    "McKernel ~71% on average (paper)")]),
        ("Figure 7 — QBOX", run_fig7(params=params, iterations=iters),
         lambda r: [
             _check(r.relative[OSConfig.MCKERNEL_HFI][256] > 1.10,
                    f"HFI gains grow to "
                    f"+{100 * (r.relative[OSConfig.MCKERNEL_HFI][256] - 1):.0f}% "
                    f"at 256 nodes (paper: up to +30%)")]),
    ):
        out += [f"## {title}", ""]
        out += _scaling_table(result)
        out += [""] + checks(result) + [""]

    # Table 1 ---------------------------------------------------------------
    table1 = run_table1(params=params, iterations=iters)
    out += ["## Table 1 — communication profiles (8 nodes)", ""]
    for app in ("UMT2013", "HACC", "QBOX"):
        out.append(f"### {app}")
        out.append("| OS | top calls (Time s / %MPI / %Rt) |")
        out.append("|---|---|")
        for config in ALL_CONFIGS:
            cells = "; ".join(
                f"{row.call} {row.time:.1f}/{row.pct_mpi:.0f}/"
                f"{row.pct_runtime:.1f}"
                for row in table1.top(app, config, 3))
            out.append(f"| {config.label} | {cells} |")
        out.append("")
    wait_l = table1.time_in("UMT2013", OSConfig.LINUX, "Wait")
    wait_m = table1.time_in("UMT2013", OSConfig.MCKERNEL, "Wait")
    wait_h = table1.time_in("UMT2013", OSConfig.MCKERNEL_HFI, "Wait")
    out += [_check(wait_m > 4 * wait_l,
                   f"McKernel UMT Wait blows up ({wait_m:.0f}s vs Linux "
                   f"{wait_l:.0f}s)"),
            _check(wait_h < wait_l, "HFI waits less than Linux"),
            _check(table1.top("HACC", OSConfig.LINUX, 1)[0].call
                   == "Cart_create",
                   "HACC's top Linux call is Cart_create"), ""]

    # Figures 8-9 -------------------------------------------------------------
    for figure, result in (("Figure 8 — UMT2013 syscalls",
                            run_fig8(params=params, iterations=iters)),
                           ("Figure 9 — QBOX syscalls",
                            run_fig9(params=params, iterations=iters))):
        out += [f"## {figure}", "",
                "| syscall | McKernel | McKernel+HFI |", "|---|---|---|"]
        for name in ("read", "open", "mmap", "munmap", "ioctl", "writev",
                     "nanosleep"):
            out.append(f"| {name}() | "
                       f"{100 * result.mckernel.share(name):.1f}% | "
                       f"{100 * result.mckernel_hfi.share(name):.1f}% |")
        out += ["", f"HFI kernel time: "
                f"{100 * result.kernel_time_ratio:.1f}% of the original", ""]

    # SLOC ---------------------------------------------------------------------
    sloc = run_sloc()
    out += ["## Porting effort", "", "```", sloc.render(), "```", ""]
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print the measured markdown report."""
    print(generate_report())


if __name__ == "__main__":  # pragma: no cover
    main()
