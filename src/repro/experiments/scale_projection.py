"""Larger-scale projection (paper section 6 future work).

"In the near future, we have also plans to perform a much larger scale
evaluation of McKernel using the PicoDriver framework."  The calibrated
cluster model makes that projection cheap: this experiment extends the
weak-scaling sweeps past the paper's 256 nodes to OFP's full 8,208-node
class (we project to 2,048 nodes = 65,536 ranks at 32 ranks/node, and
report whether the paper's qualitative story persists or strengthens).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..apps import ALL_APPS
from ..cluster import simulate_app
from ..config import ALL_CONFIGS, OSConfig
from ..params import Params

PROJECTION_NODE_COUNTS = (256, 512, 1024, 2048)
PROJECTED_APPS = ("UMT2013", "Nekbone", "QBOX")


@dataclass
class ProjectionResult:
    """Relative performance per app at projection scales."""

    node_counts: Tuple[int, ...]
    #: (app, config, nodes) -> relative performance to Linux
    relative: Dict[Tuple[str, OSConfig, int], float]

    def series(self, app: str, config: OSConfig):
        """Relative-performance series for one app/config."""
        return [self.relative[(app, config, n)] for n in self.node_counts]

    def render(self) -> str:
        """Plain-text projection tables per app."""
        lines = ["Projection beyond the paper's 256 nodes "
                 "(relative performance to Linux, %)"]
        for app in PROJECTED_APPS:
            lines.append(f"\n{app}:")
            lines.append(f"{'nodes':>7s} {'ranks':>8s} "
                         f"{'McKernel':>10s} {'McK+HFI':>10s}")
            spec = ALL_APPS[app]
            for n in self.node_counts:
                mck = self.relative[(app, OSConfig.MCKERNEL, n)]
                hfi = self.relative[(app, OSConfig.MCKERNEL_HFI, n)]
                lines.append(f"{n:7d} {spec.ranks_for(n):8d} "
                             f"{100 * mck:9.1f}% {100 * hfi:9.1f}%")
        return "\n".join(lines)


def run_projection(node_counts: Sequence[int] = PROJECTION_NODE_COUNTS,
                   params: Optional[Params] = None,
                   iterations: Optional[int] = 4) -> ProjectionResult:
    """Project the scaling sweeps past 256 nodes."""
    relative: Dict[Tuple[str, OSConfig, int], float] = {}
    for app in PROJECTED_APPS:
        spec = ALL_APPS[app]
        for n in node_counts:
            results = {c: simulate_app(spec, n, c, params=params,
                                       iterations=iterations)
                       for c in ALL_CONFIGS}
            linux = results[OSConfig.LINUX].figure_of_merit
            for c in ALL_CONFIGS:
                relative[(app, c, n)] = results[c].figure_of_merit / linux
    return ProjectionResult(node_counts=tuple(node_counts),
                            relative=relative)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print the projection."""
    print(run_projection().render())


if __name__ == "__main__":  # pragma: no cover
    main()
