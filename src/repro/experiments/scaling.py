"""Shared machinery for the application scaling figures (5, 6, 7).

Each figure reports *relative performance to Linux* per node count, on
the solver-loop figure of merit (the paper's applications "report figure
of merit on a per-application basis ... instead of reporting absolute
numbers we indicate relative performance to Linux").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.base import AppSpec
from ..cluster import MacroResult, simulate_app
from ..config import ALL_CONFIGS, OSConfig
from ..params import Params

#: the paper's x-axis
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class ScalingResult:
    """Relative-performance series for one application."""

    app: str
    node_counts: Tuple[int, ...]
    #: config -> {n_nodes: relative performance to Linux (1.0 = parity)}
    relative: Dict[OSConfig, Dict[int, float]]
    #: raw macro results for drill-down
    raw: Dict[Tuple[OSConfig, int], MacroResult]

    def series(self, config: OSConfig) -> List[float]:
        """Relative-performance values of ``config`` over the node counts."""
        return [self.relative[config][n] for n in self.node_counts]

    def render(self, title: str = "", chart: bool = True) -> str:
        """Plain-text table (and optional ASCII chart) of the series."""
        lines = [title or f"{self.app}: relative performance to Linux (%)",
                 f"{'nodes':>6s} " + " ".join(f"{c.label:>14s}"
                                              for c in ALL_CONFIGS)]
        for n in self.node_counts:
            lines.append(f"{n:6d} " + " ".join(
                f"{100 * self.relative[c][n]:14.1f}" for c in ALL_CONFIGS))
        if chart:
            from .charts import ascii_chart
            series = {c.label: [100 * v for v in self.series(c)]
                      for c in ALL_CONFIGS}
            lines.append("")
            lines.append(ascii_chart([str(n) for n in self.node_counts],
                                     series, y_label="  % of Linux"))
        return "\n".join(lines)


def run_scaling(spec: AppSpec,
                node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                params: Optional[Params] = None,
                iterations: Optional[int] = None) -> ScalingResult:
    """Weak-scaling sweep of one app over all three OS configurations."""
    counts = tuple(n for n in node_counts if n >= spec.min_nodes)
    raw: Dict[Tuple[OSConfig, int], MacroResult] = {}
    relative: Dict[OSConfig, Dict[int, float]] = {c: {} for c in ALL_CONFIGS}
    for n in counts:
        for config in ALL_CONFIGS:
            raw[(config, n)] = simulate_app(spec, n, config, params=params,
                                            iterations=iterations)
        linux_fom = raw[(OSConfig.LINUX, n)].figure_of_merit
        for config in ALL_CONFIGS:
            relative[config][n] = (raw[(config, n)].figure_of_merit
                                   / linux_fom)
    return ScalingResult(app=spec.name, node_counts=counts,
                         relative=relative, raw=raw)
