"""The porting-effort claim (paper sections 1 and 3).

"The Intel OmniPath Linux driver amounts to about 50K source lines of
code.  From this codebase, the PicoDriver framework enabled us to port
less than 3K SLOC to McKernel" — i.e. the LWK-resident fast path is a
small fraction of the driver it cooperates with, and the three claimed
ioctl commands are a small slice of the driver's surface.

This module measures the same two ratios over *this* codebase:

* SLOC of the LWK-resident fast path (``repro/core/hfi_pico.py``) versus
  the Linux-resident driver stack it leaves untouched
  (``repro/linux/**``);
* syscall-surface coverage: claimed operations vs the driver's full
  file-operation + ioctl surface.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple


def count_sloc(path: str) -> int:
    """Source lines of code: non-blank, non-comment physical lines."""
    sloc = 0
    in_docstring = False
    with open(path, "r") as f:
        for line in f:
            stripped = line.strip()
            if not stripped:
                continue
            if in_docstring:
                if '"""' in stripped or "'''" in stripped:
                    in_docstring = False
                continue
            if stripped.startswith(('"""', "'''")):
                quote = stripped[:3]
                # one-line docstring?
                if not (stripped.count(quote) >= 2 and len(stripped) > 3):
                    in_docstring = True
                continue
            if stripped.startswith("#"):
                continue
            sloc += 1
    return sloc


def count_tree(root: str) -> int:
    """Total SLOC of every ``.py`` file under ``root``."""
    total = 0
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            if name.endswith(".py"):
                total += count_sloc(os.path.join(dirpath, name))
    return total


@dataclass
class SlocResult:
    """Porting-effort inventory."""

    pico_sloc: int
    linux_stack_sloc: int
    hfi1_driver_sloc: int
    claimed_fileops: Tuple[str, ...]
    total_fileops: Tuple[str, ...]
    claimed_ioctls: int
    total_ioctls: int

    @property
    def sloc_fraction(self) -> float:
        """Fast-path SLOC as a fraction of the Linux-resident stack."""
        return self.pico_sloc / self.linux_stack_sloc

    def render(self) -> str:
        """Plain-text porting-effort summary."""
        return "\n".join([
            "Porting effort (paper: <3K of ~50K driver SLOC ported)",
            f"  HFI PicoDriver (LWK fast path):   {self.pico_sloc:6d} SLOC",
            f"  hfi1 Linux driver (unmodified):   {self.hfi1_driver_sloc:6d} SLOC",
            f"  full Linux-resident stack:        {self.linux_stack_sloc:6d} SLOC",
            f"  fast-path fraction of the stack:  "
            f"{100 * self.sloc_fraction:.1f}%",
            f"  file operations claimed:          "
            f"{len(self.claimed_fileops)} of {len(self.total_fileops)} "
            f"({', '.join(self.claimed_fileops)})",
            f"  ioctl commands claimed:           "
            f"{self.claimed_ioctls} of {self.total_ioctls} "
            f"(the expected-receive TID commands)",
        ])


def run_sloc() -> SlocResult:
    """Measure fast-path vs Linux-stack SLOC and claimed surface."""
    import repro
    root = os.path.dirname(os.path.abspath(repro.__file__))
    pico = count_sloc(os.path.join(root, "core", "hfi_pico.py"))
    linux_stack = count_tree(os.path.join(root, "linux"))
    hfi1 = count_tree(os.path.join(root, "linux", "hfi1"))
    from ..linux.hfi1 import ALL_IOCTLS, TID_IOCTLS
    return SlocResult(
        pico_sloc=pico,
        linux_stack_sloc=linux_stack,
        hfi1_driver_sloc=hfi1,
        claimed_fileops=("writev", "ioctl[TID]"),
        total_fileops=("open", "writev", "ioctl", "poll", "mmap",
                       "lseek", "close"),
        claimed_ioctls=len(TID_IOCTLS),
        total_ioctls=len(ALL_IOCTLS),
    )


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print the porting-effort inventory."""
    print(run_sloc().render())


if __name__ == "__main__":  # pragma: no cover
    main()
