"""``python -m repro chaos --storage`` — the PicoBlock fault sweep.

For every OS configuration, drive a single-rank write/read workload
against the pxd replicated block device under increasing uniform
storage-fault rates and check the end-to-end contract of the recovery
machinery: **every acknowledged write is readable byte-intact from
every in-service replica** (read-your-writes through the device, plus
a direct end-of-cell media audit), or the caller saw a typed
:class:`~repro.errors.MediaError` — nothing is silently lost or
silently torn.

Alongside the sweep, a per-config **recovery drill** runs
baseline / storm / recovery phases over one live machine (the shared
injector's plan is swapped mid-run): the storm must evict at least one
replica, the recovery phase must re-admit at least one (probe +
resync), and recovery-phase goodput must return to
``STORAGE_RECOVERY_BAR x`` the no-fault baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (ALL_CONFIGS, OSConfig, enable_fault_injection,
                      enable_guard)
from ..errors import MediaError
from ..faults import FaultPlan
from ..linux.pxd import ioctls as ioc
from ..params import default_params
from ..sim import Event
from ..units import USEC
from .common import build_machine

#: uniform per-opportunity storage fault rates swept by the full run
DEFAULT_RATES = (0.0, 0.005, 0.01, 0.02)

#: trimmed sweep for CI (--smoke)
SMOKE_RATES = (0.0, 0.02)

#: sectors per write (disjoint runs, so the media audit is exact)
WRITE_NSECTORS = 2
#: gap between consecutive runs keeps them disjoint
WRITE_STRIDE = 4
#: per-operation think time: real callers do not spin typed failures
#: back-to-back, and the gap gives in-flight probes a chance to land
WRITE_GAP = 2 * USEC

#: guard policy for the storage campaign: hair-trigger breakers (one
#: media failure opens a replica's breaker) with quick probe turnaround,
#: so evictions and re-admissions both happen within a short workload
STORAGE_POLICY_KW = dict(failure_window=8, failure_threshold=1,
                         probe_successes=1, probe_backoff=100 * USEC,
                         probe_backoff_factor=2.0,
                         probe_backoff_max=2_000 * USEC,
                         qdepth=16, nr_congestion_on=12,
                         nr_congestion_off=4)

#: the drill's storm segment: heavy media write errors and replica-path
#: loss (the events that evict replicas), plus a trickle of torn writes
#: and lost completion IRQs to exercise the tear/watchdog machinery
STORAGE_STORM_PLAN = FaultPlan(media_write_error=0.12, pxd_path_loss=0.06,
                               media_torn_write=0.03, blk_irq_lost=0.02)

#: writes per drill phase (full / --smoke)
DRILL_PHASES = (("baseline", 30), ("storm", 30), ("recovery", 30))
DRILL_SMOKE_PHASES = (("baseline", 10), ("storm", 10), ("recovery", 14))

#: post-storm settle time before the recovery phase starts measuring:
#: past the probe backoff cap, so opened breakers sit in PROBING and
#: the first recovery-phase completions trigger probe + resync
STORAGE_SETTLE = 2 * STORAGE_POLICY_KW["probe_backoff_max"]

#: acceptance bar: recovery-phase goodput over the no-fault baseline
STORAGE_RECOVERY_BAR = 0.9


def _storage_params(replicas: int = 3):
    params = default_params()
    return params.with_overrides(blk=replace(params.blk, replicas=replicas))


def _payload(i: int, sector_size: int) -> bytes:
    return bytes([(7 * i + 1) & 0xFF]) * (WRITE_NSECTORS * sector_size)


def _audit_media(machine, acked: Dict[int, Tuple[int, bytes]],
                 label: str) -> List[str]:
    """End-of-cell oracle: every acked write byte-intact on every
    in-service replica (direct media inspection, no timing)."""
    pxd = machine.nodes[0].pxd
    blockdev = machine.nodes[0].node.blockdev
    violations = []
    for i, (sector, payload) in sorted(acked.items()):
        for r in sorted(pxd.inservice):
            got = blockdev.replicas[r].peek(sector, WRITE_NSECTORS)
            if got != payload:
                violations.append(
                    f"{label}: acked write {i} diverges on in-service "
                    f"replica {r} at sector {sector}")
    return violations


def _fsm_oracles(machine) -> List[str]:
    """Replica-FSM legality plus guard-plane invariants."""
    violations = []
    for mn in machine.nodes:
        if mn.pxd is not None:
            violations.extend(mn.pxd.fsm_violations())
            violations.extend(mn.pxd.violations)
        if mn.pxd_guard is not None:
            violations.extend(mn.pxd_guard.fsm_violations())
            violations.extend(mn.pxd_guard.violations)
    return violations


@dataclass
class StorageCellResult:
    """Outcome of one (OS config, fault rate) cell."""

    os_config: OSConfig
    rate: float
    writes: int
    acked: int
    failed_typed: int
    reads_typed: int
    goodput: float                     # bytes/second of acked writes
    counters: Dict[str, int]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every write was acked intact or typed-failed."""
        return not self.violations


@dataclass
class DrillPhase:
    """Per-phase outcome of the storage recovery drill."""

    name: str
    writes: int
    acked: int
    failed_typed: int
    elapsed: float
    goodput: float


@dataclass
class DrillResult:
    """Baseline/storm/recovery drill on one OS configuration."""

    os_config: OSConfig
    phases: List[DrillPhase]
    evictions: int
    readmits: int
    resyncs: int
    counters: Dict[str, int]
    violations: List[str] = field(default_factory=list)

    def phase(self, name: str) -> DrillPhase:
        """The named drill phase."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def recovery_ratio(self) -> float:
        """Recovery-phase goodput over the no-fault baseline phase."""
        base = self.phase("baseline").goodput
        return self.phase("recovery").goodput / base if base > 0 else 0.0


@dataclass
class StorageResult:
    """The full storage campaign: sweep cells plus per-config drills."""

    cells: List[StorageCellResult]
    drills: List[DrillResult]

    @property
    def violations(self) -> List[str]:
        """All contract violations across the campaign."""
        return ([v for cell in self.cells for v in cell.violations]
                + [v for drill in self.drills for v in drill.violations])

    def render(self) -> str:
        """Human-readable campaign report plus the integrity verdict."""
        lines = [f"Storage chaos sweep: pxd replicated writes "
                 f"({self.cells[0].writes if self.cells else 0} writes "
                 f"per cell, {_storage_params().blk.replicas} replicas)",
                 "", "config          rate     acked      typed  "
                 "goodput MB/s  evictions  readmits  fallbacks"]
        for c in self.cells:
            lines.append(
                f"{c.os_config.label:<15} {c.rate:<8g} "
                f"{c.acked:>3}/{c.writes:<5} {c.failed_typed:>6}  "
                f"{c.goodput / 1e6:>12.1f}  "
                f"{c.counters.get('pxd.evictions', 0):>9}  "
                f"{c.counters.get('pxd.readmits', 0):>8}  "
                f"{c.counters.get('pico.fallbacks', 0):>9}")
        lines.append("")
        lines.append("recovery drills (baseline / storm / recovery):")
        lines.append("config          phase      acked  typed  "
                     "goodput MB/s")
        for d in self.drills:
            for p in d.phases:
                lines.append(
                    f"{d.os_config.label:<15} {p.name:<10} "
                    f"{p.acked:>3}/{p.writes:<3} {p.failed_typed:>5}  "
                    f"{p.goodput / 1e6:>12.1f}")
            lines.append(
                f"{'':<15} ratio {d.recovery_ratio:.2f} "
                f"(bar {STORAGE_RECOVERY_BAR:.2f}), "
                f"{d.evictions} evictions, {d.readmits} readmits, "
                f"{d.resyncs} resyncs")
        lines.append("")
        if self.violations:
            lines.append(f"STORAGE VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("storage contract: every acked write readable "
                         "byte-intact from every in-service replica, "
                         "every failure typed, replica FSM legal, "
                         "goodput recovered")
        return "\n".join(lines)


def _writer(machine, task, jobs, outcomes, acked, span, phase_spans=None):
    """The cell/drill workload: open the device, write disjoint sector
    runs, read each acked write straight back (read-your-writes)."""
    sim = machine.sim
    sector_size = machine.params.blk.sector_size
    bufsize = WRITE_NSECTORS * sector_size

    def app():
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", bufsize)
        span["start"] = sim.now
        current = None
        for job in jobs:
            phase, i = job["phase"], job["index"]
            if job.get("on_enter") is not None:
                yield from job["on_enter"]()
            if phase_spans is not None and phase != current:
                # phase entry actions (plan swap, settle) run above, so
                # the measured span starts at the first write
                if current is not None:
                    phase_spans[current].append(sim.now)
                current = phase
                phase_spans[current] = [sim.now]
            sector = i * WRITE_STRIDE
            payload = _payload(i, sector_size)
            completion = Event(sim)
            yield sim.timeout(WRITE_GAP)
            try:
                yield from task.syscall(
                    "writev", fd,
                    [{"sector": sector, "payload": payload,
                      "completion": completion}, (buf, len(payload))])
                yield completion
            except MediaError as exc:
                outcomes[i] = ("typed", phase, type(exc).__name__)
                continue
            acked[i] = (sector, payload)
            try:
                data = yield from task.syscall(
                    "ioctl", fd, ioc.PXD_IOCTL_READ,
                    {"sector": sector, "nsectors": WRITE_NSECTORS})
            except MediaError as exc:
                outcomes[i] = ("acked-read-typed", phase,
                               type(exc).__name__)
                continue
            if data == payload:
                outcomes[i] = ("acked", phase, "")
            else:
                outcomes[i] = ("torn-read", phase, "")
        span["end"] = sim.now
        if phase_spans is not None and current is not None:
            phase_spans[current].append(sim.now)

    return app


def _run_cell(os_config: OSConfig, rate: float, n_writes: int,
              params=None) -> StorageCellResult:
    """Run one (config, rate) cell of the storage sweep.

    ``params`` overrides the default 3-replica calibration — the
    PicoTune environment reuses this cell as its storage-goodput
    fitness over arbitrary design points (it must carry
    ``blk.replicas > 0`` or no block device is built).
    """
    # A zero-rate *plan* (rather than no plan) keeps the recovery
    # machinery active, so the rate-0 row is the protocol-overhead
    # baseline and the curve isolates the cost of the faults.
    from ..guard import GuardPolicy
    enable_fault_injection(FaultPlan.uniform(rate))
    enable_guard(GuardPolicy(**STORAGE_POLICY_KW))
    try:
        machine = build_machine(
            1, os_config,
            params=params if params is not None else _storage_params())
        task = machine.spawn_rank(0, 0)
        jobs = [{"phase": "sweep", "index": i, "on_enter": None}
                for i in range(n_writes)]
        outcomes: Dict[int, Tuple[str, str, str]] = {}
        acked: Dict[int, Tuple[int, bytes]] = {}
        span: Dict[str, Optional[float]] = {"start": None, "end": None}
        machine.sim.process(
            _writer(machine, task, jobs, outcomes, acked, span)())
        machine.sim.run()

        label = f"{os_config.label} rate={rate:g}"
        violations = _audit_media(machine, acked, label)
        violations.extend(_fsm_oracles(machine))
        n_acked = n_typed = n_read_typed = 0
        acked_bytes = 0
        for i in range(n_writes):
            verdict, _phase, _exc = outcomes.get(i, ("hung", "sweep", ""))
            if verdict == "acked":
                n_acked += 1
                acked_bytes += len(acked[i][1])
            elif verdict == "typed":
                n_typed += 1
            elif verdict == "acked-read-typed":
                # the write is acked and audited above; the read-back
                # failing *typed* is within contract (it is counted so
                # the report shows how often reads degrade)
                n_acked += 1
                n_read_typed += 1
                acked_bytes += len(acked[i][1])
            else:
                violations.append(
                    f"{label}: write {i} ended '{verdict}' — neither "
                    f"intact nor typed")
        start = span["start"] if span["start"] is not None else 0.0
        end = span["end"] if span["end"] is not None else machine.sim.now
        elapsed = max(end - start, 1e-12)
        return StorageCellResult(
            os_config=os_config, rate=rate, writes=n_writes,
            acked=n_acked, failed_typed=n_typed, reads_typed=n_read_typed,
            goodput=acked_bytes / elapsed,
            counters=dict(machine.tracer.counters),
            violations=violations)
    finally:
        enable_guard(None)
        enable_fault_injection(None)


def _run_drill(os_config: OSConfig,
               phases: Sequence[Tuple[str, int]]) -> DrillResult:
    """Baseline / storm / recovery over one live machine."""
    from ..guard import GuardPolicy
    zero_plan = FaultPlan.uniform(0.0)
    enable_fault_injection(zero_plan)
    enable_guard(GuardPolicy(**STORAGE_POLICY_KW))
    try:
        machine = build_machine(1, os_config, params=_storage_params())
        sim = machine.sim
        task = machine.spawn_rank(0, 0)
        phase_spans: Dict[str, List[float]] = {}

        def enter(phase_name):
            def on_enter():
                if phase_name == "storm":
                    machine.injector.plan = STORAGE_STORM_PLAN
                elif phase_name == "recovery":
                    machine.injector.plan = zero_plan
                    # idle past the probe backoff cap so breakers sit in
                    # PROBING and recovery traffic re-admits replicas
                    yield sim.timeout(STORAGE_SETTLE)
            return on_enter

        jobs = []
        for phase_name, count in phases:
            for k in range(count):
                jobs.append({"phase": phase_name, "index": len(jobs),
                             "on_enter": enter(phase_name) if k == 0
                             else None})
        outcomes: Dict[int, Tuple[str, str, str]] = {}
        acked: Dict[int, Tuple[int, bytes]] = {}
        span: Dict[str, Optional[float]] = {"start": None, "end": None}
        sim.process(_writer(machine, task, jobs, outcomes, acked, span,
                            phase_spans=phase_spans)())
        sim.run()

        label = f"{os_config.label} drill"
        violations = _audit_media(machine, acked, label)
        violations.extend(_fsm_oracles(machine))
        by_phase: Dict[str, List[float]] = {}
        results: List[DrillPhase] = []
        for job in jobs:
            phase_name, i = job["phase"], job["index"]
            stats = by_phase.setdefault(phase_name, [0, 0, 0.0])
            verdict, _p, _exc = outcomes.get(i, ("hung", phase_name, ""))
            if verdict in ("acked", "acked-read-typed"):
                stats[0] += 1
                stats[2] += len(acked[i][1])
            elif verdict == "typed":
                stats[1] += 1
            else:
                violations.append(
                    f"{label}: write {i} ({phase_name}) ended "
                    f"'{verdict}' — neither intact nor typed")
        for phase_name, count in phases:
            marks = phase_spans.get(phase_name, [0.0, 0.0])
            elapsed = max(marks[-1] - marks[0], 1e-12)
            stats = by_phase.get(phase_name, [0, 0, 0.0])
            results.append(DrillPhase(
                name=phase_name, writes=count, acked=int(stats[0]),
                failed_typed=int(stats[1]), elapsed=elapsed,
                goodput=stats[2] / elapsed))
        counters = dict(machine.tracer.counters)
        drill = DrillResult(
            os_config=os_config, phases=results,
            evictions=counters.get("pxd.evictions", 0),
            readmits=counters.get("pxd.readmits", 0),
            resyncs=counters.get("pxd.resyncs", 0),
            counters=counters, violations=violations)
        if drill.phase("baseline").failed_typed:
            violations.append(f"{label}: baseline phase saw typed "
                              f"failures with no faults injected")
        if drill.evictions == 0:
            violations.append(f"{label}: storm evicted no replica — the "
                              f"drill did not exercise eviction")
        if drill.readmits == 0:
            violations.append(f"{label}: no replica re-admitted — probe "
                              f"+ resync never completed")
        if drill.recovery_ratio < STORAGE_RECOVERY_BAR:
            violations.append(
                f"{label}: goodput did not recover — recovery ran at "
                f"{drill.recovery_ratio:.2f}x baseline "
                f"(bar {STORAGE_RECOVERY_BAR:.2f})")
        return drill
    finally:
        enable_guard(None)
        enable_fault_injection(None)


def run_storage(smoke: bool = False,
                rates: Optional[Sequence[float]] = None,
                configs: Sequence[OSConfig] = ALL_CONFIGS,
                n_writes: Optional[int] = None) -> StorageResult:
    """Run the storage fault sweep plus the per-config recovery drill."""
    if rates is None:
        rates = SMOKE_RATES if smoke else DEFAULT_RATES
    if n_writes is None:
        n_writes = 12 if smoke else 40
    cells = [_run_cell(os_config, rate, n_writes)
             for os_config in configs for rate in rates]
    phases = DRILL_SMOKE_PHASES if smoke else DRILL_PHASES
    drills = [_run_drill(os_config, phases) for os_config in configs]
    return StorageResult(cells=cells, drills=drills)
