"""Table 1: communication profile of UMT2013, HACC and QBOX on 8 nodes.

For each application and OS configuration, the top-5 MPI calls with
cumulative Time (seconds summed over all ranks), % of MPI time and % of
total runtime — the ``I_MPI_STATS`` view of the paper.

Shapes to reproduce (see the paper's Table 1):

* UMT2013/HACC on the original McKernel spend close to an order of
  magnitude more time in the top calls than on Linux, concentrated in
  MPI_Wait (communication progression for asynchronous transfers);
* McKernel+HFI spends *less* time in MPI_Wait than Linux;
* MPI_Init is inflated on McKernel+HFI (device-driver mapping setup) —
  the intended trade of fast-path speed for administrative cost;
* HACC's top Linux cost is MPI_Cart_create, and it shrinks ~3x on the
  multi-kernels (large-page/contiguous memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps import ALL_APPS
from ..cluster import MacroResult, simulate_app
from ..config import ALL_CONFIGS, OSConfig
from ..mpi.stats import StatRow
from ..params import Params

TABLE1_APPS = ("UMT2013", "HACC", "QBOX")
TABLE1_NODES = 8


@dataclass
class Table1Result:
    """Top-5 call profiles per app per OS configuration."""

    n_nodes: int
    #: (app, config) -> MacroResult
    raw: Dict[Tuple[str, OSConfig], MacroResult]

    def top(self, app: str, config: OSConfig, n: int = 5) -> List[StatRow]:
        """Top-n MPI calls for one app and configuration."""
        return self.raw[(app, config)].top_calls(n)

    def time_in(self, app: str, config: OSConfig, call: str) -> float:
        """Cumulative seconds in one MPI call."""
        return self.raw[(app, config)].mpi_time.get(call, 0.0)

    def render(self) -> str:
        """Plain-text Table 1."""
        lines = [f"Table 1: Communication profile on {self.n_nodes} "
                 f"compute nodes (Time = cumulative seconds over ranks)"]
        for app in TABLE1_APPS:
            lines.append(f"\n--- {app} ---")
            lines.append(f"{'OS':14s} {'Call (MPI_)':14s} {'Time':>10s} "
                         f"{'% MPI':>7s} {'% Rt':>7s}")
            for config in ALL_CONFIGS:
                for i, row in enumerate(self.top(app, config)):
                    prefix = config.label if i == 0 else ""
                    lines.append(f"{prefix:14s} {row.call:14s} "
                                 f"{row.time:10.2f} {row.pct_mpi:7.2f} "
                                 f"{row.pct_runtime:7.2f}")
        return "\n".join(lines)


def run_table1(n_nodes: int = TABLE1_NODES,
               params: Optional[Params] = None,
               iterations: Optional[int] = None) -> Table1Result:
    """Regenerate Table 1 (8-node communication profiles)."""
    raw: Dict[Tuple[str, OSConfig], MacroResult] = {}
    for app in TABLE1_APPS:
        spec = ALL_APPS[app]
        for config in ALL_CONFIGS:
            raw[(app, config)] = simulate_app(spec, n_nodes, config,
                                              params=params,
                                              iterations=iterations)
    return Table1Result(n_nodes=n_nodes, raw=raw)


def main() -> None:  # pragma: no cover - CLI entry
    """CLI entry: print Table 1."""
    print(run_table1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
