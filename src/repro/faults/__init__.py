"""Deterministic fault-injection plane.

The paper keeps the Linux slow path around because the fast path only
handles the common case; this package exists to make the *uncommon*
case testable.  A :class:`FaultPlan` assigns firing probabilities to
the fault points wired into the hardware and driver models, and a
:class:`FaultInjector` draws those decisions from seeded, per-point RNG
streams so every chaos run is reproducible.  Injection is globally
gated by :data:`repro.config.FAULTS` (set via
:func:`repro.config.enable_fault_injection`); with the gate closed the
hooks cost one attribute load and a falsy branch.
"""

from .plan import FAULT_POINTS, FaultInjector, FaultPlan, ScheduledFault

__all__ = ["FAULT_POINTS", "FaultInjector", "FaultPlan", "ScheduledFault"]
