"""Seeded, deterministic fault plans and the injector that draws them.

A :class:`FaultPlan` names every fault point the hardware and driver
models expose and assigns each a firing probability; a
:class:`FaultInjector` binds a plan to a dedicated RNG sub-factory so
that fault decisions are reproducible and — critically — *disjoint*
from every other random stream in the simulation.  Each fault point
draws from its own lazily-created stream, so a point with rate 0 never
draws a number: a zero-rate plan is bit-identical to no plan at all.

The fault points (and where they are injected):

=================  ====================================================
``fabric.drop``    :meth:`repro.hw.fabric.Fabric.transmit` discards the
                   packet instead of delivering it.
``fabric.corrupt`` the fabric flips bits in flight — modeled by
                   perturbing the packet checksum so the receiver's
                   integrity check fails.
``sdma.desc_error`` an SDMA engine hits a descriptor fetch error while
                   draining its ring and halts.
``sdma.engine_halt`` a whole-engine freeze with no descriptor cause
                   (the hfi1 errata class the driver's halt/restart
                   state machine exists for).
``irq.lost``       a completion interrupt is dropped; the driver's
                   completion watchdog recovers it much later.
``tid.transient``  a TID_UPDATE ioctl fails retryably (receive-array
                   race); PSM backs off and retries.
``media.read_error`` a replica's backing media fails a sector read; the
                   pxd driver retries the next in-service replica.
``media.write_error`` a replica's backing media rejects a sector write;
                   the pxd driver evicts the replica from service.
``media.torn_write`` a replica persists only a prefix of the write
                   before failing it (power-loss style tear); evicted
                   like a write error but leaves divergent media behind
                   for the resync machinery to detect.
``pxd.path_loss``  the whole path to a backing replica drops at submit
                   time (cable pull); the IO never reaches the media.
``blk.irq_lost``   a block-device completion interrupt is dropped; the
                   device-side watchdog redelivers it much later.
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ReproError
from ..sim.trace import Tracer
from ..units import USEC

#: fault-point name -> FaultPlan attribute holding its rate
FAULT_POINTS = {
    "fabric.drop": "fabric_drop",
    "fabric.corrupt": "fabric_corrupt",
    "sdma.desc_error": "sdma_desc_error",
    "sdma.engine_halt": "sdma_engine_halt",
    "irq.lost": "irq_lost",
    "tid.transient": "tid_transient",
    "media.read_error": "media_read_error",
    "media.write_error": "media_write_error",
    "media.torn_write": "media_torn_write",
    "pxd.path_loss": "pxd_path_loss",
    "blk.irq_lost": "blk_irq_lost",
}


@dataclass(frozen=True)
class ScheduledFault:
    """One deterministically *placed* fault: the named point fires at
    exactly its ``occurrence``-th opportunity (0-based) and nowhere else.

    This is the adversarial-placement currency of the PicoCheck
    explorer (:mod:`repro.analysis.check`): instead of Bernoulli draws
    the checker enumerates *where* a bounded budget of faults lands
    along each schedule.  Placement never touches an RNG stream, so a
    deterministic plan with zero scheduled faults is bit-identical to a
    fault-free run.
    """

    point: str
    occurrence: int

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ReproError(f"unknown fault point {self.point!r}; choose "
                             f"from {', '.join(sorted(FAULT_POINTS))}")
        if self.occurrence < 0:
            raise ReproError(f"fault occurrence index must be >= 0, got "
                             f"{self.occurrence}")

    def describe(self) -> str:
        """``point@occurrence`` (the schedule-script rendering)."""
        return f"{self.point}@{self.occurrence}"


@dataclass(frozen=True)
class FaultPlan:
    """Per-fault-point firing probabilities (all default to 0).

    Rates are per *opportunity*: a ``fabric.drop`` of 0.01 drops 1% of
    transmitted packets, a ``sdma.desc_error`` of 0.01 halts the engine
    on 1% of descriptor fetches, and so on.

    A plan can instead run in *deterministic placement mode*
    (:meth:`placed`): rates are ignored, no RNG stream is ever created,
    and exactly the :class:`ScheduledFault` placements fire — each when
    its fault point reaches the scheduled opportunity index.  The
    injector counts opportunities either way, so a deterministic plan
    with no placements doubles as the explorer's opportunity census.
    """

    fabric_drop: float = 0.0
    fabric_corrupt: float = 0.0
    sdma_desc_error: float = 0.0
    sdma_engine_halt: float = 0.0
    irq_lost: float = 0.0
    tid_transient: float = 0.0
    media_read_error: float = 0.0
    media_write_error: float = 0.0
    media_torn_write: float = 0.0
    pxd_path_loss: float = 0.0
    blk_irq_lost: float = 0.0
    #: how long the driver-side completion watchdog waits before
    #: recovering a lost completion interrupt.
    irq_recovery_timeout: float = 60 * USEC
    #: deterministic placement mode: ignore rates, fire exactly
    #: ``scheduled``, never draw randomness
    deterministic: bool = False
    scheduled: Tuple[ScheduledFault, ...] = field(default=())

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultPlan":
        """A plan firing every fault point at the same ``rate``."""
        values = {name: rate for name in FAULT_POINTS.values()}
        values.update(overrides)
        return cls(**values)

    @classmethod
    def placed(cls, *faults: ScheduledFault, **overrides) -> "FaultPlan":
        """A deterministic plan firing exactly ``faults`` (no RNG)."""
        return cls(deterministic=True, scheduled=tuple(faults), **overrides)

    def rate_of(self, point: str) -> float:
        """The firing probability of a named fault point."""
        try:
            attr = FAULT_POINTS[point]
        except KeyError:
            raise ReproError(f"unknown fault point {point!r}; choose from "
                             f"{', '.join(sorted(FAULT_POINTS))}")
        return getattr(self, attr)

    def describe(self) -> str:
        """One-line summary of the nonzero rates (for reports)."""
        if self.deterministic:
            if not self.scheduled:
                return "no faults (deterministic)"
            return "placed: " + ", ".join(f.describe() for f in self.scheduled)
        parts = [f"{p}={self.rate_of(p):g}"
                 for p in sorted(FAULT_POINTS) if self.rate_of(p) > 0]
        return ", ".join(parts) if parts else "no faults"


class FaultInjector:
    """Draws fault decisions for one machine, deterministically.

    ``rng_factory`` must be a machine-private sub-factory (see
    :meth:`repro.sim.rng.RngFactory.spawn`) so that installing the
    injector cannot perturb any other stream's sequence.  Streams are
    created lazily per fault point and :meth:`fires` short-circuits on
    zero rates before touching the RNG, which is what keeps zero-rate
    plans bit-identical to fault-free runs.
    """

    def __init__(self, plan: FaultPlan, rng_factory,
                 tracer: Optional[Tracer] = None):
        self.plan = plan
        self.rng_factory = rng_factory
        self.tracer = tracer
        self._streams: Dict[str, object] = {}
        #: per-point opportunity counters, maintained only in
        #: deterministic placement mode (the explorer's census)
        self.occurrences: Dict[str, int] = {}
        self._scheduled = frozenset(
            (f.point, f.occurrence) for f in plan.scheduled)

    def fires(self, point: str) -> bool:
        """True if the named fault point fires at this opportunity."""
        rate = self.plan.rate_of(point)
        if self.plan.deterministic:
            # exact placement mode: count the opportunity, fire on an
            # exact (point, occurrence) match, never touch the RNG
            idx = self.occurrences.get(point, 0)
            self.occurrences[point] = idx + 1
            if (point, idx) not in self._scheduled:
                return False
            if self.tracer is not None:
                self.tracer.count(f"faults.{point}")
            return True
        if rate <= 0.0:
            return False
        stream = self._streams.get(point)
        if stream is None:
            stream = self._streams[point] = self.rng_factory.stream(
                "fault", point)
        if stream.random() >= rate:
            return False
        if self.tracer is not None:
            self.tracer.count(f"faults.{point}")
        return True
