"""PicoGuard: adaptive fast-path health management.

The guard plane gives the PicoDriver chassis the production machinery
its stateless recovery layer (PR 2) was missing, modeled on the px-fuse
``pxd_fastpath`` exemplars (SNIPPETS.md, ROADMAP open item 3):

* a per-path failover/failback **breaker**
  (:class:`~repro.guard.breaker.PathBreaker`) — sliding-window failure
  counters per SDMA engine (and for the offload path), an explicit
  CLOSED -> OPEN -> PROBING finite state machine with hysteresis and
  exponential probe backoff, consulted *at dispatch time* so a DOWN
  path routes to offload without per-request exception churn;
* **congestion watermarks**
  (:class:`~repro.guard.congestion.CongestionGate`) — a bounded
  ``qdepth`` of outstanding descriptors per engine with
  ``nr_congestion_on``/``nr_congestion_off`` high/low marks; above the
  high mark submitters queue in FIFO order (backpressure surfaced to
  the PSM send windows) instead of failing;
* **suspend/resume** (:meth:`~repro.guard.manager.GuardManager.suspend`)
  — quiesce a device under live traffic: in-flight groups complete,
  new requests park on a queued-IO list, and ``resume()`` replays them
  in arrival order.

Everything is opt-in behind :data:`repro.config.GUARD` (lint rule
PD013 enforces the gating); with the flag off no hook runs and every
experiment is bit-identical to a build without the plane.
"""

from .breaker import BREAKER_CLOSED, BREAKER_OPEN, BREAKER_PROBING, PathBreaker
from .congestion import CongestionGate
from .manager import GuardManager
from .policy import GuardPolicy

__all__ = [
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_PROBING",
    "CongestionGate", "GuardManager", "GuardPolicy", "PathBreaker",
]
