"""Per-path failover/failback breaker: CLOSED -> OPEN -> PROBING FSM.

Each fast path (one per SDMA engine, plus the offload path) gets a
:class:`PathBreaker` fed typed submit outcomes by the driver chassis.
A sliding window of recent outcomes decides failover: when the number
of failures in the window crosses the policy threshold the breaker
opens and the dispatcher stops admitting traffic onto the path *at
dispatch time* — no per-request exception churn while the path is
DOWN.  A seeded probe timer then moves the breaker to PROBING after an
exponentially growing backoff; ``probe_successes`` consecutive probe
successes close it again (failback hysteresis), while a probe failure
re-opens it and doubles the backoff.

The FSM is explicit so PicoCheck can treat transition legality as an
oracle: the only legal edges are CLOSED->OPEN, OPEN->PROBING,
PROBING->CLOSED and PROBING->OPEN, and every transition is recorded
(and emitted as a trace instant when tracing is on).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, List, Tuple

from ..config import TRACE
from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..sim import Simulator
    from .policy import GuardPolicy

#: path admits traffic normally (healthy).
BREAKER_CLOSED = "closed"
#: path is DOWN; dispatcher routes around it, probe timer pending.
BREAKER_OPEN = "open"
#: backoff elapsed; one probe request at a time is admitted.
BREAKER_PROBING = "probing"

#: the legal FSM edges (used by :meth:`PathBreaker.transitions` consumers
#: such as the PicoCheck breaker oracle).
LEGAL_TRANSITIONS = frozenset({
    (BREAKER_CLOSED, BREAKER_OPEN),
    (BREAKER_OPEN, BREAKER_PROBING),
    (BREAKER_PROBING, BREAKER_CLOSED),
    (BREAKER_PROBING, BREAKER_OPEN),
})


class PathBreaker:
    """Sliding-window failure breaker for one fast path.

    ``label`` names the owning device (``node0``...) and ``path`` the
    guarded route (``engine0``, ``engine1``, ``offload``); both appear
    in counters and trace instants so flap reports can attribute
    degradation to a specific engine.
    """

    def __init__(self, sim: "Simulator", policy: "GuardPolicy",
                 label: str, path: str, tracer=None):
        self.sim = sim
        self.policy = policy
        self.label = label
        self.path = path
        self.tracer = tracer
        #: current FSM state (one of the ``BREAKER_*`` constants).
        self.state = BREAKER_CLOSED
        #: sliding window of recent outcomes (True = success).
        self.window: deque = deque(maxlen=policy.failure_window)
        #: consecutive probe successes while PROBING.
        self.probe_streak = 0
        #: True while a probe request is in flight (PROBING admits one
        #: probe at a time).
        self.probe_inflight = False
        #: current probe backoff (grows by ``probe_backoff_factor`` per
        #: failed probe, capped at ``probe_backoff_max``).
        self.backoff = policy.probe_backoff
        #: full transition history: ``(sim_time, old, new, reason)``.
        self.transitions: List[Tuple[float, str, str, str]] = []
        # generation counter: a stale probe timer (scheduled before a
        # newer transition) must not fire a spurious OPEN->PROBING edge.
        self._generation = 0

    # -- FSM core ---------------------------------------------------------

    def _transition(self, new_state: str, reason: str) -> None:
        """Move to ``new_state``, recording and tracing the edge."""
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        self._generation += 1
        self.transitions.append((self.sim.now, old, new_state, reason))
        if TRACE.enabled:
            TRACE.collector.instant_span(
                f"guard.{old}->{new_state}",
                getattr(self, "trace_track", f"{self.label}/guard"),
                cat="guard",
                args={"path": self.path, "reason": reason,
                      "backoff_us": round(self.backoff * 1e6, 3)})

    def _failure_count(self) -> int:
        """Failures currently inside the sliding window."""
        return sum(1 for ok in self.window if not ok)

    def _count(self, name: str) -> None:
        """Bump ``name`` and its per-device/per-path variant."""
        if self.tracer is not None:
            self.tracer.count(name)
            self.tracer.count(f"{name}.{self.label}.{self.path}")

    # -- admission --------------------------------------------------------

    def admits(self) -> bool:
        """Whether the dispatcher may route a request onto this path.

        CLOSED always admits; OPEN never does; PROBING admits exactly
        one probe at a time (the caller marks it via
        :meth:`begin_probe`).
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_PROBING:
            return not self.probe_inflight
        return False

    def begin_probe(self) -> None:
        """Mark the single admitted PROBING request as in flight."""
        if self.state != BREAKER_PROBING:
            raise ReproError(
                f"{self.label}/{self.path}: begin_probe in {self.state}")
        self.probe_inflight = True

    # -- outcome feed -----------------------------------------------------

    def record_success(self) -> None:
        """Feed one successful submit outcome.

        While PROBING this advances the failback streak and closes the
        breaker at ``probe_successes`` consecutive wins (resetting the
        backoff).  A success while OPEN is legal — a request admitted
        before failover can complete late — and only refreshes the
        window.
        """
        self.window.append(True)
        if self.state == BREAKER_PROBING:
            self.probe_inflight = False
            self.probe_streak += 1
            if self.probe_streak >= self.policy.probe_successes:
                self.window.clear()
                self.backoff = self.policy.probe_backoff
                self._count("guard.failbacks")
                self._transition(
                    BREAKER_CLOSED,
                    f"{self.probe_streak} consecutive probe successes")

    def record_failure(self, reason: str = "") -> None:
        """Feed one failed submit outcome (typed error or halt event).

        CLOSED opens once failures in the window reach the threshold;
        a PROBING failure re-opens with a grown backoff.  Failures
        while already OPEN (late completions of pre-failover requests)
        just refresh the window.
        """
        self.window.append(False)
        if self.state == BREAKER_CLOSED:
            if self._failure_count() >= self.policy.failure_threshold:
                self._count("guard.failovers")
                self._fail_over(
                    f"{self._failure_count()} failures in window"
                    + (f": {reason}" if reason else ""))
        elif self.state == BREAKER_PROBING:
            self.probe_inflight = False
            self.probe_streak = 0
            self.backoff = min(self.backoff * self.policy.probe_backoff_factor,
                               self.policy.probe_backoff_max)
            self._fail_over("probe failed"
                            + (f": {reason}" if reason else ""))

    def _fail_over(self, reason: str) -> None:
        """Open the breaker and arm the probe timer."""
        self._transition(BREAKER_OPEN, reason)
        self._arm_probe_timer()

    def _arm_probe_timer(self) -> None:
        """Schedule the OPEN->PROBING edge after the current backoff.

        Uses a generation check rather than cancellation: if anything
        else transitions the breaker first, the timer fires as a no-op.
        """
        generation = self._generation
        timer = self.sim.timeout(self.backoff)

        def _probe_ready(_evt, gen=generation):
            if self._generation == gen and self.state == BREAKER_OPEN:
                self.probe_streak = 0
                self.probe_inflight = False
                self._transition(BREAKER_PROBING, "probe backoff elapsed")

        timer.add_callback(_probe_ready)
