"""Congestion watermarks: bounded outstanding descriptors per engine.

A :class:`CongestionGate` sits in front of one SDMA engine's ring and
bounds the number of *outstanding* descriptors (submitted but not yet
drained by the engine) at the policy ``qdepth``.  Crossing
``nr_congestion_on`` raises the congested flag: subsequent submitters
park on a FIFO wait list instead of failing, surfacing backpressure up
through the PSM send windows.  Draining back below
``nr_congestion_off`` clears the flag and wakes the parked submitters
in arrival order — the classic high/low watermark hysteresis of the
px-fuse fastpath (``pxd_check_q_congested``/``nr_congestion_off``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

from ..config import TRACE
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..sim import Simulator
    from .policy import GuardPolicy


class CongestionGate:
    """High/low-watermark admission gate for one SDMA engine."""

    def __init__(self, sim: "Simulator", policy: "GuardPolicy",
                 label: str, path: str, tracer=None, manager=None):
        self.sim = sim
        self.policy = policy
        self.label = label
        self.path = path
        self.tracer = tracer
        #: owning :class:`~repro.guard.manager.GuardManager`, notified on
        #: every release so a pending suspend can observe the drain.
        self.manager = manager
        #: descriptors submitted to the engine and not yet drained.
        self.outstanding = 0
        #: True between the on- and off-watermark crossings.
        self.congested = False
        #: FIFO of ``(event, n_slots)`` for parked submitters.
        self._waiters: deque = deque()

    def _count(self, name: str) -> None:
        """Bump ``name`` and its per-device/per-path variant."""
        if self.tracer is not None:
            self.tracer.count(name)
            self.tracer.count(f"{name}.{self.label}.{self.path}")

    def _would_admit(self, n: int) -> bool:
        """Whether ``n`` more slots fit right now (ignoring the queue).

        A request group larger than ``qdepth`` itself (a multi-hundred
        descriptor rendezvous window) is admitted *alone* once the gate
        is idle — the bound caps concurrency, it must never wedge a
        legal request forever.
        """
        return (not self.congested
                and (self.outstanding + n <= self.policy.qdepth
                     or self.outstanding == 0))

    def acquire_slots(self, n: int) -> Iterator:
        """Reserve ``n`` descriptor slots, parking while congested.

        A generator the submitter ``yield from``s (same blocking shape
        as the engine's ring-space wait, so lock-order analysis sees an
        ordinary event wait).  Parked submitters are admitted strictly
        in arrival order: a later acquire never overtakes an earlier
        one even if it would fit.  A parked submitter's slots are
        accounted by the releaser (:meth:`release_slots`) before its
        wake event fires, so the wait is one-shot.
        """
        if self._waiters or not self._would_admit(n):
            waiter = Event(self.sim)
            self._waiters.append((waiter, n))
            self._count("guard.congestion_waits")
            if TRACE.enabled:
                TRACE.collector.instant_span(
                    "guard.congestion_wait",
                    getattr(self, "trace_track", f"{self.label}/guard"),
                    cat="guard",
                    args={"path": self.path, "slots": n,
                          "outstanding": self.outstanding})
            yield waiter
        else:
            self._admit(n)

    def _admit(self, n: int) -> None:
        """Account ``n`` granted slots, raising the flag at the high mark."""
        self.outstanding += n
        if (not self.congested
                and self.outstanding >= self.policy.nr_congestion_on):
            self.congested = True
            self._count("guard.congestion_on")

    def release_slots(self, n: int) -> None:
        """Return ``n`` drained slots, clearing the flag at the low mark.

        Called from the engine's drain loop after a burst completes.
        Wakes parked submitters in FIFO order while their reservations
        fit, then notifies the manager so a pending :meth:`suspend
        <repro.guard.manager.GuardManager.suspend>` can observe the
        device quiescing.
        """
        self.outstanding -= n
        if self.outstanding < 0:
            self.outstanding = 0
        if (self.congested
                and self.outstanding <= self.policy.nr_congestion_off):
            self.congested = False
            self._count("guard.congestion_off")
        while self._waiters:
            waiter, slots = self._waiters[0]
            if not self._would_admit(slots):
                break
            self._waiters.popleft()
            self._admit(slots)
            if not waiter.triggered:
                waiter.succeed()
        if self.manager is not None:
            self.manager.note_drain()
