"""Per-device guard manager: breakers, gates, suspend/resume, oracles.

One :class:`GuardManager` per node owns the per-path breakers (one per
SDMA engine plus the offload path), the per-engine congestion gates,
and the suspend/resume queued-IO list.  The driver chassis consults it
on every fast-path submit:

* the McKernel dispatcher asks :meth:`admits` *before* attempting the
  fast path, so a DOWN path routes to offload at dispatch time;
* the PicoDriver fast path asks :meth:`pick_healthy_engine` instead of
  the device's bare round-robin, and feeds outcomes back through
  :meth:`record_success`/:meth:`record_failure`;
* both driver entry points park on :meth:`park_if_suspended` so a
  :meth:`suspend` can quiesce the device under live traffic.

The manager also doubles as PicoCheck's oracle surface:
:meth:`fsm_violations` checks every recorded breaker transition
against the legal edge set, and :attr:`violations` accumulates any
runtime invariant breach (an admitted submit while suspended, a gate
draining below zero).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, Iterator, List

from ..config import TRACE
from ..errors import FastPathUnavailable, ReproError
from ..sim import Event
from .breaker import (BREAKER_PROBING, LEGAL_TRANSITIONS, PathBreaker)
from .congestion import CongestionGate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..hw.hfi import HFIDevice, SdmaEngine
    from ..sim import Simulator
    from .policy import GuardPolicy

#: breaker path name for the offloaded slow path (record-only: the
#: offload path is the route of last resort, so its breaker never
#: blocks dispatch, it only attributes failures in reports).
OFFLOAD_PATH = "offload"


class GuardManager:
    """Health manager for one device's fast paths."""

    def __init__(self, sim: "Simulator", policy: "GuardPolicy",
                 n_engines: int, tracer=None, label: str = "node0",
                 path_prefix: str = "engine",
                 data_syscalls: "tuple[str, ...]" = ("writev",)):
        self.sim = sim
        self.policy = policy
        self.tracer = tracer
        self.label = label
        #: fast-path naming scheme: ``engine<i>`` for the HFI's SDMA
        #: engines, ``replica<i>`` for the pxd block device's backing
        #: replicas — one breaker per path either way.
        self.path_prefix = path_prefix
        #: syscalls whose fast path depends on per-path health (the
        #: dispatcher's :meth:`admits` pre-check gates only these).
        self.data_syscalls = tuple(data_syscalls)
        #: per-path breakers keyed ``<prefix>0``.. plus ``offload``.
        self.breakers: Dict[str, PathBreaker] = {}
        for i in range(n_engines):
            path = self.path_name(i)
            self.breakers[path] = PathBreaker(sim, policy, label, path,
                                              tracer=tracer)
        self.breakers[OFFLOAD_PATH] = PathBreaker(
            sim, policy, label, OFFLOAD_PATH, tracer=tracer)
        #: per-path congestion gates (index-aligned with the device's
        #: engine/replica list).
        self.gates: List[CongestionGate] = [
            CongestionGate(sim, policy, label, self.path_name(i),
                           tracer=tracer, manager=self)
            for i in range(n_engines)]
        #: True between :meth:`suspend` and :meth:`resume`.
        self.suspended = False
        #: FIFO of park events for requests queued while suspended.
        self._parked: deque = deque()
        #: drain waiter armed by a :meth:`suspend` in progress.
        self._drain_waiter = None
        #: runtime invariant breaches (PicoCheck oracle input).
        self.violations: List[str] = []
        self._rr = 0
        self._trace_track = None

    # -- tracing ----------------------------------------------------------

    @property
    def trace_track(self):
        """Perfetto track name for guard instants (set by
        :func:`repro.obs.spans.attach_machine`); stamping it propagates
        to every breaker and gate."""
        return self._trace_track

    @trace_track.setter
    def trace_track(self, track) -> None:
        self._trace_track = track
        for breaker in self.breakers.values():
            breaker.trace_track = track
        for gate in self.gates:
            gate.trace_track = track

    def _count(self, name: str) -> None:
        """Bump ``name`` and its per-device variant."""
        if self.tracer is not None:
            self.tracer.count(name)
            self.tracer.count(f"{name}.{self.label}")

    # -- path naming ------------------------------------------------------

    @staticmethod
    def engine_path(index: int) -> str:
        """Breaker path name for SDMA engine ``index``."""
        return f"engine{index}"

    def path_name(self, index: int) -> str:
        """Breaker path name for fast path ``index`` under this
        manager's naming scheme (``engine3``, ``replica1``, ...)."""
        return f"{self.path_prefix}{index}"

    def gate_for(self, index: int) -> CongestionGate:
        """The congestion gate guarding SDMA engine ``index``."""
        return self.gates[index]

    # -- dispatch-time admission -----------------------------------------

    def admits(self, syscall: str) -> bool:
        """Whether the fast path may serve ``syscall`` right now.

        The dispatcher calls this before attempting the fast path, so
        a degraded path is routed around without exception churn.
        Only the manager's ``data_syscalls`` depend on per-path health
        (``writev`` for SDMA engines, write/read calls for pxd
        replicas); every other fast call stays admitted.
        """
        if syscall not in self.data_syscalls:
            return True
        return any(self.breakers[self.path_name(i)].admits()
                   for i in range(len(self.gates)))

    def pick_healthy_engine(self, hfi: "HFIDevice") -> "SdmaEngine":
        """Round-robin over engines whose breaker admits traffic.

        Replaces the device's bare :meth:`~repro.hw.hfi.HFIDevice.
        pick_engine` while the guard is installed.  A PROBING breaker
        admits exactly one probe, marked in flight here.  Raises
        :class:`~repro.errors.FastPathUnavailable` when every engine is
        DOWN (the dispatcher then falls back to offload).
        """
        n = len(hfi.engines)
        for off in range(n):
            idx = (self._rr + off) % n
            breaker = self.breakers[self.engine_path(idx)]
            if breaker.admits():
                self._rr = (idx + 1) % n
                if breaker.state == BREAKER_PROBING:
                    breaker.begin_probe()
                    self._count("guard.probes")
                return hfi.engines[idx]
        raise FastPathUnavailable(
            f"{self.label}: no healthy SDMA engine (all breakers open)")

    # -- outcome feed -----------------------------------------------------

    def record_success(self, path: str) -> None:
        """Feed a successful submit outcome to ``path``'s breaker."""
        self.breakers[path].record_success()

    def record_failure(self, path: str, reason: str = "") -> None:
        """Feed a failed submit outcome to ``path``'s breaker."""
        self.breakers[path].record_failure(reason)

    # -- suspend/resume ---------------------------------------------------

    def park_if_suspended(self) -> Iterator:
        """Generator: park the caller on the queued-IO list while the
        device is suspended.

        Driver entry points ``yield from`` this before touching the
        device; with the device live it is a no-op.  Parked requests
        are replayed in arrival order by :meth:`resume` (the
        simulator's same-timestamp FIFO tie-break preserves order).
        """
        while self.suspended:
            evt = Event(self.sim)
            self._parked.append(evt)
            self._count("guard.parked")
            yield evt

    def suspend(self) -> Iterator:
        """Generator: quiesce the device under live traffic.

        Sets the suspended flag (new requests park), then waits for
        every congestion gate to drain to zero outstanding descriptors
        — in-flight groups complete, nothing new is admitted.  Returns
        once the device is quiescent.
        """
        if self.suspended:
            raise ReproError(f"{self.label}: suspend while suspended")
        self.suspended = True
        self._count("guard.suspends")
        if TRACE.enabled:
            TRACE.collector.instant_span(
                "guard.suspend", self._trace_track or f"{self.label}/guard",
                cat="guard", args={"outstanding": self._outstanding_total()})
        while self._outstanding_total() > 0:
            waiter = Event(self.sim)
            self._drain_waiter = waiter
            yield waiter
        self._drain_waiter = None

    def resume(self) -> None:
        """Lift a suspend and replay parked requests in arrival order."""
        if not self.suspended:
            raise ReproError(f"{self.label}: resume while not suspended")
        self.suspended = False
        self._count("guard.resumes")
        if TRACE.enabled:
            TRACE.collector.instant_span(
                "guard.resume", self._trace_track or f"{self.label}/guard",
                cat="guard", args={"replayed": len(self._parked)})
        while self._parked:
            evt = self._parked.popleft()
            if not evt.triggered:
                evt.succeed()

    def note_drain(self) -> None:
        """Gate callback after every release: wake a pending suspend
        once the device has fully drained."""
        if self._drain_waiter is not None and self._outstanding_total() == 0:
            waiter, self._drain_waiter = self._drain_waiter, None
            if not waiter.triggered:
                waiter.succeed()

    def _outstanding_total(self) -> int:
        """Outstanding descriptors summed across all gates."""
        total = 0
        for gate in self.gates:
            if gate.outstanding < 0:
                self.violations.append(
                    f"{self.label}/{gate.path}: outstanding went negative")
            total += gate.outstanding
        return total

    # -- oracles & reporting ---------------------------------------------

    def fsm_violations(self) -> List[str]:
        """Breaker transitions outside the legal CLOSED/OPEN/PROBING
        edge set (empty on a healthy run; a PicoCheck oracle)."""
        bad = []
        for path, breaker in self.breakers.items():
            for when, old, new, reason in breaker.transitions:
                if (old, new) not in LEGAL_TRANSITIONS:
                    bad.append(
                        f"{self.label}/{path}: illegal {old}->{new} at "
                        f"t={when * 1e6:.1f}us ({reason})")
        return bad

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time health summary for flap reports."""
        return {
            "suspended": self.suspended,
            "parked": len(self._parked),
            "paths": {
                path: {"state": b.state,
                       "failures_in_window": b._failure_count(),
                       "backoff_us": round(b.backoff * 1e6, 1),
                       "transitions": len(b.transitions)}
                for path, b in self.breakers.items()},
            "gates": [{"path": g.path, "outstanding": g.outstanding,
                       "congested": g.congested}
                      for g in self.gates],
        }
