"""Guard policy knobs: breaker thresholds, probe hysteresis, watermarks.

One frozen dataclass so a chaos campaign, a PicoCheck scenario and a
unit test can each pin an explicit policy and the run is a pure
function of it (the same discipline :mod:`repro.params` applies to the
hardware calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..units import USEC


@dataclass(frozen=True)
class GuardPolicy:
    """Tunables of the guard plane (see :mod:`repro.guard`).

    The defaults are conservative: a path must fail half of its recent
    window to go DOWN, and the congestion marks sit comfortably under
    the 128-slot SDMA descriptor ring so the gate engages before the
    hardware ring fills.
    """

    #: sliding window length: how many recent submit outcomes per path
    #: the breaker remembers.
    failure_window: int = 8
    #: failures within the window that mark the path DOWN (CLOSED->OPEN).
    failure_threshold: int = 4
    #: consecutive probe successes required to re-admit the path
    #: (PROBING->CLOSED) — the failback hysteresis ``M``.
    probe_successes: int = 2
    #: how long an OPEN path waits before admitting probe traffic.
    probe_backoff: float = 200 * USEC
    #: backoff growth factor applied each time a probe fails.
    probe_backoff_factor: float = 2.0
    #: cap on the grown probe backoff.
    probe_backoff_max: float = 5_000 * USEC
    #: bound on outstanding (submitted, not yet drained) descriptors per
    #: engine — the guard's ``qdepth`` in px-fuse terms.
    qdepth: int = 64
    #: outstanding descriptors at which the congestion flag raises
    #: (submitters start queuing).
    nr_congestion_on: int = 48
    #: outstanding descriptors at which the congestion flag clears
    #: (queued submitters drain, in arrival order).
    nr_congestion_off: int = 16

    def __post_init__(self) -> None:
        """Validate the cross-field invariants the FSM relies on."""
        if self.failure_window < 1 or self.failure_threshold < 1:
            raise ReproError("guard window/threshold must be >= 1")
        if self.failure_threshold > self.failure_window:
            raise ReproError(
                f"failure_threshold {self.failure_threshold} exceeds "
                f"failure_window {self.failure_window}")
        if self.probe_successes < 1:
            raise ReproError("probe_successes must be >= 1")
        if self.probe_backoff <= 0 or self.probe_backoff_factor < 1.0:
            raise ReproError("probe backoff must be positive and "
                             "non-shrinking")
        if not (0 < self.nr_congestion_off < self.nr_congestion_on
                <= self.qdepth):
            raise ReproError(
                f"watermarks must satisfy 0 < off < on <= qdepth, got "
                f"off={self.nr_congestion_off} on={self.nr_congestion_on} "
                f"qdepth={self.qdepth}")
