"""Simulated hardware: physical memory, page tables, cores, the HFI NIC
and the OmniPath fabric."""

from .cpu import Core, CpuSet
from .fabric import Fabric
from .hfi import (HFIDevice, Packet, RcvContext, SdmaDescriptor,
                  SdmaRequestGroup, TidEntry)
from .memory import Extent, FrameAllocator, SharedHeap
from .node import Node
from .pagetable import Mapping, PageTable

__all__ = [
    "Core", "CpuSet", "Extent", "Fabric", "FrameAllocator", "HFIDevice",
    "Mapping", "Node", "Packet", "PageTable", "RcvContext", "SdmaDescriptor",
    "SdmaRequestGroup", "SharedHeap", "TidEntry",
]
