"""The pxd block device: sector-addressed replicated backing stores.

Models the hardware half of the px-fuse fast-path contract (SNIPPETS.md
``pxd_fastpath.[ch]``): N backing replicas, each a sector-addressed
media store with its own service queue, draining IOs at a fixed media
latency plus streaming bandwidth and completing them through the node's
interrupt plumbing.  The replication *policy* — cloning writes, per-IO
trackers, eviction, resync — lives in the pxd driver
(:mod:`repro.linux.pxd`); the device only moves bytes and raises IRQs.

Fault points (all drawn here, where the media is):

* ``media.write_error`` — the media rejects the write; nothing lands.
* ``media.torn_write`` — only a prefix of the payload lands before the
  write fails (power-loss tear), leaving divergent media behind.
* ``media.read_error`` — the media fails a sector read.
* ``pxd.path_loss`` — the path to the replica drops at submit time; the
  media goes offline and every queued IO fails until reattached.
* ``blk.irq_lost`` — a completion interrupt is dropped; the device
  watchdog redelivers it after ``irq_recovery_timeout``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..analysis.lockdep import irq_enter, irq_exit
from ..config import FAULTS, TRACE
from ..errors import DriverError, MediaError, ReproError
from ..obs.spans import track_of
from ..params import BlkParams
from ..sim import Simulator, Store, Tracer


@dataclass
class BlockIo:
    """One IO to one replica: the device-level unit of work.

    The pxd driver clones a write into one ``BlockIo`` per in-service
    replica and threads its per-IO tracker through ``user_ctx``; the
    completion IRQ hands the same object back with ``status``/``data``
    filled in.
    """

    op: str                 # "write" | "read"
    replica: int
    sector: int
    nsectors: int
    payload: Optional[bytes] = None
    #: opaque driver context (the pxd io tracker address)
    user_ctx: object = None
    #: filled at completion: ``None`` on success, the typed error otherwise
    status: Optional[Exception] = None
    #: filled at completion of a successful read
    data: Optional[bytes] = None
    #: traced runs only: the submitting span (flow source for blk spans)
    trace_ctx: object = None

    def nbytes(self, sector_size: int) -> int:
        """Bytes this IO moves over the media."""
        if self.payload is not None:
            return len(self.payload)
        return self.nsectors * sector_size


class ReplicaMedia:
    """One backing replica: a sector-addressed byte store plus a path.

    ``online`` models the *path* to the media (cable/fabric), not the
    media itself: an offline replica fails every IO until the driver's
    probe machinery calls :meth:`reattach`.  Contents survive path loss
    — which is exactly why re-admission needs the resync scrubber.
    """

    def __init__(self, index: int, params: BlkParams):
        self.index = index
        self.params = params
        self.data = bytearray(params.sectors * params.sector_size)
        self.online = True

    def span(self, sector: int, nsectors: int) -> "tuple[int, int]":
        """Byte range of a sector run, bounds-checked."""
        if sector < 0 or nsectors <= 0 \
                or sector + nsectors > self.params.sectors:
            raise DriverError(
                f"replica {self.index}: bad sector range "
                f"[{sector}, {sector + nsectors}) of {self.params.sectors}")
        lo = sector * self.params.sector_size
        return lo, lo + nsectors * self.params.sector_size

    def peek(self, sector: int, nsectors: int) -> bytes:
        """Direct media inspection (oracles/resync only — no timing)."""
        lo, hi = self.span(sector, nsectors)
        return bytes(self.data[lo:hi])

    def poke(self, sector: int, payload: bytes) -> None:
        """Direct media write (resync scrubber only — no timing)."""
        lo, hi = self.span(sector, len(payload) // self.params.sector_size)
        self.data[lo:hi] = payload

    def reattach(self) -> None:
        """Bring the path back (the driver's re-probe machinery)."""
        self.online = True


class BlockDevice:
    """One pxd block device per node: N replica medias, each with a
    service queue drained at media speed, completing through the IRQ
    line installed by the pxd driver.

    :meth:`submit` is a *synchronous* enqueue — it never yields — so the
    pxd fast path may call it while holding the cross-kernel submit
    lock (PD009: no waits under a spinlock); all media time is charged
    in the per-replica drain processes.
    """

    def __init__(self, sim: Simulator, params: BlkParams, node_id: int,
                 tracer: Optional[Tracer] = None):
        if params.replicas <= 0:
            raise ReproError("BlockDevice requires params.blk.replicas > 0")
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.tracer = tracer if tracer is not None else Tracer()
        self.replicas: List[ReplicaMedia] = [
            ReplicaMedia(i, params) for i in range(params.replicas)]
        self._queues: List[Deque[BlockIo]] = [
            deque() for _ in range(params.replicas)]
        self._work: List[Store] = [
            Store(sim, name=f"blk{node_id}.r{i}.work")
            for i in range(params.replicas)]
        self._procs = [sim.process(self._drain(i))
                       for i in range(params.replicas)]
        #: installed by the pxd driver at probe
        self.irq_dispatcher = None
        #: optional :class:`repro.faults.FaultInjector` (chaos runs only)
        self.injector = None

    # -- submission ---------------------------------------------------------

    def submit(self, io: BlockIo) -> None:
        """Enqueue one IO on its replica's service queue (synchronous).

        A ``pxd.path_loss`` draw here knocks the replica's path offline
        before the IO reaches the media; the IO still completes — with a
        typed error — through the normal IRQ path so driver accounting
        is uniform.
        """
        media = self._media(io.replica)
        if io.op not in ("write", "read"):
            raise DriverError(f"unknown block op {io.op!r}")
        if io.op == "write":
            if io.payload is None or len(io.payload) != \
                    io.nsectors * self.params.sector_size:
                raise DriverError(
                    f"write payload must cover exactly {io.nsectors} "
                    f"sector(s)")
            media.span(io.sector, io.nsectors)  # validate before queueing
        else:
            media.span(io.sector, io.nsectors)
        inj = self.injector
        if FAULTS.enabled and inj is not None and inj.fires("pxd.path_loss"):
            media.online = False
            self.tracer.count("blk.path_loss")
        self._queues[io.replica].append(io)
        self.tracer.count(f"blk.r{io.replica}.submits")
        if len(self._queues[io.replica]) == 1:
            self._work[io.replica].put(None)  # kick the drain

    def _media(self, index: int) -> ReplicaMedia:
        try:
            return self.replicas[index]
        except IndexError:
            raise DriverError(f"no replica {index}")

    # -- media service ------------------------------------------------------

    def _drain(self, index: int):
        media = self.replicas[index]
        queue = self._queues[index]
        while True:
            if not queue:
                yield self._work[index].get()
                continue
            io = queue.popleft()
            span = TRACE.collector.begin_span(
                "blk.io", track_of(self), cat="blk",
                args={"op": io.op, "replica": index,
                      "sector": io.sector, "nsectors": io.nsectors}) \
                if TRACE.enabled else None
            yield self.sim.timeout(
                self.params.media_latency
                + io.nbytes(self.params.sector_size)
                / self.params.media_bandwidth)
            self._service(media, io)
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
            self.raise_irq(io)

    def _service(self, media: ReplicaMedia, io: BlockIo) -> None:
        """Apply the IO to the media, drawing the media fault points."""
        if not media.online:
            io.status = MediaError(
                f"replica {media.index}: path offline", replica=media.index)
            self.tracer.count(f"blk.r{media.index}.offline_fails")
            return
        inj = self.injector
        if io.op == "write":
            if FAULTS.enabled and inj is not None \
                    and inj.fires("media.torn_write"):
                # power-loss tear: a prefix lands, then the write fails
                lo, _hi = media.span(io.sector, io.nsectors)
                torn = len(io.payload) // 2
                media.data[lo:lo + torn] = io.payload[:torn]
                io.status = MediaError(
                    f"replica {media.index}: torn write at sector "
                    f"{io.sector}", replica=media.index)
                self.tracer.count(f"blk.r{media.index}.torn")
                return
            if FAULTS.enabled and inj is not None \
                    and inj.fires("media.write_error"):
                io.status = MediaError(
                    f"replica {media.index}: media write error at sector "
                    f"{io.sector}", replica=media.index)
                self.tracer.count(f"blk.r{media.index}.write_errors")
                return
            media.poke(io.sector, io.payload)
            self.tracer.record(f"blk.r{media.index}.write_bytes",
                               len(io.payload))
        else:
            if FAULTS.enabled and inj is not None \
                    and inj.fires("media.read_error"):
                io.status = MediaError(
                    f"replica {media.index}: media read error at sector "
                    f"{io.sector}", replica=media.index)
                self.tracer.count(f"blk.r{media.index}.read_errors")
                return
            io.data = media.peek(io.sector, io.nsectors)
            self.tracer.record(f"blk.r{media.index}.read_bytes",
                               io.nsectors * self.params.sector_size)

    # -- interrupts ---------------------------------------------------------

    def raise_irq(self, io: BlockIo) -> None:
        """Completion interrupt, with the lost-IRQ watchdog."""
        self.tracer.count("blk.irq")
        if self.irq_dispatcher is None:
            raise ReproError(
                f"blockdev {self.node_id}: IRQ raised with no dispatcher "
                f"(pxd driver not loaded?)")
        inj = self.injector
        if FAULTS.enabled and inj is not None and inj.fires("blk.irq_lost"):
            # the interrupt is dropped; the device-side completion
            # watchdog notices the stuck IO and redelivers much later
            self.sim.timeout(inj.plan.irq_recovery_timeout).add_callback(
                lambda _evt: self._recover_irq(io))
            return
        irq_enter("linux")
        try:
            self.irq_dispatcher(io)
        finally:
            irq_exit("linux")

    def _recover_irq(self, io: BlockIo) -> None:
        self.tracer.count("blk.irq_recovered")
        irq_enter("linux")
        try:
            self.irq_dispatcher(io)
        finally:
            irq_exit("linux")
