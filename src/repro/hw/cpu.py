"""CPU cores and core-set partitioning.

IHK partitions a node's cores between Linux and the LWK; cores assigned to
McKernel are *offlined* from Linux's point of view (paper section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class Core:
    """One logical CPU core."""

    core_id: int
    numa_domain: int = 0
    #: Which kernel currently owns the core ("linux", "mckernel", None).
    owner: Optional[str] = "linux"
    #: True once IHK has offlined the core from Linux.
    offlined: bool = False


@dataclass
class CpuSet:
    """An ordered set of cores with partition bookkeeping."""

    cores: List[Core] = field(default_factory=list)

    @classmethod
    def build(cls, n_cores: int, numa_domains: int = 1) -> "CpuSet":
        per_domain = max(1, n_cores // max(1, numa_domains))
        return cls([Core(i, numa_domain=min(i // per_domain, numa_domains - 1))
                    for i in range(n_cores)])

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def __getitem__(self, idx: int) -> Core:
        return self.cores[idx]

    def owned_by(self, owner: str) -> List[Core]:
        """Cores currently owned by ``owner``."""
        return [c for c in self.cores if c.owner == owner]

    def take(self, n: int, new_owner: str) -> List[Core]:
        """Reassign the *last* ``n`` Linux-owned cores to ``new_owner``
        (IHK takes cores from the tail; the first cores keep running
        system daemons, paper section 4.1)."""
        linux_cores = [c for c in self.cores if c.owner == "linux"]
        if len(linux_cores) < n:
            raise ValueError(
                f"cannot take {n} cores: only {len(linux_cores)} Linux-owned")
        taken = linux_cores[-n:]
        for core in taken:
            core.owner = new_owner
            core.offlined = True
        return taken

    def give_back(self, cores: List[Core]) -> None:
        """Return cores to Linux (IHK releasing resources dynamically)."""
        for core in cores:
            if core not in self.cores:
                raise ValueError(f"core {core.core_id} not part of this set")
            core.owner = "linux"
            core.offlined = False
