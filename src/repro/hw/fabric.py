"""The OmniPath fabric: wire latency between HFIs.

Serialization time is modeled at the sending HFI (PIO copy or SDMA engine
drain), so the fabric itself only adds the one-way wire+switch latency and
hands the packet to the destination HFI.  Loopback (same node) skips the
wire.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..config import FAULTS, TRACE
from ..errors import ReproError
from ..obs.spans import track_of
from ..params import NicParams
from ..sim import Simulator
from .hfi import HFIDevice, Packet


class Fabric:
    """A full crossbar of nodes (OFP's fat tree is latency-flat at the
    scales the paper reports; hop count is folded into ``wire_latency``)."""

    def __init__(self, sim: Simulator, params: NicParams):
        self.sim = sim
        self.params = params
        self._hfis: Dict[int, HFIDevice] = {}
        #: optional :class:`repro.faults.FaultInjector` (chaos runs only)
        self.injector = None

    def attach(self, hfi: HFIDevice) -> None:
        """Connect a node's HFI to the fabric."""
        if hfi.node_id in self._hfis:
            raise ReproError(f"node {hfi.node_id} already attached")
        self._hfis[hfi.node_id] = hfi
        hfi.fabric = self

    def __len__(self) -> int:
        return len(self._hfis)

    def transmit(self, packet: Packet) -> None:
        """Deliver a packet after the one-way wire latency (loopback is free)."""
        if packet.dst_node not in self._hfis:
            raise ReproError(f"packet for unknown node {packet.dst_node}")
        inj = self.injector
        if FAULTS.enabled and inj is not None and inj.fires("fabric.drop"):
            return
        if FAULTS.enabled and inj is not None and inj.fires("fabric.corrupt"):
            packet = replace(packet, csum=(packet.csum ^ 0x5A5A5A5A
                                           if packet.csum is not None else -1))
        dst = self._hfis[packet.dst_node]
        if packet.dst_node == packet.src_node:
            dst.receive(packet)
            return
        if TRACE.enabled:
            wire = TRACE.collector.complete_span(
                "fabric.wire", track_of(self), self.sim.now,
                self.sim.now + self.params.wire_latency, cat="wire",
                args={"kind": packet.kind, "nbytes": packet.nbytes,
                      "src": packet.src_node, "dst": packet.dst_node},
                flow_from=packet.trace)
            packet = replace(packet, trace=wire)
        self.sim.timeout(self.params.wire_latency).add_callback(
            lambda _evt: dst.receive(packet))
