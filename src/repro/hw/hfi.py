"""The Host Fabric Interface (HFI) network device.

Models the pieces of Intel's OmniPath HFI that the paper's analysis hinges
on (section 2.2):

* a PIO send path driven entirely from user space (small messages),
* 16 SDMA engines, each with a bounded descriptor ring; descriptors carry a
  *physically contiguous* byte span and the hardware accepts spans up to
  10KB — whether a driver exploits that is the whole point of Figure 4,
* the RcvArray of expected-receive (TID) entries programmed via ``ioctl``,
* completion interrupts delivered to the host when a submitted request
  group finishes.

Cost model: serializing a descriptor onto the link costs
``sdma_desc_overhead + nbytes / link_bandwidth`` while holding the node's
egress port; PIO costs ``pio_overhead + nbytes / pio_bandwidth``.  The
per-descriptor overhead times the descriptor count is what separates a
4KB-chopping driver from a 10KB-coalescing one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..analysis.lockdep import irq_enter, irq_exit
from ..config import FAULTS, GUARD, TRACE
from ..errors import DriverError, ReproError
from ..obs.spans import track_of
from ..params import NicParams
from ..sim import Event, Resource, Simulator, Store, Tracer


@dataclass(frozen=True)
class SdmaDescriptor:
    """One SDMA transfer request: a physically contiguous span."""

    paddr: int
    nbytes: int


@dataclass
class SdmaRequestGroup:
    """All descriptors generated from one ``writev()`` call, plus the
    completion callback the driver associated with the transfer
    (section 2.2.2: callbacks perform notification and metadata cleanup)."""

    descriptors: List[SdmaDescriptor]
    packet: "Packet"
    on_complete: Optional[Callable[["SdmaRequestGroup"], None]] = None
    #: kernel that allocated the metadata (decides which kfree the
    #: completion callback must use, section 3.3)
    owner_kernel: str = "linux"
    meta_addrs: List[int] = field(default_factory=list)
    #: completion function *pointer* — an address in the owner kernel's
    #: TEXT, invoked by the Linux IRQ handler through the cross-kernel
    #: callback registry (used by the full driver stack; unit tests may
    #: use the plain ``on_complete`` closure instead)
    callback_addr: Optional[int] = None
    #: opaque context threaded to the completion callback (completion
    #: events, struct views, ...)
    user_ctx: object = None
    #: traced runs only: the submitting span (``hfi1.writev`` /
    #: ``pico.writev``), the flow source for descriptor and IRQ spans
    trace_ctx: object = None

    @property
    def total_bytes(self) -> int:
        return sum(d.nbytes for d in self.descriptors)


@dataclass(frozen=True)
class TidEntry:
    """One programmed RcvArray entry."""

    tid: int
    ctxt_id: int
    paddr: int
    nbytes: int


@dataclass(frozen=True)
class Packet:
    """A logical message on the fabric (serialization is modeled at the
    sender, so one packet represents the whole transfer)."""

    kind: str              # "eager" | "expected" | "rts" | "cts" | "ack"
    src_node: int
    dst_node: int
    dst_ctxt: int
    nbytes: int
    tag: object = None
    payload: object = None
    tids: Tuple[int, ...] = ()
    #: reliability sequence number (chaos runs only; ``None`` otherwise)
    seq: object = None
    #: payload integrity checksum (chaos runs only; ``None`` otherwise)
    csum: Optional[int] = None
    #: traced runs only: the span that put this packet on the wire (not
    #: part of the message identity; excluded from the checksum)
    trace: object = None


class RcvContext:
    """A receive context (one per open device file / PSM endpoint)."""

    def __init__(self, ctxt_id: int, owner: str):
        self.ctxt_id = ctxt_id
        self.owner = owner
        self.eager_backlog: Deque[Packet] = deque()
        self._on_packet: Optional[Callable[[Packet], None]] = None

    @property
    def on_packet(self) -> Optional[Callable[[Packet], None]]:
        """The installed packet handler (``None`` before endpoint init)."""
        return self._on_packet

    @on_packet.setter
    def on_packet(self, handler: Optional[Callable[[Packet], None]]) -> None:
        # Packets that arrived before the endpoint installed its handler
        # sit in eager_backlog; drain them in arrival order the moment a
        # handler appears so early arrivals are not stranded forever.
        self._on_packet = handler
        if handler is not None:
            while self.eager_backlog:
                handler(self.eager_backlog.popleft())

    def deliver(self, packet: Packet) -> None:
        """Hand a packet to the context's handler (or queue it)."""
        if self._on_packet is not None:
            self._on_packet(packet)
        else:
            self.eager_backlog.append(packet)


class SdmaEngine:
    """One SDMA engine: a bounded descriptor ring drained onto the link.

    The engine drains its ring in batches while holding the egress port;
    ring space is released as descriptors complete, unblocking submitters
    (the driver blocks in ``writev`` when the ring is full).
    """

    def __init__(self, sim: Simulator, device: "HFIDevice", index: int):
        self.sim = sim
        self.device = device
        self.index = index
        self.ring_size = device.params.sdma_ring_size
        #: ring slots: (descriptor, group, is-last-of-group, trace span)
        self._ring: Deque[Tuple[SdmaDescriptor, SdmaRequestGroup, bool,
                                object]] = deque()
        self._space_waiters: Deque[Event] = deque()
        self._work = Store(sim, name=f"sdma{index}.work")
        self._proc = sim.process(self._run())
        self.busy = False
        #: True between a hardware halt and the driver's restart
        self.halted = False
        self._restart_evt: Optional[Event] = None
        #: optional :class:`repro.guard.CongestionGate` bounding this
        #: engine's outstanding descriptors (installed by the machine
        #: builder when the guard plane is enabled; ``None`` otherwise)
        self.gate = None

    @property
    def free_slots(self) -> int:
        return self.ring_size - len(self._ring)

    def halt(self, reason: str) -> None:
        """Freeze the engine (descriptor error / spontaneous halt) and
        raise the error interrupt so the driver can recover it.

        Ring contents are preserved; draining resumes after
        :meth:`restart`."""
        if self.halted:
            return
        self.halted = True
        self._restart_evt = Event(self.sim)
        self.device.tracer.count("hfi.sdma_halts")
        self.device.raise_error_irq(self, reason)

    def restart(self) -> None:
        """Driver-side recovery completed: resume draining the ring.

        Idempotent — restarting a running engine is a no-op, so the
        driver's recovery path is safe to run against an engine whose
        shared-heap state was frozen without a hardware halt."""
        if not self.halted:
            return
        self.halted = False
        self.device.tracer.count("hfi.sdma_restarts")
        evt, self._restart_evt = self._restart_evt, None
        if evt is not None:
            evt.succeed()

    def submit(self, group: SdmaRequestGroup):
        """Generator: enqueue every descriptor of ``group``, blocking on
        ring space.  Yields until fully submitted (completion is signalled
        separately through the IRQ path)."""
        if not group.descriptors:
            raise DriverError("empty SDMA request group")
        for desc in group.descriptors:
            if desc.nbytes <= 0:
                raise DriverError(f"bad descriptor size {desc.nbytes}")
            if desc.nbytes > self.device.params.sdma_max_request:
                raise DriverError(
                    f"descriptor of {desc.nbytes}B exceeds hardware max "
                    f"{self.device.params.sdma_max_request}B")
        if GUARD.enabled and self.gate is not None:
            # congestion watermarks: park (FIFO) while the engine is over
            # its high mark instead of racing the ring-full wait below
            yield from self.gate.acquire_slots(len(group.descriptors))
        last_idx = len(group.descriptors) - 1
        for i, desc in enumerate(group.descriptors):
            while self.free_slots == 0:
                waiter = Event(self.sim)
                self._space_waiters.append(waiter)
                yield waiter
            # Span = descriptor lifetime on the ring (enqueue to drain);
            # it nests under the submitting writev span via the lane.
            dspan = TRACE.collector.begin_span(
                "sdma.desc", track_of(self), cat="sdma",
                args={"nbytes": desc.nbytes, "kind": group.packet.kind},
                detached=True) if TRACE.enabled else None
            self._ring.append((desc, group, i == last_idx, dspan))
            if len(self._ring) == 1 and not self.busy:
                self._work.put(None)  # kick the engine

    def _run(self):
        params = self.device.params
        while True:
            if self.halted:
                yield self._restart_evt
                continue
            if not self._ring:
                yield self._work.get()
                continue
            self.busy = True
            # Drain the current ring contents in one serialization burst.
            with self.device.egress.request() as port:
                yield port
                t0 = self.sim.now
                burst: List[Tuple[SdmaDescriptor, SdmaRequestGroup, bool,
                                  object, float]] = []
                t = 0.0
                while self._ring:
                    inj = self.device.injector
                    if (FAULTS.enabled and inj is not None
                            and inj.fires("sdma.desc_error")):
                        self.halt("descriptor fetch error")
                    if (FAULTS.enabled and inj is not None
                            and inj.fires("sdma.engine_halt")):
                        self.halt("spontaneous engine freeze")
                    if self.halted:
                        break
                    desc, group, is_last, dspan = self._ring.popleft()
                    t += params.sdma_desc_overhead + desc.nbytes / params.link_bandwidth
                    burst.append((desc, group, is_last, dspan, t))
                yield self.sim.timeout(t)
            self.busy = False
            for desc, group, is_last, dspan, t_done in burst:
                self.device.tracer.count("hfi.sdma_descs")
                self.device.tracer.record("hfi.sdma_desc_bytes", desc.nbytes)
                if TRACE.enabled and dspan is not None:
                    # each descriptor leaves the wire at its own point in
                    # the burst, not at the shared burst-end timestamp
                    dspan.end = t0 + t_done
                if is_last:
                    if TRACE.enabled and dspan is not None:
                        # hand the last descriptor's span to the wire/IRQ
                        group.packet = replace(group.packet, trace=dspan)
                    self.device._transmit(group.packet)
                    self.device.raise_irq(group)
            if GUARD.enabled and self.gate is not None and burst:
                self.gate.release_slots(len(burst))
            while self._space_waiters and self.free_slots > 0:
                self._space_waiters.popleft().succeed()


class HFIDevice:
    """One HFI per node: PIO path, SDMA engines, RcvArray, IRQ line."""

    def __init__(self, sim: Simulator, params: NicParams, node_id: int,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.tracer = tracer if tracer is not None else Tracer()
        #: the node's egress port (engines and PIO share it)
        self.egress = Resource(sim, capacity=1, name=f"hfi{node_id}.egress")
        self.engines = [SdmaEngine(sim, self, i)
                        for i in range(params.sdma_engines)]
        self._next_engine = 0
        self._contexts: Dict[int, RcvContext] = {}
        self._next_ctxt = 0
        self._tid_entries: Dict[int, TidEntry] = {}
        self._next_tid = 0
        self.fabric = None  # set by Fabric.attach
        #: installed by the Linux interrupt subsystem at driver load
        self.irq_dispatcher: Optional[Callable[[SdmaRequestGroup], None]] = None
        #: installed by the hfi1 driver: SDMA engine error interrupts
        self.error_dispatcher: Optional[Callable[[SdmaEngine, str], None]] = None
        #: optional :class:`repro.faults.FaultInjector` (chaos runs only)
        self.injector = None

    # -- contexts ----------------------------------------------------------

    def alloc_context(self, owner: str) -> RcvContext:
        """Allocate a receive context (one per open device file)."""
        ctxt = RcvContext(self._next_ctxt, owner)
        self._contexts[self._next_ctxt] = ctxt
        self._next_ctxt += 1
        return ctxt

    def free_context(self, ctxt: RcvContext) -> None:
        """Release a context and reclaim its TID entries.

        Raises :class:`DriverError` if an SDMA request group still in
        flight would deliver to this context once its engine drains —
        freeing underneath it would silently hand packets to a dead
        context (the driver must quiesce its transfers first).
        """
        inflight = sum(
            1 for eng in self.engines for _d, group, is_last, _s in eng._ring
            if is_last and group.packet.dst_node == self.node_id
            and group.packet.dst_ctxt == ctxt.ctxt_id)
        if inflight:
            self.tracer.count("hfi.free_ctxt_inflight")
            raise DriverError(
                f"free of context {ctxt.ctxt_id} with {inflight} SDMA "
                f"group(s) in flight targeting it")
        self._contexts.pop(ctxt.ctxt_id, None)
        stale = [t for t, e in self._tid_entries.items()
                 if e.ctxt_id == ctxt.ctxt_id]
        for tid in stale:
            del self._tid_entries[tid]

    def context(self, ctxt_id: int) -> RcvContext:
        """Look up a receive context by id."""
        try:
            return self._contexts[ctxt_id]
        except KeyError:
            raise DriverError(f"no receive context {ctxt_id}")

    # -- SDMA ---------------------------------------------------------------

    def pick_engine(self) -> SdmaEngine:
        """Round-robin engine reservation (the driver 'reserves an SDMA
        engine', section 2.2.2)."""
        eng = self.engines[self._next_engine]
        self._next_engine = (self._next_engine + 1) % len(self.engines)
        return eng

    # -- PIO ------------------------------------------------------------------

    def pio_send(self, packet: Packet):
        """Generator: programmed-I/O send executed in the caller's context
        (user-space driven; no driver involvement)."""
        if packet.nbytes > self.params.pio_threshold:
            # PSM would never do this, but the hardware allows it; account
            # honestly instead of rejecting.
            self.tracer.count("hfi.pio_oversize")
        span = TRACE.collector.begin_span(
            "hfi.pio", track_of(self), cat="pio",
            args={"kind": packet.kind, "nbytes": packet.nbytes}) \
            if TRACE.enabled else None
        try:
            with self.egress.request() as port:
                yield port
                yield self.sim.timeout(
                    self.params.pio_overhead
                    + packet.nbytes / self.params.pio_bandwidth)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.tracer.count("hfi.pio_msgs")
        if TRACE.enabled and span is not None:
            packet = replace(packet, trace=span)
        self._transmit(packet)

    # -- RcvArray / TIDs -------------------------------------------------------

    @property
    def tids_in_use(self) -> int:
        return len(self._tid_entries)

    def program_tids(self, ctxt: RcvContext,
                     spans: List[Tuple[int, int]]) -> List[TidEntry]:
        """Program RcvArray entries for physically contiguous spans.

        Each span must fit one entry (``tid_max_span``); callers split
        larger spans first.  Raises when the RcvArray is exhausted.
        """
        if len(self._tid_entries) + len(spans) > self.params.rcv_array_entries:
            raise DriverError(
                f"RcvArray exhausted: {self.tids_in_use} in use, "
                f"{len(spans)} requested, {self.params.rcv_array_entries} total")
        entries = []
        for paddr, nbytes in spans:
            if nbytes <= 0:
                raise DriverError(f"bad TID span size {nbytes}")
            if nbytes > self.params.tid_max_span:
                raise DriverError(
                    f"TID span {nbytes}B exceeds entry max "
                    f"{self.params.tid_max_span}B")
            entry = TidEntry(self._next_tid, ctxt.ctxt_id, paddr, nbytes)
            self._next_tid += 1
            self._tid_entries[entry.tid] = entry
            entries.append(entry)
        self.tracer.count("hfi.tids_programmed", len(entries))
        return entries

    def unprogram_tids(self, tids: List[int]) -> None:
        """Invalidate RcvArray entries (TID_FREE)."""
        for tid in tids:
            if tid not in self._tid_entries:
                raise DriverError(f"unprogram of unknown TID {tid}")
            del self._tid_entries[tid]
        self.tracer.count("hfi.tids_unprogrammed", len(tids))

    def tid_entry(self, tid: int) -> TidEntry:
        """Look up a programmed RcvArray entry."""
        try:
            return self._tid_entries[tid]
        except KeyError:
            raise DriverError(f"unknown TID {tid}")

    # -- fabric interface ---------------------------------------------------------

    def _transmit(self, packet: Packet) -> None:
        if self.fabric is None:
            raise ReproError(f"HFI {self.node_id} not attached to a fabric")
        self.tracer.record("hfi.tx_bytes", packet.nbytes)
        self.fabric.transmit(packet)

    def receive(self, packet: Packet) -> None:
        """Called by the fabric when a packet arrives at this node."""
        if packet.kind == "expected":
            for tid in packet.tids:
                # Under fault injection a retransmit can outlive its
                # window's RcvArray entries (the flow failed and freed
                # them); real hardware discards writes to invalidated
                # entries, so drop the stale packet instead of raising.
                if FAULTS.enabled and tid not in self._tid_entries:
                    self.tracer.count("hfi.rx_stale_tid")
                    return
                self.tid_entry(tid)  # validates hardware state
            self.tracer.count("hfi.rx_expected")
        else:
            self.tracer.count(f"hfi.rx_{packet.kind}")
        ctxt = self._contexts.get(packet.dst_ctxt)
        if ctxt is None:
            if FAULTS.enabled:
                self.tracer.count("hfi.rx_dead_ctxt")
                return
            raise DriverError(f"no receive context {packet.dst_ctxt}")
        ctxt.deliver(packet)

    # -- interrupts -----------------------------------------------------------------

    def raise_irq(self, group: SdmaRequestGroup) -> None:
        """SDMA completion interrupt (section 2.2.2)."""
        self.tracer.count("hfi.irq")
        if self.irq_dispatcher is None:
            raise ReproError(
                f"HFI {self.node_id}: IRQ raised with no dispatcher "
                f"(driver not loaded?)")
        inj = self.injector
        if FAULTS.enabled and inj is not None and inj.fires("irq.lost"):
            # The interrupt is dropped on the floor; the driver's
            # completion watchdog notices the stuck request much later
            # and redelivers (modeled as one deferred dispatch).
            self.sim.timeout(inj.plan.irq_recovery_timeout).add_callback(
                lambda _evt: self._recover_irq(group))
            return
        # the top half runs in IRQ context on a Linux CPU (sec. 3.3);
        # lockdep attributes any lock taken inside to irq context
        irq_enter("linux")
        try:
            self.irq_dispatcher(group)
        finally:
            irq_exit("linux")

    def _recover_irq(self, group: SdmaRequestGroup) -> None:
        self.tracer.count("hfi.irq_recovered")
        irq_enter("linux")
        try:
            self.irq_dispatcher(group)
        finally:
            irq_exit("linux")

    def raise_error_irq(self, engine: SdmaEngine, reason: str) -> None:
        """SDMA engine error interrupt (halt detected in hardware)."""
        self.tracer.count("hfi.sdma_err_irqs")
        if self.error_dispatcher is None:
            raise ReproError(
                f"HFI {self.node_id}: SDMA error IRQ ({reason}) with no "
                f"error dispatcher (driver not loaded?)")
        irq_enter("linux")
        try:
            self.error_dispatcher(engine, reason)
        finally:
            irq_exit("linux")
