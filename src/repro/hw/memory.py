"""Physical memory: frame allocation with contiguity policies, and a
byte-addressable shared kernel heap.

Two distinct facilities live here:

* :class:`FrameAllocator` hands out physical page frames.  It supports the
  two allocation personalities the paper contrasts: Linux anonymous memory
  (fragmented 4KB frames) and McKernel anonymous memory (physically
  contiguous runs / large pages, section 3.4).  The SDMA request size — the
  heart of Figure 4 — falls directly out of the extents it returns.

* :class:`SharedHeap` is the direct-mapped kernel heap (``kmalloc`` arena)
  both kernels see after the PicoDriver virtual-address-space unification.
  It is backed by a real ``bytearray`` so that Linux-driver structures
  written on one side are *actually read back* byte-for-byte on the other
  through DWARF-extracted offsets.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..errors import OutOfMemory, ReproError
from ..units import PAGE_SIZE


@dataclass(frozen=True)
class Extent:
    """A run of physically contiguous frames: ``count`` frames from
    ``start`` (frame numbers, not byte addresses)."""

    start: int
    count: int

    @property
    def end(self) -> int:
        return self.start + self.count

    def byte_range(self, frame_size: int = PAGE_SIZE) -> Tuple[int, int]:
        """(start, end) byte addresses of the extent."""
        return self.start * frame_size, self.count * frame_size


class FrameAllocator:
    """First-fit extent allocator over ``total_frames`` physical frames.

    Free space is a sorted list of disjoint ``[start, end)`` intervals.
    All operations maintain the invariant that intervals are sorted,
    non-empty and non-adjacent (adjacent intervals are merged on free).
    """

    def __init__(self, total_frames: int, frame_size: int = PAGE_SIZE,
                 name: str = "mem", base_frame: int = 0):
        if total_frames <= 0:
            raise ReproError(f"total_frames must be positive: {total_frames}")
        self.total_frames = total_frames
        self.frame_size = frame_size
        self.name = name
        #: first frame number managed (IHK partitions hand an LWK a window
        #: of the node's frames, keeping frame numbers globally meaningful)
        self.base_frame = base_frame
        self._free: List[List[int]] = [[base_frame, base_frame + total_frames]]
        self.allocated_frames = 0

    # -- queries -----------------------------------------------------------

    @property
    def free_frames(self) -> int:
        return self.total_frames - self.allocated_frames

    def free_intervals(self) -> List[Tuple[int, int]]:
        """Snapshot of the free list (for tests/inspection)."""
        return [(s, e) for s, e in self._free]

    def largest_free_run(self) -> int:
        """Length of the longest contiguous free run, in frames."""
        return max((e - s for s, e in self._free), default=0)

    # -- allocation ----------------------------------------------------------

    def alloc_contiguous(self, n_frames: int,
                         align: int = 1) -> Extent:
        """Allocate one physically contiguous run of ``n_frames`` frames,
        start aligned to ``align`` frames (e.g. 512 for a 2MB page)."""
        if n_frames <= 0:
            raise ReproError(f"n_frames must be positive: {n_frames}")
        for idx, (start, end) in enumerate(self._free):
            aligned = -(-start // align) * align
            if aligned + n_frames <= end:
                self._carve(idx, aligned, aligned + n_frames)
                return Extent(aligned, n_frames)
        raise OutOfMemory(
            f"{self.name}: no contiguous run of {n_frames} frames "
            f"(align={align}, largest free run={self.largest_free_run()})")

    def alloc(self, n_frames: int) -> List[Extent]:
        """Allocate ``n_frames`` frames in as few extents as possible
        (best-effort contiguity; splits across free intervals if needed)."""
        if n_frames <= 0:
            raise ReproError(f"n_frames must be positive: {n_frames}")
        if n_frames > self.free_frames:
            raise OutOfMemory(f"{self.name}: want {n_frames} frames, "
                              f"only {self.free_frames} free")
        got: List[Extent] = []
        need = n_frames
        # Greedy: repeatedly take the largest free interval.
        while need > 0:
            idx = max(range(len(self._free)),
                      key=lambda i: self._free[i][1] - self._free[i][0])
            start, end = self._free[idx]
            take = min(need, end - start)
            self._carve(idx, start, start + take)
            got.append(Extent(start, take))
            need -= take
        return got

    def alloc_scattered(self, n_frames: int,
                        rng: np.random.Generator,
                        contig_prob: float = 0.0) -> List[Extent]:
        """Allocate ``n_frames`` as mostly *non*-contiguous frames — the
        post-fragmentation Linux anonymous-memory personality.

        Runs have geometric length with parameter ``contig_prob`` (expected
        run ``1/(1-contig_prob)``), separated by single-frame holes.  One
        sweep over the free list, O(n) in frames allocated.  Under memory
        pressure the remainder is taken contiguously from the holes —
        which is also what a real buddy allocator degrades to.
        """
        if n_frames <= 0:
            raise ReproError(f"n_frames must be positive: {n_frames}")
        if n_frames > self.free_frames:
            raise OutOfMemory(f"{self.name}: want {n_frames} frames, "
                              f"only {self.free_frames} free")
        extents: List[Extent] = []
        new_free: List[List[int]] = []
        need = n_frames
        # start the sweep at a random free interval so successive
        # allocations land in different regions
        rotation = int(rng.integers(0, len(self._free))) if self._free else 0
        order = self._free[rotation:] + self._free[:rotation]
        for start, end in order:
            pos = start
            while pos < end and need > 0:
                run = 1
                while (run < need and pos + run < end
                       and rng.random() < contig_prob):
                    run += 1
                take = min(run, need, end - pos)
                extents.append(Extent(pos, take))
                need -= take
                pos += take
                if pos < end and need > 0:
                    new_free.append([pos, pos + 1])  # leave a hole
                    pos += 1
            if pos < end:
                new_free.append([pos, end])
        if need > 0:
            # memory pressure: fill from the holes we just left
            for interval in new_free:
                if need == 0:
                    break
                take = min(need, interval[1] - interval[0])
                extents.append(Extent(interval[0], take))
                interval[0] += take
                need -= take
        if need > 0:
            raise OutOfMemory(f"{self.name}: accounting bug, "
                              f"{need} frames short")
        # rebuild the free list: sorted, merged, non-empty
        new_free = sorted(iv for iv in new_free if iv[0] < iv[1])
        merged: List[List[int]] = []
        for iv in new_free:
            if merged and merged[-1][1] == iv[0]:
                merged[-1][1] = iv[1]
            else:
                merged.append(iv)
        self._free = merged
        self.allocated_frames += n_frames
        return extents

    # -- freeing -------------------------------------------------------------

    def free(self, extents: Iterable[Extent]) -> None:
        """Return extents to the free pool (must have been allocated)."""
        for ext in extents:
            self._free_one(ext)

    def _free_one(self, ext: Extent) -> None:
        if ext.count <= 0:
            raise ReproError(f"freeing empty extent {ext}")
        if ext.start < self.base_frame or \
                ext.end > self.base_frame + self.total_frames:
            raise ReproError(f"extent {ext} outside memory")
        starts = [s for s, _ in self._free]
        idx = bisect.bisect_right(starts, ext.start)
        # Overlap checks against neighbours (double-free detection).
        if idx > 0 and self._free[idx - 1][1] > ext.start:
            raise ReproError(f"double free: {ext} overlaps free interval "
                             f"{tuple(self._free[idx - 1])}")
        if idx < len(self._free) and self._free[idx][0] < ext.end:
            raise ReproError(f"double free: {ext} overlaps free interval "
                             f"{tuple(self._free[idx])}")
        self._free.insert(idx, [ext.start, ext.end])
        self.allocated_frames -= ext.count
        # Merge with neighbours.
        if idx + 1 < len(self._free) and self._free[idx][1] == self._free[idx + 1][0]:
            self._free[idx][1] = self._free[idx + 1][1]
            del self._free[idx + 1]
        if idx > 0 and self._free[idx - 1][1] == self._free[idx][0]:
            self._free[idx - 1][1] = self._free[idx][1]
            del self._free[idx]

    # -- internals -------------------------------------------------------------

    def _carve(self, idx: int, start: int, end: int) -> None:
        """Remove ``[start, end)`` from free interval ``idx``."""
        istart, iend = self._free[idx]
        assert istart <= start and end <= iend
        self.allocated_frames += end - start
        pieces = []
        if istart < start:
            pieces.append([istart, start])
        if end < iend:
            pieces.append([end, iend])
        self._free[idx:idx + 1] = pieces



class SharedHeap:
    """Byte-addressable kernel heap backed by a real ``bytearray``.

    Addresses returned by :meth:`kmalloc` are *kernel virtual addresses*
    (``base + offset``), matching the direct-mapping region both kernels
    share after unification.  Reads and writes move real bytes, so
    cross-kernel structure access through DWARF-extracted offsets is
    exercised for real, not pretended.
    """

    def __init__(self, size: int, base: int = 0xFFFF_8800_0000_0000,
                 name: str = "kheap"):
        self.size = size
        self.base = base
        self.name = name
        self._mem = bytearray(size)
        self._brk = 0
        self._live: Dict[int, int] = {}  # addr -> size
        self._free_by_size: Dict[int, List[int]] = {}
        # opt-in access monitors (KSan race detector, lockdep validator);
        # when installed, every read/write is reported to them together
        # with the annotation the accessor layer declared
        self._monitors: List[object] = []
        self._monitor_view = None

    # -- monitors --------------------------------------------------------

    @property
    def monitor(self):
        """The installed access monitor: None, the single monitor, or a
        fan forwarding to all of them (accessor layers call it as one)."""
        return self._monitor_view

    @monitor.setter
    def monitor(self, value) -> None:
        self._monitors = [] if value is None else [value]
        self._refresh_monitor_view()

    def add_monitor(self, monitor) -> None:
        """Install an additional monitor alongside any existing ones, so
        KSan and the lockdep validator can watch the same heap."""
        self._monitors.append(monitor)
        self._refresh_monitor_view()

    def _refresh_monitor_view(self) -> None:
        if not self._monitors:
            self._monitor_view = None
        elif len(self._monitors) == 1:
            self._monitor_view = self._monitors[0]
        else:
            self._monitor_view = _MonitorFan(self._monitors)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True if ``addr`` lies inside the heap's address range."""
        return self.base <= addr < self.end

    # -- allocation ------------------------------------------------------

    def kmalloc(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes, return the kernel virtual address."""
        if size <= 0:
            raise ReproError(f"kmalloc of non-positive size {size}")
        bucket = self._free_by_size.get(self._round(size))
        if bucket:
            addr = bucket.pop()
        else:
            off = -(-self._brk // align) * align
            if off + self._round(size) > self.size:
                raise OutOfMemory(f"{self.name}: heap exhausted "
                                  f"({self._brk}/{self.size} used)")
            self._brk = off + self._round(size)
            addr = self.base + off
        self._live[addr] = size
        self._mem[addr - self.base: addr - self.base + size] = bytes(size)
        return addr

    def kfree(self, addr: int) -> None:
        """Free an allocation (size-class recycled)."""
        size = self._live.pop(addr, None)
        if size is None:
            raise ReproError(f"{self.name}: kfree of unallocated {addr:#x}")
        self._free_by_size.setdefault(self._round(size), []).append(addr)
        # shadow-state reset: a recycled address is a fresh object, not a
        # continuation of the old one's access history (KSan would
        # otherwise report races between unrelated allocations)
        monitor = self._monitor_view
        if monitor is not None:
            fn = getattr(monitor, "on_free", None)
            if fn is not None:
                fn(addr, size, self)

    def live_objects(self) -> int:
        """Number of live allocations (leak checks)."""
        return len(self._live)

    # -- raw access ------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Read raw bytes at a kernel virtual address."""
        self._check(addr, size)
        if self.monitor is not None:
            self.monitor.on_access("read", addr, size, self)
        off = addr - self.base
        return bytes(self._mem[off: off + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes at a kernel virtual address."""
        self._check(addr, len(data))
        if self.monitor is not None:
            self.monitor.on_access("write", addr, len(data), self)
        off = addr - self.base
        self._mem[off: off + len(data)] = data

    def read_u(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes."""
        return int.from_bytes(self.read(addr, size), "little")

    def write_u(self, addr: int, size: int, value: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        self.write(addr, int(value).to_bytes(size, "little", signed=False))

    def _check(self, addr: int, size: int) -> None:
        if not (self.base <= addr and addr + size <= self.end):
            raise ReproError(
                f"{self.name}: access [{addr:#x}, +{size}) outside heap "
                f"[{self.base:#x}, {self.end:#x})")

    @staticmethod
    def _round(size: int) -> int:
        """Size-class rounding (power of two, min 16) like a slab allocator."""
        size = max(size, 16)
        return 1 << (size - 1).bit_length()


class _MonitorFan:
    """Forwards the monitor protocol to every installed heap monitor.

    Monitors implement only the hooks they care about (KSan ignores the
    ``on_lockdep_*`` pair, lockdep ignores ``annotate``/``on_access``);
    the fan quietly skips hooks a monitor does not define.
    """

    __slots__ = ("_monitors",)

    def __init__(self, monitors: List[object]):
        self._monitors = list(monitors)

    def _fan(self, hook: str, *args, **kwargs) -> None:
        for monitor in self._monitors:
            fn = getattr(monitor, hook, None)
            if fn is not None:
                fn(*args, **kwargs)

    def annotate(self, *args, **kwargs) -> None:
        self._fan("annotate", *args, **kwargs)

    def on_access(self, *args, **kwargs) -> None:
        self._fan("on_access", *args, **kwargs)

    def on_free(self, *args, **kwargs) -> None:
        self._fan("on_free", *args, **kwargs)

    def on_lock_acquired(self, *args, **kwargs) -> None:
        self._fan("on_lock_acquired", *args, **kwargs)

    def on_lock_released(self, *args, **kwargs) -> None:
        self._fan("on_lock_released", *args, **kwargs)

    def on_lockdep_acquire(self, *args, **kwargs) -> None:
        self._fan("on_lockdep_acquire", *args, **kwargs)

    def on_lockdep_release(self, *args, **kwargs) -> None:
        self._fan("on_lockdep_release", *args, **kwargs)
