"""A KNL compute node chassis: cores, memories, kernel heap and the HFI.

The node is pure hardware; kernels (Linux, McKernel) are attached on top by
the machine builders in :mod:`repro.experiments.common`.
"""

from __future__ import annotations

from typing import Optional

from ..params import Params
from ..sim import Simulator, Tracer
from ..units import PAGE_SIZE
from .cpu import CpuSet
from .hfi import HFIDevice
from .memory import FrameAllocator, SharedHeap

#: Simulated physical memory is scaled down from the real 16GB+96GB so that
#: allocator structures stay small; all experiments allocate well below it.
SIM_MCDRAM_FRAMES = 256 * 1024   # 1 GiB of 4KB frames
SIM_DDR_FRAMES = 512 * 1024      # 2 GiB


class Node:
    """One compute node: CPU set, MCDRAM + DDR frame pools, kernel heap,
    and the HFI network device."""

    def __init__(self, sim: Simulator, params: Params, node_id: int,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.tracer = tracer if tracer is not None else Tracer()
        self.cpus = CpuSet.build(params.node.total_cores,
                                 params.node.numa_domains)
        self.mcdram = FrameAllocator(SIM_MCDRAM_FRAMES, PAGE_SIZE,
                                     name=f"node{node_id}.mcdram")
        self.ddr = FrameAllocator(SIM_DDR_FRAMES, PAGE_SIZE,
                                  name=f"node{node_id}.ddr")
        #: the direct-mapped kernel heap (kmalloc arena).  One per node;
        #: *who may dereference it* is governed by each kernel's virtual
        #: address space layout (repro.core.address_space).
        self.kheap = SharedHeap(8 * 1024 * 1024,
                                name=f"node{node_id}.kheap")
        self.hfi = HFIDevice(sim, params.nic, node_id, self.tracer)
        #: the pxd block device, attached by the machine builder only
        #: when ``params.blk.replicas > 0`` (storage experiments opt in;
        #: the paper figures never grow one)
        self.blockdev = None
        #: kernels attached later by machine builders
        self.linux = None
        self.mckernel = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Node {self.node_id}: {len(self.cpus)} cores, "
                f"hfi ctxts={len(self.hfi._contexts)}>")
