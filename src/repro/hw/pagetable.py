"""Per-process page tables with mixed 4KB / 2MB mappings.

The structure that matters for the paper is :meth:`PageTable.phys_spans`:
given a virtual range it yields the *physically contiguous* spans backing
it, merged across page boundaries.  The Linux HFI1 driver never exploits
contiguity (it chops everything to PAGE_SIZE); the HFI PicoDriver walks
these spans directly and builds SDMA requests up to 10KB (section 3.4).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..errors import PageFault, ReproError
from ..units import LARGE_PAGE_SIZE, PAGE_SIZE
from .memory import Extent


@dataclass(frozen=True)
class Mapping:
    """One page-table entry at natural granularity."""

    vaddr: int       # virtual start (aligned to page_size)
    paddr: int       # physical start (aligned to page_size)
    page_size: int   # PAGE_SIZE or LARGE_PAGE_SIZE
    pinned: bool = False

    @property
    def vend(self) -> int:
        return self.vaddr + self.page_size


class PageTable:
    """Sorted mapping list with bisect lookup.

    Entries are stored per page at natural granularity (one entry per 4KB
    or per 2MB page), which keeps ``translate`` O(log n) and keeps large
    pages first-class rather than expanded.
    """

    def __init__(self, owner: str = ""):
        self.owner = owner
        self._vaddrs: List[int] = []
        self._maps: List[Mapping] = []

    def __len__(self) -> int:
        return len(self._maps)

    # -- construction ------------------------------------------------------

    def map_page(self, vaddr: int, paddr: int, page_size: int = PAGE_SIZE,
                 pinned: bool = False) -> None:
        """Install one page mapping (vaddr/paddr must be aligned)."""
        if page_size not in (PAGE_SIZE, LARGE_PAGE_SIZE):
            raise ReproError(f"unsupported page size {page_size}")
        if vaddr % page_size or paddr % page_size:
            raise ReproError(
                f"unaligned mapping va={vaddr:#x} pa={paddr:#x} size={page_size}")
        idx = bisect.bisect_left(self._vaddrs, vaddr)
        if idx < len(self._maps) and self._maps[idx].vaddr < vaddr + page_size:
            raise ReproError(f"mapping overlap at {vaddr:#x}")
        if idx > 0 and self._maps[idx - 1].vend > vaddr:
            raise ReproError(f"mapping overlap at {vaddr:#x}")
        self._vaddrs.insert(idx, vaddr)
        self._maps.insert(idx, Mapping(vaddr, paddr, page_size, pinned))

    def map_extents(self, vaddr: int, extents: Iterable[Extent],
                    frame_size: int = PAGE_SIZE, pinned: bool = False,
                    use_large_pages: bool = False) -> int:
        """Map physical ``extents`` consecutively starting at ``vaddr``.

        When ``use_large_pages`` is set, any 2MB-aligned 2MB-sized piece of
        an extent is installed as a single large-page entry (McKernel's
        policy); the ragged edges fall back to 4KB entries.
        Returns the end virtual address.
        """
        va = vaddr
        for ext in extents:
            pa, nbytes = ext.start * frame_size, ext.count * frame_size
            while nbytes:
                if (use_large_pages and va % LARGE_PAGE_SIZE == 0
                        and pa % LARGE_PAGE_SIZE == 0
                        and nbytes >= LARGE_PAGE_SIZE):
                    step = LARGE_PAGE_SIZE
                else:
                    step = PAGE_SIZE
                self.map_page(va, pa, step, pinned)
                va += step
                pa += step
                nbytes -= step
        return va

    def unmap_range(self, vaddr: int, length: int) -> List[Extent]:
        """Remove all mappings intersecting ``[vaddr, vaddr+length)``;
        returns the physical extents released (frame numbers)."""
        released: List[Extent] = []
        idx = bisect.bisect_right(self._vaddrs, vaddr) - 1
        if idx < 0 or self._maps[idx].vend <= vaddr:
            idx += 1
        while idx < len(self._maps) and self._maps[idx].vaddr < vaddr + length:
            m = self._maps[idx]
            if m.vaddr < vaddr or m.vend > vaddr + length:
                raise ReproError(
                    f"partial unmap of a {m.page_size}-byte page at "
                    f"{m.vaddr:#x} (range [{vaddr:#x}, +{length:#x}))")
            released.append(Extent(m.paddr // PAGE_SIZE,
                                   m.page_size // PAGE_SIZE))
            del self._vaddrs[idx]
            del self._maps[idx]
        return released

    # -- lookup ------------------------------------------------------------

    def lookup(self, vaddr: int) -> Mapping:
        """The mapping covering ``vaddr`` (PageFault if none)."""
        idx = bisect.bisect_right(self._vaddrs, vaddr) - 1
        if idx >= 0:
            m = self._maps[idx]
            if m.vaddr <= vaddr < m.vend:
                return m
        raise PageFault(self.owner, vaddr, "no mapping")

    def translate(self, vaddr: int) -> int:
        """Virtual to physical byte address."""
        m = self.lookup(vaddr)
        return m.paddr + (vaddr - m.vaddr)

    def is_pinned(self, vaddr: int, length: int) -> bool:
        """True if every page in the range is pinned."""
        va = vaddr
        end = vaddr + length
        while va < end:
            m = self.lookup(va)
            if not m.pinned:
                return False
            va = m.vend
        return True

    def phys_spans(self, vaddr: int, length: int) -> List[Tuple[int, int]]:
        """Physically contiguous ``(paddr, nbytes)`` spans backing the
        virtual range, merged across page boundaries.

        This is what the PicoDriver iterates instead of collecting page
        references: one span can cover many pages when the backing memory
        is contiguous (section 3.4).
        """
        if length < 0:
            raise ReproError(f"negative length {length}")
        spans: List[Tuple[int, int]] = []
        va, end = vaddr, vaddr + length
        while va < end:
            m = self.lookup(va)
            pa = m.paddr + (va - m.vaddr)
            chunk = min(m.vend, end) - va
            if spans and spans[-1][0] + spans[-1][1] == pa:
                spans[-1] = (spans[-1][0], spans[-1][1] + chunk)
            else:
                spans.append((pa, chunk))
            va += chunk
        return spans

    def pages(self, vaddr: int, length: int) -> List[int]:
        """Physical addresses of the 4KB pages backing the range — the
        ``get_user_pages()`` view the Linux driver collects (one entry per
        base page even inside a large page)."""
        out: List[int] = []
        va = vaddr
        end = vaddr + length
        # align down to a 4KB boundary, like gup does
        va -= va % PAGE_SIZE
        while va < end:
            out.append(self.translate(va))
            va += PAGE_SIZE
        return out
