"""Interface for Heterogeneous Kernels (IHK).

IHK partitions node resources (CPU cores, physical memory) for lightweight
kernels, boots/destroys them without rebooting the host, and provides the
Inter-Kernel Communication (IKC) layer used for system-call delegation
(paper section 2.1).
"""

from .ikc import IkcChannel
from .manager import IhkManager
from .partition import IhkPartition, release_partition, reserve_partition

__all__ = ["IhkManager", "IhkPartition", "IkcChannel",
           "release_partition", "reserve_partition"]
