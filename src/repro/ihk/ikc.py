"""Inter-Kernel Communication: the system-call delegation transport.

One offloaded syscall costs, on top of the Linux handler itself:

* request marshalling on the LWK core,
* an inter-processor interrupt to wake the Linux-side worker,
* *queueing for a Linux OS CPU* — the term that explodes when 32-64 ranks
  per node funnel driver calls through 4 cores (section 4.3),
* Linux-side dispatch into the proxy-process context, and
* response marshalling.
"""

from __future__ import annotations

from ..config import TRACE
from ..obs.spans import track_of
from ..params import Params
from ..sim import Event, Simulator, Tracer


class IkcChannel:
    """The IKC channel between one LWK instance and its host Linux."""

    def __init__(self, sim: Simulator, params: Params, linux,
                 tracer: Tracer):
        self.sim = sim
        self.params = params
        self.linux = linux
        self.tracer = tracer
        self.inflight = 0

    def call(self, proxy_task, name: str, args: tuple, cause=None):
        """Generator (runs in the LWK caller's context): delegate syscall
        ``name`` to Linux, executing it in ``proxy_task``'s context.

        ``cause`` (traced runs only) is the LWK-side offload span; the
        Linux-side service span flows from it across the IKC hop."""
        ikc = self.params.ikc
        yield self.sim.timeout(ikc.request_cost)
        done = Event(self.sim)
        self.inflight += 1
        self.tracer.count("ikc.calls")
        self.sim.process(self._serve(proxy_task, name, args, done, cause))
        try:
            result = yield done
        finally:
            self.inflight -= 1
        return result

    def _serve(self, proxy_task, name: str, args: tuple, done: Event,
               cause=None):
        """Linux-side service: wake, queue for an OS CPU, run, respond."""
        ikc = self.params.ikc
        span = TRACE.collector.begin_span(
            f"ikc.serve.{name}", track_of(self.linux), cat="offload",
            flow_from=cause) if TRACE.enabled else None
        try:
            yield self.sim.timeout(ikc.ipi_cost)
            queued_at = self.sim.now
            depth = self.linux.os_cpus.queued  # runnable proxies ahead of us
            with self.linux.os_cpus.request() as cpu:
                yield cpu
                wait = self.sim.now - queued_at
                if wait > 0:
                    self.tracer.record("ikc.cpu_wait", wait)
                # proxy context switch: cheap when a CPU was idle, expensive
                # when many proxies thrash the few OS CPUs (section 4.3)
                switch = ikc.context_switch_cost * min(
                    depth / self.linux.os_cpus.capacity, ikc.contention_cap)
                yield self.sim.timeout(ikc.dispatch_cost + switch)
                try:
                    ret = yield from self.linux.syscall(proxy_task, name,
                                                        *args)
                    exc = None
                except Exception as e:  # propagate to the LWK caller
                    ret, exc = None, e
                yield self.sim.timeout(ikc.response_cost)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        if exc is not None:
            done.fail(exc)
        else:
            done.succeed(ret)
