"""IHK management: booting and destroying LWK instances.

Booting an LWK (section 2.1, 3.1):

1. reserve a resource partition (cores offlined from Linux, contiguous
   physical memory);
2. lay out the LWK's kernel virtual address space — unified with Linux for
   PicoDriver operation (the default), or the original layout for
   pre-PicoDriver behaviour;
3. when unified, map the McKernel ELF image into Linux (so Linux can call
   LWK TEXT) — performed here, "at the time of booting the LWK";
4. create the IKC channel for syscall delegation.
"""

from __future__ import annotations

from typing import Optional

from ..core.address_space import (mckernel_original_layout,
                                  unify_address_spaces)
from ..errors import ReproError
from ..hw.node import Node
from ..linux.kernel import LinuxKernel
from ..params import Params
from ..sim import Simulator, Tracer
from .ikc import IkcChannel
from .partition import release_partition, reserve_partition

#: default LWK memory partition (frames) — most of simulated MCDRAM
DEFAULT_LWK_FRAMES = 192 * 1024


class IhkManager:
    """Per-node IHK instance (the collection of Linux kernel modules)."""

    def __init__(self, sim: Simulator, params: Params, node: Node,
                 linux: LinuxKernel, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.params = params
        self.node = node
        self.linux = linux
        self.tracer = tracer if tracer is not None else linux.tracer
        self.lwk: Optional[McKernel] = None

    def boot_mckernel(self, n_cores: Optional[int] = None,
                      mem_frames: int = DEFAULT_LWK_FRAMES,
                      unified_address_space: bool = True):
        """Boot McKernel on a fresh partition; returns the LWK handle."""
        # imported here: mckernel.kernel imports ihk.ikc, so a module-level
        # import would be circular
        from ..mckernel.kernel import McKernel
        if self.lwk is not None:
            raise ReproError(f"node {self.node.node_id} already runs an LWK")
        n = n_cores if n_cores is not None else self.params.node.app_cores
        partition = reserve_partition(self.node, n, mem_frames)
        aspace = mckernel_original_layout()
        if unified_address_space:
            # includes step 3: the LWK image becomes visible in Linux
            unify_address_spaces(self.linux.aspace, aspace)
        ikc = IkcChannel(self.sim, self.params, self.linux, self.tracer)
        self.lwk = McKernel(self.sim, self.params, self.node, self.linux,
                            ikc, partition, aspace)
        return self.lwk

    def destroy_mckernel(self) -> None:
        """Shut the LWK down and return its resources to Linux."""
        if self.lwk is None:
            raise ReproError("no LWK to destroy")
        release_partition(self.lwk.partition)
        self.node.mckernel = None
        self.lwk = None
