"""Dynamic resource partitioning: cores and memory for the LWK.

IHK "is capable of allocating and releasing host resources dynamically and
no reboot of the host machine is required" (section 2.1).  A partition
offlines CPU cores from Linux and carves a contiguous physical-memory
window out of the node pools, handing the LWK its own frame allocator over
*globally meaningful* frame numbers (physical contiguity must survive the
hand-off — McKernel's large pages depend on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ReproError
from ..hw.cpu import Core
from ..hw.memory import Extent, FrameAllocator
from ..hw.node import Node
from ..units import LARGE_PAGE_SIZE, PAGE_SIZE


@dataclass
class IhkPartition:
    """Resources reserved for one LWK instance."""

    node: Node
    cores: List[Core]
    mem_extent: Extent
    lwk_allocator: FrameAllocator
    released: bool = False

    @property
    def n_cores(self) -> int:
        return len(self.cores)


def reserve_partition(node: Node, n_cores: int,
                      mem_frames: int) -> IhkPartition:
    """Offline ``n_cores`` from Linux and reserve ``mem_frames`` of
    physically contiguous MCDRAM for the LWK."""
    if n_cores <= 0 or mem_frames <= 0:
        raise ReproError("partition needs positive core and memory counts")
    cores = node.cpus.take(n_cores, "mckernel")
    large_page_frames = LARGE_PAGE_SIZE // PAGE_SIZE
    try:
        extent = node.mcdram.alloc_contiguous(mem_frames,
                                              align=large_page_frames)
    except Exception:
        node.cpus.give_back(cores)
        raise
    lwk_alloc = FrameAllocator(mem_frames, PAGE_SIZE,
                               name=f"node{node.node_id}.lwk",
                               base_frame=extent.start)
    return IhkPartition(node, cores, extent, lwk_alloc)


def release_partition(partition: IhkPartition) -> None:
    """Give everything back to Linux (LWK shutdown)."""
    if partition.released:
        raise ReproError("partition already released")
    if partition.lwk_allocator.allocated_frames:
        raise ReproError(
            f"releasing partition with "
            f"{partition.lwk_allocator.allocated_frames} frames still "
            f"allocated by the LWK")
    partition.node.cpus.give_back(partition.cores)
    partition.node.mcdram.free([partition.mem_extent])
    partition.released = True
