"""Shared kernel abstractions (tasks, syscall dispatch interface)."""

from .base import KernelBase, Task

__all__ = ["KernelBase", "Task"]
