"""Task and kernel base classes shared by Linux and McKernel models.

A :class:`Task` is an execution context (an MPI rank's process) pinned to a
core of one kernel.  All time a task spends — user computation, syscall
handling, spinning on locks — flows through its kernel's generators so the
kernel can apply its personality (noise on Linux app cores, offloading on
McKernel, ...).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..errors import BadSyscall
from ..hw.pagetable import PageTable
from ..params import Params
from ..sim import Simulator, Tracer


class Task:
    """One process/thread context."""

    def __init__(self, name: str, kernel: "KernelBase", core_id: int,
                 rng: Optional[np.random.Generator] = None):
        self.name = name
        self.kernel = kernel
        self.core_id = core_id
        self.rng = rng
        self.pagetable = PageTable(owner=name)
        #: next anonymous mmap address (per-task user VA cursor)
        self.mmap_cursor = 0x7F00_0000_0000
        #: opaque per-layer state (PSM endpoint, proxy link, ...)
        self.state: Dict[str, Any] = {}

    def syscall(self, name: str, *args):
        """Generator: issue a syscall through the owning kernel."""
        return self.kernel.syscall(self, name, *args)

    def compute(self, seconds: float):
        """Generator: burn CPU time (kernel may inflate it with noise)."""
        return self.kernel.execute(self, seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} on {self.kernel.name} core {self.core_id}>"


class KernelBase:
    """Common kernel machinery: syscall dispatch plus time accounting."""

    #: "linux" or "mckernel"
    name: str = "kernel"

    def __init__(self, sim: Simulator, params: Params,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.params = params
        self.tracer = tracer if tracer is not None else Tracer()
        self._tasks: Dict[str, Task] = {}

    # -- tasks ---------------------------------------------------------------

    def spawn_task(self, name: str, core_id: int,
                   rng: Optional[np.random.Generator] = None) -> Task:
        """Create a task bound to this kernel on ``core_id``."""
        task = Task(name, self, core_id, rng)
        self._tasks[name] = task
        return task

    # -- time ----------------------------------------------------------------

    def execute(self, task: Task, seconds: float):
        """Generator: run ``seconds`` of computation in ``task``.

        The base implementation is noise-free; Linux overrides it to add
        residual jitter on application cores.
        """
        if seconds > 0:
            yield self.sim.timeout(seconds)
        return None

    # -- syscalls --------------------------------------------------------------

    def syscall(self, task: Task, name: str, *args):
        """Generator: full syscall path.  Subclasses implement
        ``_dispatch`` and may wrap it (entry cost, offloading...)."""
        raise NotImplementedError

    def account_syscall(self, name: str, elapsed: float) -> None:
        """Feed the per-syscall kernel profiler (Figures 8-9)."""
        self.tracer.record(f"syscall.{name}", elapsed)
        self.tracer.count(f"syscall.{name}.calls")

    @staticmethod
    def check_args(name: str, args: tuple, n: int) -> None:
        if len(args) != n:
            raise BadSyscall(f"{name} expects {n} args, got {len(args)}")
