"""The Linux kernel model: VFS, device files, memory management, IRQ
routing, OS noise, and the unmodified HFI1 driver (subpackage ``hfi1``)."""

from .kernel import LinuxKernel
from .vfs import File, FileOps, VFS

__all__ = ["File", "FileOps", "LinuxKernel", "VFS"]
