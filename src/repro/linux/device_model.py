"""The Linux device model: classes, devices and sysfs attributes.

Device drivers "usually comply with the Linux device model, which
provides facilities for device classes, hotplugging, power management
... and they often provide device specific entries in pseudo file
systems such in /proc or /sys" (paper section 1).  None of this exists
in McKernel — it is exactly the administrative surface the PicoDriver
architecture leaves in Linux and reaches over offloaded syscalls.

The model here is deliberately small: named classes, devices with
attribute files surfaced under ``/sys/class/<class>/<device>/<attr>``,
readable through the normal (offloadable) ``open``/``read`` path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import BadSyscall, ReproError

AttrValue = Union[str, int, Callable[[], Union[str, int]]]


class Device:
    """One registered device with its sysfs attributes."""

    def __init__(self, name: str, device_class: str):
        self.name = name
        self.device_class = device_class
        self._attrs: Dict[str, AttrValue] = {}

    def add_attr(self, name: str, value: AttrValue) -> None:
        """Expose a sysfs attribute (static value or callable)."""
        if name in self._attrs:
            raise ReproError(f"{self.sysfs_path}/{name} already exists")
        self._attrs[name] = value

    def read_attr(self, name: str) -> str:
        """Render an attribute as sysfs text (value + newline)."""
        if name not in self._attrs:
            raise BadSyscall(f"no attribute {self.sysfs_path}/{name}")
        value = self._attrs[name]
        if callable(value):
            value = value()
        return f"{value}\n"

    @property
    def sysfs_path(self) -> str:
        return f"/sys/class/{self.device_class}/{self.name}"

    def attr_names(self):
        """Sorted attribute names of this device."""
        return sorted(self._attrs)


class DeviceModel:
    """Per-kernel registry of classes and devices."""

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}   # sysfs path -> device

    def register(self, device: Device) -> Device:
        """Register a device under /sys/class/<class>/<name>."""
        if device.sysfs_path in self._devices:
            raise ReproError(f"device {device.sysfs_path} already registered")
        self._devices[device.sysfs_path] = device
        return device

    def unregister(self, device: Device) -> None:
        """Remove a device from the registry."""
        self._devices.pop(device.sysfs_path, None)

    def device(self, sysfs_path: str) -> Optional[Device]:
        """Look up a device by sysfs path, or None."""
        return self._devices.get(sysfs_path)

    def classes(self):
        """Sorted device-class names with registered devices."""
        return sorted({d.device_class for d in self._devices.values()})

    def lookup_attr(self, path: str):
        """Resolve ``/sys/class/<cls>/<dev>/<attr>`` -> (device, attr),
        or None if the path is not a sysfs attribute."""
        if not path.startswith("/sys/class/"):
            return None
        parts = path.split("/")
        if len(parts) != 6:
            return None
        dev_path = "/".join(parts[:5])
        device = self._devices.get(dev_path)
        if device is None:
            return None
        return device, parts[5]
