"""The unmodified Intel OmniPath Host Fabric Interface (HFI1) Linux driver.

This subpackage stands in for Intel's ~50K-SLOC ``hfi1.ko``:

* :mod:`repro.linux.hfi1.debuginfo` — the driver's internal structure
  definitions and the DWARF debug info embedded in the shipped binary
  (two released versions with different layouts, to exercise the
  extraction workflow).
* :mod:`repro.linux.hfi1.ioctls` — the driver's ioctl command surface
  (over a dozen commands; only three concern expected-receive TIDs).
* :mod:`repro.linux.hfi1.sdma` — building SDMA descriptor chains from
  pinned user pages, capped at ``PAGE_SIZE`` per request.
* :mod:`repro.linux.hfi1.driver` — the file-operations implementation
  (open/writev/ioctl/mmap/poll/lseek/close).
"""

from .driver import Hfi1Driver
from .ioctls import (HFI1_IOCTL_ACK_EVENT, HFI1_IOCTL_ASSIGN_CTXT,
                     HFI1_IOCTL_CREDIT_UPD, HFI1_IOCTL_CTXT_INFO,
                     HFI1_IOCTL_CTXT_RESET, HFI1_IOCTL_GET_VERS,
                     HFI1_IOCTL_POLL_TYPE, HFI1_IOCTL_RECV_CTRL,
                     HFI1_IOCTL_SET_PKEY, HFI1_IOCTL_TID_FREE,
                     HFI1_IOCTL_TID_INVAL_READ, HFI1_IOCTL_TID_UPDATE,
                     HFI1_IOCTL_USER_INFO, ALL_IOCTLS, TID_IOCTLS)

__all__ = ["ALL_IOCTLS", "Hfi1Driver", "TID_IOCTLS",
           "HFI1_IOCTL_ACK_EVENT", "HFI1_IOCTL_ASSIGN_CTXT",
           "HFI1_IOCTL_CREDIT_UPD", "HFI1_IOCTL_CTXT_INFO",
           "HFI1_IOCTL_CTXT_RESET", "HFI1_IOCTL_GET_VERS",
           "HFI1_IOCTL_POLL_TYPE", "HFI1_IOCTL_RECV_CTRL",
           "HFI1_IOCTL_SET_PKEY", "HFI1_IOCTL_TID_FREE",
           "HFI1_IOCTL_TID_INVAL_READ", "HFI1_IOCTL_TID_UPDATE",
           "HFI1_IOCTL_USER_INFO"]
