"""HFI1 driver structure definitions and shipped DWARF debug info.

Two released driver versions are modeled.  Between them, lock/debug
instrumentation blobs embedded at the head of several structures change
size — the kind of silent layout drift that breaks hand-copied headers but
is handled "on the order of hours" with DWARF extraction (section 3.2).

Version ``1.0.0`` reproduces the exact ``sdma_state`` layout of the
paper's Listing 1: 64 bytes total, ``current_state`` at offset 40,
``go_s99_running`` at 48, ``previous_state`` at 52.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.dwarf import ModuleBinary, emit_dwarf
from ...core.structs import ARRAY, ENUM, PTR, U8, U16, U32, U64, CStructDef, Field

#: enum sdma_states values (subset)
SDMA_STATE_S00_HW_DOWN = 0
SDMA_STATE_S10_HW_START_UP_HALT_WAIT = 1
SDMA_STATE_S80_HW_FREEZE = 8
SDMA_STATE_S99_RUNNING = 9

#: user_sdma_pkt_q states
SDMA_PKT_Q_ACTIVE = 1
SDMA_PKT_Q_FROZEN = 2

CURRENT_VERSION = "1.0.0"
NEXT_VERSION = "1.1.1"

#: per-version size of the embedded spinlock+list blob at the head of
#: sdma_state (lockdep changes it between releases)
_SS_BLOB = {"1.0.0": 40, "1.1.1": 48}
#: per-version size of the kobject blob at the head of hfi1_filedata
_KOBJ_BLOB = {"1.0.0": 64, "1.1.1": 72}
#: per-version size of the pci/device blob at the head of hfi1_devdata
_DEV_BLOB = {"1.0.0": 128, "1.1.1": 144}


def struct_defs(version: str = CURRENT_VERSION) -> Dict[str, CStructDef]:
    """The driver's internal structure definitions for ``version``."""
    if version not in _SS_BLOB:
        raise ValueError(f"unknown hfi1 driver version {version!r}")
    ss_blob = _SS_BLOB[version]
    kobj = _KOBJ_BLOB[version]
    dev_blob = _DEV_BLOB[version]

    sdma_state = CStructDef("sdma_state", [
        # spinlock + completion + list_head instrumentation blob
        Field("ss_blob", ARRAY(U8, ss_blob - 8)),
        Field("sdma_head_dma", PTR),
        Field("current_state", ENUM("sdma_states")),
        Field("current_op", U32),
        Field("go_s99_running", U32),
        Field("previous_state", ENUM("sdma_states")),
        Field("previous_op", U32),
        Field("last_event", U32),
    ])

    hfi1_filedata = CStructDef("hfi1_filedata", [
        Field("kobj", ARRAY(U8, kobj)),      # struct kobject
        Field("dd", PTR),                    # -> hfi1_devdata
        Field("ctxt", U16),
        Field("subctxt", U16),
        Field("rec_cpu_num", U32),
        Field("pq", PTR),                    # -> user_sdma_pkt_q
        Field("cq", PTR),                    # -> completion queue
        Field("tid_used", U32),
        Field("tid_limit", U32),
        Field("invalid_tid_idx", U32),
        Field("uctxt", PTR),                 # -> hfi1_ctxtdata
    ])

    hfi1_devdata = CStructDef("hfi1_devdata", [
        Field("pcidev_blob", ARRAY(U8, dev_blob)),
        Field("base_guid", U64),
        Field("flags", U64),
        Field("num_sdma", U32),
        Field("num_rcv_contexts", U32),
        Field("chip_rcv_array_count", U32),
        Field("freezelen", U32),
        Field("per_sdma", PTR),              # -> sdma_engine array
        Field("rcvarray_wc", PTR),
        Field("kregbase", PTR),
    ])

    user_sdma_pkt_q = CStructDef("user_sdma_pkt_q", [
        Field("busy_blob", ARRAY(U8, ss_blob // 2)),  # wait queue blob
        Field("ctxt", U16),
        Field("subctxt", U16),
        Field("n_reqs", U32),
        Field("state", U32),
        Field("n_max_reqs", U32),
        Field("dd", PTR),
    ])

    return {s.name: s for s in
            (sdma_state, hfi1_filedata, hfi1_devdata, user_sdma_pkt_q)}


def build_module(version: str = CURRENT_VERSION) -> ModuleBinary:
    """'Compile' the driver: emit the module binary with DWARF headers."""
    defs: List[CStructDef] = list(struct_defs(version).values())
    return emit_dwarf(defs, producer="icc (Intel) 17.0.4",
                      module="hfi1", version=version)
