"""The HFI1 Linux driver: file operations over the simulated HFI device.

This is the *unmodified* driver of the paper: PicoDriver never changes a
line here — it reads the structures this driver owns (through DWARF-derived
offsets) and cooperates through the same hardware rings, locks and
completion IRQs.

All driver state (``hfi1_devdata``, ``hfi1_filedata``, ``sdma_state``,
``user_sdma_pkt_q``) lives in the node's byte-backed kernel heap at
ABI-computed offsets, because the whole point of the reproduction is that
another kernel dereferences it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...config import FAULTS, GUARD, TRACE
from ...core.lockclasses import declare_lock_class
from ...core.structs import StructInstance
from ...errors import (BadSyscall, DeviceTimeout, DriverError,
                       TransientDeviceError)
from ...hw.hfi import Packet, RcvContext, SdmaRequestGroup
from ...obs.spans import track_of
from ...sim import Event
from ...units import PAGE_SIZE, USEC
from ..vfs import File, FileOps
from . import ioctls as ioc
from .debuginfo import (CURRENT_VERSION, SDMA_PKT_Q_ACTIVE,
                        SDMA_STATE_S10_HW_START_UP_HALT_WAIT,
                        SDMA_STATE_S99_RUNNING, build_module, struct_defs)
from .sdma import build_descs_from_pages

# The submit lock is the innermost lock of the cross-kernel hierarchy:
# both the Linux writev slow path and the pico fast path take it last,
# with nothing ranked above it.  Declared here because this driver owns
# the lock word (PicoDriver only borrows it).
declare_lock_class(
    "hfi1.sdma_submit", rank=20, subsystem="linux/hfi1",
    attrs=("sdma_lock",),
    doc="serializes SDMA ring submission across Linux and McKernel")

#: fixed cost of context setup in open() beyond the generic open path
_CTXT_SETUP_COST = 3.2 * USEC
#: flat cost of the administrative ioctls
_ADMIN_IOCTL_COST = 0.7 * USEC
#: device (PIO/credit/rcvhdr) mmap cost
_DEVICE_MMAP_COST = 1.9 * USEC


@dataclass
class DriverFileState:
    """Driver-private per-open state (rooted at ``file->private_data``)."""

    ctxt: RcvContext
    fdata: StructInstance
    pq: StructInstance
    tids: Dict[int, int] = field(default_factory=dict)  # tid -> nbytes


class Hfi1Driver(FileOps):
    """``hfi1.ko``: registered with the VFS as ``/dev/hfi1_<unit>``."""

    def __init__(self, version: str = CURRENT_VERSION, unit: int = 0):
        self.version = version
        self.unit = unit
        self.device_path = f"/dev/hfi1_{unit}"
        #: the shipped module binary — DWARF consumers extract from this
        self.binary = build_module(version)
        self._defs = struct_defs(version)
        self.kernel = None
        self.hfi = None
        self.heap = None
        self.devdata: Optional[StructInstance] = None
        self.engine_states: List[StructInstance] = []
        self._files: Dict[int, DriverFileState] = {}  # private_data -> state
        #: cross-kernel callback registry, installed by the machine builder
        #: when an LWK is present
        self.callbacks = None
        #: engines whose halt recovery is already queued/running
        self._recovering = set()
        #: submitters parked until an engine re-enters S99_RUNNING
        self._engine_waiters: Dict[int, List[Event]] = {}
        #: optional :class:`repro.guard.GuardManager` for this device
        #: (installed by the machine builder when the guard plane is
        #: enabled; ``None`` otherwise)
        self.guard = None

    # -- module load ---------------------------------------------------------

    def probe(self, kernel) -> None:
        """Module init: allocate device data, register chrdev and IRQs."""
        self.kernel = kernel
        self.hfi = kernel.node.hfi
        self.heap = kernel.node.kheap
        params = kernel.params
        self.devdata = StructInstance(self._defs["hfi1_devdata"], self.heap)
        self.devdata.set("num_sdma", params.nic.sdma_engines)
        self.devdata.set("num_rcv_contexts", 160)
        self.devdata.set("chip_rcv_array_count", params.nic.rcv_array_entries)
        self.devdata.set("base_guid", 0x0011_7501_0100_0000 + self.unit)
        for _ in range(params.nic.sdma_engines):
            state = StructInstance(self._defs["sdma_state"], self.heap)
            state.set("current_state", SDMA_STATE_S99_RUNNING)
            state.set("go_s99_running", 1)
            state.set("previous_state", SDMA_STATE_S99_RUNNING)
            self.engine_states.append(state)
        # SDMA submission lock: a spin lock in shared kernel memory, so a
        # co-kernel with a compatible implementation (and a unified address
        # space) can synchronize with us (section 3.3)
        from ...core.sync import CrossKernelSpinLock
        self.sdma_lock = CrossKernelSpinLock(kernel.sim, self.heap,
                                             name="hfi1.sdma_submit",
                                             tracer=kernel.tracer)
        kernel.vfs.register_chrdev(self.device_path, self)
        # the device-model surface (sysfs) stays entirely in Linux
        from ..device_model import Device
        self.device = Device(f"hfi1_{self.unit}", "infiniband")
        self.device.add_attr("boardversion", f"ChipABI 3.0, {self.version}")
        self.device.add_attr("hw_rev", 0x10)
        self.device.add_attr("nctxts",
                             lambda: self.devdata.get("num_rcv_contexts"))
        self.device.add_attr("serial", f"0x{self.devdata.get('base_guid'):x}")
        self.device.add_attr("tids_in_use", lambda: self.hfi.tids_in_use)
        kernel.devices.register(self.device)
        self.hfi.irq_dispatcher = self._irq
        self.hfi.error_dispatcher = self._sdma_error_irq

    def file_state(self, file: File) -> DriverFileState:
        """Driver per-open state for a file (via private_data)."""
        state = self._files.get(file.private_data)
        if state is None:
            raise DriverError(f"{self.device_path}: stale private_data "
                              f"{file.private_data!r}")
        return state

    def file_state_by_addr(self, private_data: int) -> DriverFileState:
        """Used by the PicoDriver, which holds the raw address."""
        state = self._files.get(private_data)
        if state is None:
            raise DriverError(f"no hfi1_filedata at {private_data:#x}")
        return state

    # -- file operations ---------------------------------------------------------

    def open(self, kernel, file: File, task):
        """Generator: allocate a context + hfi1_filedata/pkt_q structs."""
        yield kernel.sim.timeout(_CTXT_SETUP_COST)
        ctxt = self.hfi.alloc_context(owner=task.name)
        fdata = StructInstance(self._defs["hfi1_filedata"], self.heap)
        pq = StructInstance(self._defs["user_sdma_pkt_q"], self.heap)
        fdata.set("dd", self.devdata.addr)
        fdata.set("ctxt", ctxt.ctxt_id)
        fdata.set("pq", pq.addr)
        fdata.set("tid_limit", kernel.params.nic.rcv_array_entries)
        pq.set("ctxt", ctxt.ctxt_id)
        pq.set("state", SDMA_PKT_Q_ACTIVE)
        pq.set("n_max_reqs", kernel.params.nic.sdma_ring_size)
        pq.set("dd", self.devdata.addr)
        file.private_data = fdata.addr
        self._files[fdata.addr] = DriverFileState(ctxt, fdata, pq)

    def release(self, kernel, file: File, task):
        """Generator: free the context, TIDs and driver structs."""
        state = self._files.pop(file.private_data, None)
        if state is None:
            return
        yield kernel.sim.timeout(_CTXT_SETUP_COST / 2)
        if state.tids:
            self.hfi.unprogram_tids(list(state.tids))
        self.hfi.free_context(state.ctxt)
        state.fdata.free()
        state.pq.free()

    # -- SDMA send (the fast-path writev of section 2.2.2) ----------------------

    def writev(self, kernel, file: File, task, iovecs):
        """``writev(fd, iovecs)``: iovec 0 is the request header, the rest
        describe user buffers to transfer via SDMA."""
        if len(iovecs) < 2:
            raise BadSyscall("hfi1 writev needs a header iovec and at "
                             "least one data iovec")
        meta = iovecs[0]
        state = self.file_state(file)
        sc = kernel.params.syscall
        mem = kernel.params.mem

        cost = sc.writev_base
        pages: List[int] = []
        total = 0
        first_offset = None
        for vaddr, length in iovecs[1:]:
            iov_pages, gup_cost = kernel.mm.get_user_pages(task, vaddr, length)
            cost += gup_cost
            if first_offset is None:
                first_offset = vaddr % PAGE_SIZE
            pages.extend(iov_pages)
            total += length
        # The Linux driver submits at most PAGE_SIZE per request (sec. 3.4).
        descs = build_descs_from_pages(pages, first_offset or 0, total)
        cost += len(descs) * sc.desc_build
        meta_addr = self.heap.kmalloc(192)
        cost += mem.kmalloc_cost
        yield kernel.sim.timeout(cost)

        state.pq.add("n_reqs", 1)
        packet = Packet(kind=meta.get("kind", "eager"),
                        src_node=self.hfi.node_id,
                        dst_node=meta["dst_node"], dst_ctxt=meta["dst_ctxt"],
                        nbytes=total, tag=meta.get("tag"),
                        payload=meta.get("payload"),
                        tids=tuple(meta.get("tids", ())),
                        seq=meta.get("seq"), csum=meta.get("csum"))
        completion = meta.get("completion")
        pq_struct = state.pq

        def complete(group: SdmaRequestGroup):
            # runs in IRQ context on a Linux CPU; returns a generator so
            # the cleanup cost is charged there
            def cleanup():
                for addr in group.meta_addrs:
                    self.heap.kfree(addr)
                yield kernel.sim.timeout(mem.kfree_cost * len(group.meta_addrs))
                pq_struct.add("n_reqs", -1)
                if completion is not None:
                    completion.succeed(group)
            return cleanup()

        group = SdmaRequestGroup(descriptors=descs, packet=packet,
                                 on_complete=complete, owner_kernel="linux",
                                 meta_addrs=[meta_addr])
        span = TRACE.collector.begin_span(
            "hfi1.writev", track_of(self), cat="driver",
            args={"nbytes": total, "descs": len(descs)}) \
            if TRACE.enabled else None
        if TRACE.enabled:
            group.trace_ctx = span
        try:
            if GUARD.enabled and self.guard is not None:
                # suspended device: park on the queued-IO list; resume()
                # replays us in arrival order
                yield from self.guard.park_if_suspended()
            engine = self.hfi.pick_engine()
            yield from self._await_engine_running(engine)
            yield from self.sdma_lock.acquire("linux", kernel.aspace)
            try:
                yield from engine.submit(group)
            finally:
                self.sdma_lock.release("linux")
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        return total

    # -- ioctl surface -------------------------------------------------------------

    def ioctl(self, kernel, file: File, task, cmd, arg):
        """Generator: dispatch the driver's 13 ioctl commands."""
        state = self.file_state(file)
        if cmd == ioc.HFI1_IOCTL_TID_UPDATE:
            return (yield from self._tid_update(kernel, state, task, arg))
        if cmd == ioc.HFI1_IOCTL_TID_FREE:
            return (yield from self._tid_free(kernel, state, arg))
        if cmd == ioc.HFI1_IOCTL_TID_INVAL_READ:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            idx = state.fdata.get("invalid_tid_idx")
            state.fdata.set("invalid_tid_idx", 0)
            return list(range(idx))
        if cmd == ioc.HFI1_IOCTL_ASSIGN_CTXT:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return {"ctxt": state.ctxt.ctxt_id, "subctxt": 0}
        if cmd == ioc.HFI1_IOCTL_CTXT_INFO:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return {"ctxt": state.ctxt.ctxt_id,
                    "rcvtids": state.fdata.get("tid_limit"),
                    "credits": 64}
        if cmd == ioc.HFI1_IOCTL_USER_INFO:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return {"hfi1_version": self.version,
                    "num_sdma": self.devdata.get("num_sdma")}
        if cmd == ioc.HFI1_IOCTL_GET_VERS:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return 6  # user interface version
        if cmd in (ioc.HFI1_IOCTL_CREDIT_UPD, ioc.HFI1_IOCTL_RECV_CTRL,
                   ioc.HFI1_IOCTL_POLL_TYPE, ioc.HFI1_IOCTL_ACK_EVENT,
                   ioc.HFI1_IOCTL_SET_PKEY, ioc.HFI1_IOCTL_CTXT_RESET):
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return 0
        raise BadSyscall(f"hfi1: unknown ioctl {cmd:#x}")

    def _tid_update(self, kernel, state: DriverFileState, task, arg):
        """Register expected-receive buffers: pin pages, program RcvArray
        entries, return the TIDs (section 2.2.2)."""
        vaddr, length = arg["vaddr"], arg["length"]
        sc = kernel.params.syscall
        nic = kernel.params.nic
        inj = self.hfi.injector
        if FAULTS.enabled and inj is not None and inj.fires("tid.transient"):
            # The programming raced a receive-array update: the real
            # driver returns -EAGAIN after burning the entry-path cost.
            yield kernel.sim.timeout(sc.tid_ioctl_base)
            raise TransientDeviceError("TID_UPDATE raced RcvArray update")
        pages, gup_cost = kernel.mm.get_user_pages(task, vaddr, length)
        # one RcvArray entry per base page: the unmodified driver derives
        # spans from the page list, so contiguity is invisible to it
        spans = []
        remaining = length
        first_off = vaddr % PAGE_SIZE
        for i, pa in enumerate(pages):
            start = first_off if i == 0 else 0
            chunk = min(PAGE_SIZE - start, remaining)
            spans.append((pa + start, chunk))
            remaining -= chunk
        entries = self.hfi.program_tids(state.ctxt, spans)
        cost = (sc.tid_ioctl_base + gup_cost
                + len(entries) * nic.tid_program_cost)
        yield kernel.sim.timeout(cost)
        for e, (pa, nbytes) in zip(entries, spans):
            state.tids[e.tid] = nbytes
        state.fdata.set("tid_used", len(state.tids))
        return [e.tid for e in entries]

    def _tid_free(self, kernel, state: DriverFileState, arg):
        tids = list(arg["tids"])
        for tid in tids:
            if tid not in state.tids:
                raise DriverError(f"TID_FREE of unowned tid {tid}")
        self.hfi.unprogram_tids(tids)
        for tid in tids:
            del state.tids[tid]
        state.fdata.set("tid_used", len(state.tids))
        yield kernel.sim.timeout(
            kernel.params.syscall.tid_ioctl_base
            + len(tids) * kernel.params.nic.tid_program_cost)
        return len(tids)

    # -- mmap / poll -------------------------------------------------------------------

    def mmap(self, kernel, file: File, task, length):
        """Map device resources (PIO credit/send buffers, rcvhdrq) into
        user space — how PSM gets its OS-bypass window."""
        yield kernel.sim.timeout(_DEVICE_MMAP_COST)
        state = self.file_state(file)
        return 0x7FFF_0000_0000 + state.ctxt.ctxt_id * 0x10_0000

    def poll(self, kernel, file: File, task):
        """Report receive backlog (POLLIN count)."""
        state = self.file_state(file)
        return len(state.ctxt.eager_backlog)
        yield  # pragma: no cover

    # -- SDMA halt recovery ------------------------------------------------------------

    def _sdma_error_irq(self, engine, reason: str) -> None:
        """SDMA error IRQ top half: publish "not running" into the shared
        engine state *synchronously* (so any fast path consulting the
        struct view backs off immediately), then queue the bottom-half
        drain/restart on a Linux CPU."""
        if engine.index in self._recovering:
            return
        self._recovering.add(engine.index)
        if GUARD.enabled and self.guard is not None:
            # halt events feed the per-engine breaker exactly once per
            # recovery cycle (the dedup above keeps retriggered IRQs out)
            self.guard.record_failure(self.guard.engine_path(engine.index),
                                      reason)
        # racy read by design: the fast path polls go_s99_running
        # lock-free and tolerates staleness by bailing to the slow
        # path (the hfi1 __sdma_running idiom)
        self.engine_states[engine.index].set("go_s99_running", 0)  # pd-ignore[PD015.5]
        self.hfi.tracer.count("hfi.sdma_recoveries")
        self.kernel.interrupts.deliver(self._sdma_recover, engine, reason)

    def _sdma_recover(self, engine, reason: str):
        """Bottom half (generator on a Linux CPU): walk the engine through
        the halt-wait state, drain/reinit, and return it to S99_RUNNING —
        the hfi1 ``sdma_state`` machine collapsed to its observable
        states."""
        state = self.engine_states[engine.index]
        state.set("previous_state", state.get("current_state"))
        # racy read by design: see go_s99_running above — the fast
        # path's state probe is advisory; any stale value only sends
        # the request down the always-correct slow path
        state.set("current_state", SDMA_STATE_S10_HW_START_UP_HALT_WAIT)  # pd-ignore[PD015.5]
        state.set("go_s99_running", 0)
        yield self.kernel.sim.timeout(self.kernel.params.nic.sdma_restart_cost)
        state.set("previous_state", SDMA_STATE_S10_HW_START_UP_HALT_WAIT)
        state.set("current_state", SDMA_STATE_S99_RUNNING)
        state.set("go_s99_running", 1)
        engine.restart()
        self._recovering.discard(engine.index)
        for waiter in self._engine_waiters.pop(engine.index, []):
            # a waiter may already have fired its submit-side deadline
            if not waiter.triggered:
                waiter.succeed()

    def _await_engine_running(self, engine):
        # Generator: the slow path blocks (it can afford to) until the
        # engine's published state is S99_RUNNING again.  If the engine
        # halted without an error IRQ having fired yet, kick recovery
        # ourselves — this is the driver's submit-side halt detection.
        # The wait is bounded by sdma_wait_timeout: an engine that never
        # returns to S99_RUNNING (recovery wedged, hardware dead) must
        # surface a typed DeviceTimeout instead of hanging the submitter
        # forever.
        sim = self.kernel.sim
        state = self.engine_states[engine.index]
        deadline = sim.now + self.kernel.params.nic.sdma_wait_timeout
        while (state.get("current_state") != SDMA_STATE_S99_RUNNING
                or state.get("go_s99_running") != 1):
            if sim.now >= deadline:
                self.hfi.tracer.count("hfi.sdma_wait_timeouts")
                raise DeviceTimeout(
                    f"SDMA engine {engine.index} did not return to "
                    f"S99_RUNNING within "
                    f"{self.kernel.params.nic.sdma_wait_timeout * 1e6:.0f}us")
            self._sdma_error_irq(engine, "halt detected at submit")
            waiter = Event(sim)
            self._engine_waiters.setdefault(engine.index, []).append(waiter)
            # wake at the deadline even if recovery never completes
            sim.timeout(deadline - sim.now).add_callback(
                lambda _evt, w=waiter: None if w.triggered else w.succeed())
            yield waiter

    # -- interrupt handling ----------------------------------------------------------------

    def _irq(self, group: SdmaRequestGroup) -> None:
        """HFI IRQ dispatcher: route to a Linux CPU via the interrupt
        controller, then run the completion callback there."""
        self.kernel.interrupts.deliver(self._sdma_complete, group)

    def _sdma_complete(self, group: SdmaRequestGroup):
        """Runs on a Linux OS CPU in IRQ context."""
        if TRACE.enabled:
            # flows from the submitting writev span; completion waiters
            # (PSM send-side) flow from this instant in turn
            group.trace_ctx = TRACE.collector.instant_span(
                "hfi1.irq", getattr(self, "trace_irq_track", "irq"),
                cat="irq", args={"nbytes": group.total_bytes},
                flow_from=group.trace_ctx)
        if group.callback_addr is not None:
            if self.callbacks is None:
                raise DriverError("completion carries a callback address "
                                  "but no callback registry is installed")
            result = self.callbacks.invoke("linux", group.callback_addr, group)
        elif group.on_complete is not None:
            result = group.on_complete(group)
        else:
            result = None
        if result is not None and hasattr(result, "send"):
            return result
        return None
