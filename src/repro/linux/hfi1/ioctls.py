"""The HFI1 driver's ioctl command surface.

The driver implements "over a dozen different functionalities" through
``ioctl``, of which exactly three concern expected-receive buffer
registration (paper section 2.2.2).  The PicoDriver claims only those
three; everything else stays on the offloaded slow path.
"""

HFI1_IOCTL_ASSIGN_CTXT = 0xE1      # assign a receive context to the fd
HFI1_IOCTL_CTXT_INFO = 0xE2        # query context geometry
HFI1_IOCTL_USER_INFO = 0xE3        # query user parameters / capabilities
HFI1_IOCTL_TID_UPDATE = 0xE4       # register expected-receive buffers
HFI1_IOCTL_TID_FREE = 0xE5         # unregister expected-receive buffers
HFI1_IOCTL_CREDIT_UPD = 0xE6       # force a PIO credit return
HFI1_IOCTL_RECV_CTRL = 0xE8        # start/stop receive of a context
HFI1_IOCTL_POLL_TYPE = 0xE9        # set poll type
HFI1_IOCTL_ACK_EVENT = 0xEA        # acknowledge driver events
HFI1_IOCTL_SET_PKEY = 0xEB         # change the partition key
HFI1_IOCTL_CTXT_RESET = 0xEC       # reset the context's send engine
HFI1_IOCTL_TID_INVAL_READ = 0xED   # read TIDs invalidated by MMU notifiers
HFI1_IOCTL_GET_VERS = 0xEE         # query the user interface version

ALL_IOCTLS = (
    HFI1_IOCTL_ASSIGN_CTXT, HFI1_IOCTL_CTXT_INFO, HFI1_IOCTL_USER_INFO,
    HFI1_IOCTL_TID_UPDATE, HFI1_IOCTL_TID_FREE, HFI1_IOCTL_CREDIT_UPD,
    HFI1_IOCTL_RECV_CTRL, HFI1_IOCTL_POLL_TYPE, HFI1_IOCTL_ACK_EVENT,
    HFI1_IOCTL_SET_PKEY, HFI1_IOCTL_CTXT_RESET, HFI1_IOCTL_TID_INVAL_READ,
    HFI1_IOCTL_GET_VERS,
)

#: the three reception-buffer-registration commands (section 2.2.2)
TID_IOCTLS = (HFI1_IOCTL_TID_UPDATE, HFI1_IOCTL_TID_FREE,
              HFI1_IOCTL_TID_INVAL_READ)
