"""SDMA descriptor-chain construction.

The central asymmetry of the paper lives here:

* :func:`build_descs_from_pages` — what the Linux driver does: iterate the
  page list returned by ``get_user_pages()`` and emit one request per base
  page, never exceeding ``PAGE_SIZE`` "because page boundaries must be
  checked carefully" (section 3.4).  Physically contiguous neighbours and
  large pages are invisible to it.

* :func:`build_descs_from_spans` — what the HFI PicoDriver does: walk the
  physically contiguous spans of pinned LWK page tables and emit requests
  up to the hardware maximum (10KB).
"""

from __future__ import annotations

from typing import List, Tuple

from ...errors import DriverError
from ...hw.hfi import SdmaDescriptor
from ...units import PAGE_SIZE


def build_descs_from_pages(pages: List[int], offset: int, length: int,
                           max_request: int = PAGE_SIZE) -> List[SdmaDescriptor]:
    """Linux-driver style: one descriptor per base page.

    ``pages`` are the physical addresses of consecutive 4KB pages backing
    the buffer; ``offset`` is the byte offset into the first page.
    """
    if length <= 0:
        raise DriverError(f"bad SDMA length {length}")
    if offset >= PAGE_SIZE:
        raise DriverError(f"offset {offset} outside the first page")
    if max_request > PAGE_SIZE:
        # The Linux driver never exceeds PAGE_SIZE even though the
        # hardware accepts more (section 3.4).
        max_request = PAGE_SIZE
    descs: List[SdmaDescriptor] = []
    remaining = length
    for i, pa in enumerate(pages):
        if remaining <= 0:
            break
        start = offset if i == 0 else 0
        chunk = min(PAGE_SIZE - start, remaining, max_request)
        descs.append(SdmaDescriptor(pa + start, chunk))
        remaining -= chunk
    if remaining > 0:
        raise DriverError(
            f"page list covers only {length - remaining} of {length} bytes")
    return descs


def build_descs_from_spans(spans: List[Tuple[int, int]],
                           max_request: int) -> List[SdmaDescriptor]:
    """PicoDriver style: chop physically contiguous spans at the hardware
    maximum only."""
    if max_request <= 0:
        raise DriverError(f"bad max request size {max_request}")
    descs: List[SdmaDescriptor] = []
    for pa, nbytes in spans:
        if nbytes <= 0:
            raise DriverError(f"bad span length {nbytes}")
        off = 0
        while off < nbytes:
            chunk = min(max_request, nbytes - off)
            descs.append(SdmaDescriptor(pa + off, chunk))
            off += chunk
    return descs


def split_spans_for_tids(spans: List[Tuple[int, int]],
                         max_span: int) -> List[Tuple[int, int]]:
    """Split physical spans so each fits one RcvArray entry."""
    out: List[Tuple[int, int]] = []
    for pa, nbytes in spans:
        off = 0
        while off < nbytes:
            chunk = min(max_span, nbytes - off)
            out.append((pa + off, chunk))
            off += chunk
    return out
