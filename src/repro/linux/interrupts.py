"""IRQ routing: device interrupts are handled on Linux CPUs.

McKernel does not handle device interrupts at all (section 3.3) — HFI
completion IRQs always land on a Linux OS core, even for transfers the
PicoDriver initiated.  The handler therefore competes with offloaded
syscall service for the same small pool of Linux CPUs.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.lockdep import irq_enter, irq_exit, tag_irq_generator
from ..params import Params
from ..sim import Resource, Simulator, Tracer


class InterruptController:
    """Dispatches IRQs onto the Linux OS-CPU pool."""

    def __init__(self, sim: Simulator, params: Params, os_cpus: Resource,
                 tracer: Tracer):
        self.sim = sim
        self.params = params
        self.os_cpus = os_cpus
        self.tracer = tracer

    def deliver(self, handler: Callable, *args) -> None:
        """Raise an IRQ: after delivery latency, run ``handler`` (a
        generator function) on a Linux CPU."""
        self.tracer.count("irq.delivered")
        self.sim.process(self._service(handler, args))

    def _service(self, handler, args):
        yield self.sim.timeout(self.params.nic.irq_latency)
        with self.os_cpus.request() as cpu:
            yield cpu
            t0 = self.sim.now
            yield self.sim.timeout(self.params.nic.irq_handler_cost)
            # top half runs in IRQ context; a bottom-half generator is
            # tagged per resume step so interleaved processes are not
            # mis-attributed while it is suspended
            irq_enter("linux")
            try:
                result = handler(*args)
            finally:
                irq_exit("linux")
            if result is not None and hasattr(result, "send"):
                yield self.sim.process(tag_irq_generator(result, "linux"))
            self.tracer.record("irq.service", self.sim.now - t0)
