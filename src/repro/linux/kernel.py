"""The Linux kernel: syscall dispatch, fd tables, drivers, OS CPUs.

In the Linux OS configuration application ranks run here natively; in the
multi-kernel configurations this kernel serves offloaded syscalls through
the proxy processes and handles all device IRQs, using only the few cores
IHK left it.
"""

from __future__ import annotations

from typing import Optional

from ..config import TRACE
from ..errors import BadSyscall
from ..hw.node import Node
from ..obs.spans import track_of
from ..kernels.base import KernelBase, Task
from ..params import Params
from ..sim import Resource, Simulator, Tracer
from ..units import pages_for
from ..core.address_space import KernelAddressSpace, linux_layout
from .interrupts import InterruptController
from .mm import LinuxMM
from .noise import NoNoise, NoiseModel
from .vfs import File, VFS


class LinuxKernel(KernelBase):
    """One Linux instance per node."""

    name = "linux"

    def __init__(self, sim: Simulator, params: Params, node: Node,
                 rng_factory, noisy_app_cores: bool = True,
                 os_cores: Optional[int] = None,
                 tracer: Optional[Tracer] = None):
        super().__init__(sim, params, tracer)
        self.node = node
        self.rng_factory = rng_factory
        self.noisy_app_cores = noisy_app_cores
        self.aspace: KernelAddressSpace = linux_layout()
        self.vfs = VFS()
        from .device_model import DeviceModel
        self.devices = DeviceModel()
        self.mm = LinuxMM(params, node.mcdram, node.ddr,
                          rng_factory.stream("linux.mm", node.node_id))
        n_os = params.node.os_cores if os_cores is None else os_cores
        #: the OS-activity CPU pool: offload service, IRQs, daemons.
        self.os_cpus = Resource(sim, capacity=n_os,
                                name=f"node{node.node_id}.linux.os_cpus")
        self.interrupts = InterruptController(sim, params, self.os_cpus,
                                              self.tracer)
        self.drivers = {}
        node.linux = self

    # -- driver loading ------------------------------------------------------

    def load_driver(self, driver) -> None:
        """Load a device driver module (registers its chrdev + IRQs)."""
        driver.probe(self)
        self.drivers[driver.device_path] = driver

    # -- time ------------------------------------------------------------------

    def noise_for(self, task: Task):
        """The noise model for a task (NoNoise on quiet cores)."""
        if self.noisy_app_cores:
            rng = task.rng if task.rng is not None else \
                self.rng_factory.stream("noise", self.node.node_id,
                                        task.core_id)
            return NoiseModel(self.params.noise, rng)
        return NoNoise()

    def execute(self, task: Task, seconds: float):
        """Generator: run computation, inflated by residual OS noise."""
        if seconds <= 0:
            return None
        noise = task.state.get("noise_model")
        if noise is None:
            noise = task.state["noise_model"] = self.noise_for(task)
        yield self.sim.timeout(noise.inflate(seconds))
        return None

    # -- syscalls ---------------------------------------------------------------

    def syscall(self, task: Task, name: str, *args):
        """Generator: entry cost + dispatch + per-call accounting."""
        t0 = self.sim.now
        span = TRACE.collector.begin_span(
            f"linux.{name}", track_of(self), cat="syscall",
            args={"task": task.name}) if TRACE.enabled else None
        try:
            yield self.sim.timeout(self.params.syscall.linux_entry)
            ret = yield from self._dispatch(task, name, args)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.account_syscall(name, self.sim.now - t0)
        return ret

    def _dispatch(self, task: Task, name: str, args: tuple):
        sc = self.params.syscall
        if name == "open":
            self.check_args(name, args, 1)
            path, = args
            yield self.sim.timeout(sc.open_cost)
            file = File(path, self.vfs.lookup(path))
            yield from file.ops.open(self, file, task)
            return self.vfs.install_fd(task.name, file)
        if name == "close":
            self.check_args(name, args, 1)
            fd, = args
            file = self.vfs.close_fd(task.name, fd)
            yield self.sim.timeout(sc.close_cost)
            yield from file.ops.release(self, file, task)
            return 0
        if name == "read":
            self.check_args(name, args, 2)
            fd, nbytes = args
            file = self.vfs.file_for(task.name, fd)
            yield self.sim.timeout(sc.read_cost)
            sysfs = self.devices.lookup_attr(file.path)
            if sysfs is not None:
                device, attr = sysfs
                return device.read_attr(attr)
            return nbytes
        if name == "writev":
            self.check_args(name, args, 2)
            fd, iovecs = args
            file = self.vfs.file_for(task.name, fd)
            return (yield from file.ops.writev(self, file, task, iovecs))
        if name == "ioctl":
            self.check_args(name, args, 3)
            fd, cmd, arg = args
            file = self.vfs.file_for(task.name, fd)
            return (yield from file.ops.ioctl(self, file, task, cmd, arg))
        if name == "poll":
            self.check_args(name, args, 1)
            fd, = args
            file = self.vfs.file_for(task.name, fd)
            yield self.sim.timeout(sc.poll_cost)
            return (yield from file.ops.poll(self, file, task))
        if name == "lseek":
            self.check_args(name, args, 2)
            fd, offset = args
            file = self.vfs.file_for(task.name, fd)
            yield self.sim.timeout(sc.read_cost)
            return (yield from file.ops.lseek(self, file, task, offset))
        if name == "mmap":
            return (yield from self._sys_mmap(task, args))
        if name == "munmap":
            self.check_args(name, args, 2)
            vaddr, length = args
            yield self.sim.timeout(sc.munmap_cost
                                   + pages_for(length) * sc.page_unmap_cost)
            self.mm.free_anonymous(task, vaddr, length)
            return 0
        if name == "munmap_shadow":
            # proxy-process address-space sync for an LWK-local munmap:
            # tear down the shadow mappings without touching LWK frames
            self.check_args(name, args, 2)
            _vaddr, length = args
            yield self.sim.timeout(sc.munmap_cost
                                   + pages_for(length) * sc.page_unmap_cost)
            return 0
        if name == "nanosleep":
            self.check_args(name, args, 1)
            duration, = args
            yield self.sim.timeout(sc.nanosleep_cost + duration)
            return 0
        raise BadSyscall(f"linux: unknown syscall {name!r}")

    def _sys_mmap(self, task: Task, args: tuple):
        sc = self.params.syscall
        if len(args) == 1:                       # anonymous: (length,)
            length, = args
            yield self.sim.timeout(sc.mmap_cost
                                   + pages_for(length) * sc.page_map_cost)
            return self.mm.alloc_anonymous(task, length)
        if len(args) == 2:                       # device: (fd, length)
            fd, length = args
            file = self.vfs.file_for(task.name, fd)
            yield self.sim.timeout(sc.mmap_cost)
            return (yield from file.ops.mmap(self, file, task, length))
        raise BadSyscall(f"mmap expects 1 or 2 args, got {len(args)}")
