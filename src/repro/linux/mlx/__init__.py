"""A Mellanox InfiniBand (mlx5-style) verbs driver model.

The paper's future work: "we intend to further extend this work by
porting memory registration routines from the Mellanox Infiniband
driver" (section 6).  Memory registration requires system calls
(section 1) — ``reg_mr`` pins user pages and programs the HCA's memory
translation table (MTT) — though it is "not necessarily in the critical
path of execution".

This subpackage provides the Linux-resident side: the uverbs character
device, its command surface, the driver structures (with versioned DWARF
debug info, like the HFI1 driver) and the per-page MTT programming the
PicoDriver port avoids.
"""

from .driver import MlxDriver
from .verbs import (MLX_CMD_CREATE_CQ, MLX_CMD_CREATE_PD, MLX_CMD_CREATE_QP,
                    MLX_CMD_DEREG_MR, MLX_CMD_QUERY_DEVICE, MLX_CMD_REG_MR,
                    ALL_VERB_COMMANDS, MEMREG_COMMANDS)

__all__ = ["ALL_VERB_COMMANDS", "MEMREG_COMMANDS", "MLX_CMD_CREATE_CQ",
           "MLX_CMD_CREATE_PD", "MLX_CMD_CREATE_QP", "MLX_CMD_DEREG_MR",
           "MLX_CMD_QUERY_DEVICE", "MLX_CMD_REG_MR", "MlxDriver"]
