"""mlx5 driver structures and shipped DWARF (versioned, like hfi1)."""

from __future__ import annotations

from typing import Dict

from ...core.dwarf import ModuleBinary, emit_dwarf
from ...core.structs import ARRAY, PTR, U8, U16, U32, U64, CStructDef, Field

CURRENT_VERSION = "4.3-1.0.1"
NEXT_VERSION = "4.4-2.0.7"

#: per-version size of the ib_device embedded blob at the head of
#: mlx5_ib_dev (changes between OFED releases)
_DEV_BLOB = {"4.3-1.0.1": 96, "4.4-2.0.7": 112}
#: per-version size of the ib_mr blob at the head of mlx5_ib_mr
_MR_BLOB = {"4.3-1.0.1": 48, "4.4-2.0.7": 56}


def struct_defs(version: str = CURRENT_VERSION) -> Dict[str, CStructDef]:
    """The mlx5 driver's structure definitions for ``version``."""
    if version not in _DEV_BLOB:
        raise ValueError(f"unknown mlx5 driver version {version!r}")
    mlx5_ib_dev = CStructDef("mlx5_ib_dev", [
        Field("ibdev", ARRAY(U8, _DEV_BLOB[version])),
        Field("fw_ver", U64),
        Field("mtt_entries_used", U32),
        Field("mtt_entries_max", U32),
        Field("num_ports", U16),
        Field("pad", U16),
        Field("mr_table", PTR),
    ])
    mlx5_ib_mr = CStructDef("mlx5_ib_mr", [
        Field("ibmr", ARRAY(U8, _MR_BLOB[version])),
        Field("lkey", U32),
        Field("rkey", U32),
        Field("iova", U64),
        Field("length", U64),
        Field("npages", U32),
        Field("access_flags", U32),
        Field("mtt_base", U64),
    ])
    return {s.name: s for s in (mlx5_ib_dev, mlx5_ib_mr)}


def build_module(version: str = CURRENT_VERSION) -> ModuleBinary:
    """'Compile' mlx5_ib.ko: module binary with DWARF headers."""
    return emit_dwarf(list(struct_defs(version).values()),
                      producer="gcc (OFED) 4.8.5", module="mlx5_ib",
                      version=version)
