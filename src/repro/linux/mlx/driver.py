"""The mlx5 uverbs driver: memory registration through the VFS.

``REG_MR`` is the expensive path: ``get_user_pages()`` over the region,
then one MTT (memory translation table) entry programmed per base page.
Contiguity is invisible to the unmodified driver, exactly as in hfi1's
TID path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...core.structs import StructInstance
from ...errors import BadSyscall, DriverError
from ...units import USEC
from ..vfs import File, FileOps
from . import verbs
from .debuginfo import CURRENT_VERSION, build_module, struct_defs

#: MTT entry write (device command interface is slower than MMIO)
MTT_PROGRAM_COST = 110e-9
#: fixed reg_mr handler cost (key allocation, MR bookkeeping)
REG_MR_BASE = 1.8 * USEC
DEREG_MR_BASE = 1.1 * USEC
_ADMIN_COST = 0.9 * USEC


@dataclass
class MemoryRegion:
    """Driver-side record of one registered MR."""

    mr: StructInstance
    owner: str
    spans: tuple = ()


@dataclass
class MlxFileState:
    """Per-open ucontext."""

    regions: Dict[int, MemoryRegion] = field(default_factory=dict)


class MlxDriver(FileOps):
    """``mlx5_ib.ko`` + ``ib_uverbs``: registered as /dev/infiniband/uverbs<n>."""

    def __init__(self, version: str = CURRENT_VERSION, unit: int = 0):
        self.version = version
        self.unit = unit
        self.device_path = f"/dev/infiniband/uverbs{unit}"
        self.binary = build_module(version)
        self._defs = struct_defs(version)
        self.kernel = None
        self.heap = None
        self.devdata: Optional[StructInstance] = None
        self._files: Dict[int, MlxFileState] = {}
        self._next_key = 0x1000
        #: optional :class:`~repro.guard.manager.GuardManager` for the
        #: memory-registration fast path (one ``memreg0`` breaker); the
        #: McKernel dispatcher reads it for admission routing
        self.guard = None

    # -- module load -------------------------------------------------------

    def probe(self, kernel) -> None:
        """Module init: device data, sysfs, chrdev registration."""
        self.kernel = kernel
        self.heap = kernel.node.kheap
        self.devdata = StructInstance(self._defs["mlx5_ib_dev"], self.heap)
        self.devdata.set("fw_ver", 0x10_0020_0300)
        self.devdata.set("mtt_entries_max", 1 << 20)
        self.devdata.set("num_ports", 1)
        kernel.vfs.register_chrdev(self.device_path, self)
        from ..device_model import Device
        self.device = Device(f"mlx5_{self.unit}", "infiniband")
        self.device.add_attr("fw_ver", lambda: hex(self.devdata.get("fw_ver")))
        self.device.add_attr("hca_type", "MT4115")
        self.device.add_attr("mtt_used",
                             lambda: self.devdata.get("mtt_entries_used"))
        kernel.devices.register(self.device)

    def file_state(self, file: File) -> MlxFileState:
        """Per-open ucontext for a file (via private_data)."""
        state = self._files.get(file.private_data)
        if state is None:
            raise DriverError(f"{self.device_path}: stale private_data")
        return state

    @property
    def mtt_entries_used(self) -> int:
        return self.devdata.get("mtt_entries_used")

    def take_mtt(self, entries: int) -> None:
        """Reserve MTT entries (DriverError when exhausted)."""
        used = self.devdata.get("mtt_entries_used")
        if used + entries > self.devdata.get("mtt_entries_max"):
            raise DriverError("MTT exhausted")
        self.devdata.set("mtt_entries_used", used + entries)

    def put_mtt(self, entries: int) -> None:
        """Return MTT entries to the pool."""
        self.devdata.set("mtt_entries_used",
                         self.devdata.get("mtt_entries_used") - entries)

    def alloc_key(self) -> int:
        """Allocate a fresh lkey (rkey = lkey + 1)."""
        self._next_key += 0x100
        return self._next_key

    # -- file operations -------------------------------------------------------

    def open(self, kernel, file: File, task):
        """Generator: allocate the per-open ucontext."""
        yield kernel.sim.timeout(2.0 * USEC)
        token = id(file)
        file.private_data = token
        self._files[token] = MlxFileState()

    def release(self, kernel, file: File, task):
        """Generator: free the ucontext and any leaked MRs."""
        state = self._files.pop(file.private_data, None)
        if state is None:
            return
        yield kernel.sim.timeout(1.0 * USEC)
        for lkey in list(state.regions):
            region = state.regions.pop(lkey)
            self.put_mtt(region.mr.get("npages"))
            region.mr.free()

    def ioctl(self, kernel, file: File, task, cmd, arg):
        """Generator: dispatch the uverbs command surface."""
        state = self.file_state(file)
        if cmd == verbs.MLX_CMD_REG_MR:
            return (yield from self._reg_mr(kernel, state, task, arg))
        if cmd == verbs.MLX_CMD_DEREG_MR:
            return (yield from self._dereg_mr(kernel, state, arg))
        if cmd == verbs.MLX_CMD_QUERY_DEVICE:
            yield kernel.sim.timeout(_ADMIN_COST)
            return {"fw_ver": self.devdata.get("fw_ver"),
                    "max_mr_size": 1 << 40}
        if cmd in verbs.ALL_VERB_COMMANDS:
            yield kernel.sim.timeout(_ADMIN_COST)
            return 0
        raise BadSyscall(f"mlx5: unknown verbs command {cmd:#x}")

    # -- memory registration -------------------------------------------------------

    def _reg_mr(self, kernel, state: MlxFileState, task, arg):
        vaddr, length = arg["vaddr"], arg["length"]
        if length <= 0:
            raise DriverError(f"reg_mr of non-positive length {length}")
        pages, gup_cost = kernel.mm.get_user_pages(task, vaddr, length)
        # one MTT entry per base page: the unmodified driver ignores
        # physical contiguity
        entries = len(pages)
        self.take_mtt(entries)
        mr = StructInstance(self._defs["mlx5_ib_mr"], self.heap)
        lkey = self.alloc_key()
        mr.set("lkey", lkey)
        mr.set("rkey", lkey + 1)
        mr.set("iova", vaddr)
        mr.set("length", length)
        mr.set("npages", entries)
        mr.set("mtt_base", pages[0])
        state.regions[lkey] = MemoryRegion(mr=mr, owner=task.name)
        yield kernel.sim.timeout(REG_MR_BASE + gup_cost
                                 + entries * MTT_PROGRAM_COST)
        return {"lkey": lkey, "rkey": lkey + 1}

    def _dereg_mr(self, kernel, state: MlxFileState, arg):
        lkey = arg["lkey"]
        region = state.regions.pop(lkey, None)
        if region is None:
            raise DriverError(f"dereg_mr of unknown lkey {lkey:#x}")
        entries = region.mr.get("npages")
        self.put_mtt(entries)
        region.mr.free()
        yield kernel.sim.timeout(DEREG_MR_BASE
                                 + entries * MTT_PROGRAM_COST / 2)
        return 0
