"""The uverbs command surface (subset).

Like the HFI1 ioctl table, only a small slice concerns the performance-
relevant operation: of the command set, exactly two deal with memory
registration, and those are what an InfiniBand PicoDriver would claim.
"""

MLX_CMD_QUERY_DEVICE = 0x01     # device attributes
MLX_CMD_CREATE_PD = 0x02        # protection domain
MLX_CMD_CREATE_CQ = 0x03        # completion queue
MLX_CMD_CREATE_QP = 0x04        # queue pair
MLX_CMD_MODIFY_QP = 0x05        # QP state machine
MLX_CMD_REG_MR = 0x06           # register a memory region (pins + MTT)
MLX_CMD_DEREG_MR = 0x07         # unregister a memory region
MLX_CMD_CREATE_AH = 0x08        # address handle
MLX_CMD_QUERY_PORT = 0x09       # port attributes

ALL_VERB_COMMANDS = (
    MLX_CMD_QUERY_DEVICE, MLX_CMD_CREATE_PD, MLX_CMD_CREATE_CQ,
    MLX_CMD_CREATE_QP, MLX_CMD_MODIFY_QP, MLX_CMD_REG_MR,
    MLX_CMD_DEREG_MR, MLX_CMD_CREATE_AH, MLX_CMD_QUERY_PORT,
)

#: the memory-registration pair a PicoDriver claims
MEMREG_COMMANDS = (MLX_CMD_REG_MR, MLX_CMD_DEREG_MR)
