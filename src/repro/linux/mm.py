"""Linux memory management: fragmented anonymous memory and
``get_user_pages()``.

Anonymous mappings are backed by whatever 4KB frames the buddy allocator
has left — effectively scattered after any uptime — so virtually contiguous
buffers are almost never physically contiguous.  That is why the HFI1
driver "utilizes only up to PAGE_SIZE long SDMA requests" (section 3.4):
it cannot assume more.

``get_user_pages()`` resolves and *pins* the base pages backing a user
range; the per-page cost is what the PicoDriver avoids by iterating LWK
page tables over already-pinned memory.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import BadSyscall
from ..hw.memory import FrameAllocator
from ..kernels.base import Task
from ..params import Params
from ..units import PAGE_SIZE, align_up, pages_for


class LinuxMM:
    """Per-node Linux memory manager."""

    def __init__(self, params: Params, mcdram: FrameAllocator,
                 ddr: FrameAllocator, rng: np.random.Generator):
        self.params = params
        self.mcdram = mcdram
        self.ddr = ddr
        self.rng = rng

    def _pool_for(self, n_frames: int) -> FrameAllocator:
        """MCDRAM first, DDR when it does not fit (section 4.2 policy)."""
        return self.mcdram if self.mcdram.free_frames >= n_frames else self.ddr

    def alloc_anonymous(self, task: Task, length: int) -> int:
        """Back an anonymous mmap with scattered 4KB frames; returns the
        mapped virtual address."""
        if length <= 0:
            raise BadSyscall(f"mmap of non-positive length {length}")
        n = pages_for(length)
        pool = self._pool_for(n)
        extents = pool.alloc_scattered(
            n, self.rng, contig_prob=self.params.mem.linux_contig_prob)
        va = task.mmap_cursor
        task.mmap_cursor = align_up(task.mmap_cursor + length, PAGE_SIZE)
        task.pagetable.map_extents(va, extents, pinned=False,
                                   use_large_pages=False)
        task.state.setdefault("vma_pool", {})[va] = pool
        return va

    def free_anonymous(self, task: Task, vaddr: int, length: int) -> None:
        """Unmap an anonymous region and return its frames."""
        released = task.pagetable.unmap_range(vaddr, align_up(length, PAGE_SIZE))
        pool = task.state.get("vma_pool", {}).pop(vaddr, self.ddr)
        pool.free(released)

    def get_user_pages(self, task: Task, vaddr: int,
                       length: int) -> Tuple[List[int], float]:
        """Resolve + pin base pages; returns (physical pages, CPU cost)."""
        pages = task.pagetable.pages(vaddr, length)
        cost = len(pages) * self.params.syscall.gup_per_page
        return pages, cost
