"""Residual OS noise on Linux application cores.

The paper's Linux baseline is Fujitsu's production environment with
``nohz_full`` on application cores (section 4.1) — most of the classical
noise is gone, but housekeeping ticks and asynchronous kernel work
(kworkers, RCU) still steal cycles occasionally.  McKernel cores are
tickless and noise-free, which is why it can edge out Linux on
synchronization-heavy workloads even before the PicoDriver (Nekbone,
Figure 5b): collectives turn the *maximum* per-rank delay into everyone's
delay.

The model inflates a compute interval ``dt`` by the deterministic tick
component plus Poisson-arriving bursts with log-normal duration.
"""

from __future__ import annotations

import math

import numpy as np

from ..params import NoiseParams


class NoiseModel:
    """Per-core noise: ``inflate(dt)`` returns the noisy wall time."""

    def __init__(self, params: NoiseParams, rng: np.random.Generator):
        self.params = params
        self.rng = rng
        self._mu = math.log(params.burst_log_median)
        self._sigma = params.burst_log_sigma

    def sample_extra(self, dt: float) -> float:
        """Noise seconds stolen during ``dt`` seconds of computation."""
        if dt <= 0:
            return 0.0
        p = self.params
        extra = dt * p.tick_rate_hz * p.tick_cost
        n_bursts = self.rng.poisson(dt * p.burst_rate_hz)
        if n_bursts:
            extra += float(np.exp(self.rng.normal(
                self._mu, self._sigma, size=n_bursts)).sum())
        return extra

    def inflate(self, dt: float) -> float:
        """Wall time of ``dt`` seconds of work under noise."""
        return dt + self.sample_extra(dt)


class NoNoise:
    """The LWK personality: computation takes exactly as long as it takes."""

    @staticmethod
    def sample_extra(dt: float) -> float:
        return 0.0

    @staticmethod
    def inflate(dt: float) -> float:
        return dt
