"""The pxd replicated block-device driver (px-fuse fast-path contract)."""

from .driver import PxdDriver, PxdIoHead  # noqa: F401
