"""pxd driver structure definitions and shipped DWARF debug info.

Same discipline as :mod:`repro.linux.hfi1.debuginfo`: two released
driver versions whose embedded instrumentation blobs differ in size, so
hand-copied headers silently break between releases while DWARF
extraction keeps working (paper section 3.2).

The structures mirror the px-fuse fast path (SNIPPETS.md
``pxd_fastpath.h``): ``pxd_device`` is the per-device root,
``pxd_fastpath_extension`` carries the replica set / congestion /
suspend control words the fast path polls, and ``pxd_io_tracker`` is
the per-IO clone tracker with its atomic ``active``/``fails`` counters.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.dwarf import ModuleBinary, emit_dwarf
from ...core.structs import ARRAY, PTR, U8, U32, U64, CStructDef, Field

CURRENT_VERSION = "1.0.0"
NEXT_VERSION = "1.1.1"

#: per-version size of the miscdevice+list blob heading pxd_device
_DEV_BLOB = {"1.0.0": 96, "1.1.1": 104}
#: per-version size of the spinlock+waitqueue blob heading the
#: fastpath extension (lockdep grows it between releases)
_FP_BLOB = {"1.0.0": 56, "1.1.1": 64}
#: per-version size of the bio+list blob heading pxd_io_tracker
_TRK_BLOB = {"1.0.0": 48, "1.1.1": 56}


def struct_defs(version: str = CURRENT_VERSION) -> Dict[str, CStructDef]:
    """The driver's internal structure definitions for ``version``."""
    if version not in _DEV_BLOB:
        raise ValueError(f"unknown pxd driver version {version!r}")

    pxd_device = CStructDef("pxd_device", [
        Field("misc_blob", ARRAY(U8, _DEV_BLOB[version])),
        Field("dev_id", U64),
        Field("size", U64),                  # device capacity in bytes
        Field("major", U32),
        Field("minor", U32),
        Field("qdepth", U32),
        Field("nfd", U32),                   # backing replica count
        Field("fastpath", PTR),              # -> pxd_fastpath_extension
        Field("strong_flush", U32),
        Field("mode", U32),
    ])

    pxd_fastpath_extension = CStructDef("pxd_fastpath_extension", [
        Field("lock_blob", ARRAY(U8, _FP_BLOB[version])),
        Field("nfd", U32),
        Field("inservice_mask", U32),        # bit i: replica i serves IO
        Field("suspend", U32),               # forced slow-path bit
        Field("congested", U32),
        Field("nr_congestion_on", U32),
        Field("nr_congestion_off", U32),
        Field("wr_seq", U64),                # monotone write sequence
        Field("active_failover", U32),
        Field("fail_cnt", U32),
    ])

    pxd_io_tracker = CStructDef("pxd_io_tracker", [
        Field("bio_blob", ARRAY(U8, _TRK_BLOB[version])),
        Field("orig_sector", U64),
        Field("nsectors", U32),
        Field("active", U32),                # atomic: replicas in flight
        Field("fails", U32),                 # atomic: replica failures
        Field("status", U32),
        Field("file", PTR),
    ])

    return {s.name: s for s in
            (pxd_device, pxd_fastpath_extension, pxd_io_tracker)}


def build_module(version: str = CURRENT_VERSION) -> ModuleBinary:
    """'Compile' the driver: emit the module binary with DWARF headers."""
    defs: List[CStructDef] = list(struct_defs(version).values())
    return emit_dwarf(defs, producer="gcc (GCC) 7.3.1",
                      module="pxd", version=version)
