"""The pxd Linux driver: replicated writes over the modeled block device.

The px-fuse robustness contract (SNIPPETS.md ``pxd_fastpath.[ch]``)
reproduced on the simulator's chassis:

* every write is cloned to all *in-service* backing replicas, tracked by
  a ``pxd_io_tracker`` in shared kernel memory whose atomic
  ``active``/``fails`` counters the completion IRQs decrement/increment;
* a replica that fails a write is **evicted** immediately — once media
  content may have diverged, leaving the replica in service would break
  read-your-writes — and the write is acknowledged from the survivors
  (typed :class:`~repro.errors.MediaError` only when *every* targeted
  replica failed);
* reads retry across the in-service set and fail typed when exhausted;
* with the guard plane installed, per-replica breakers absorb the
  failure feed and the driver re-probes an evicted path once its breaker
  admits traffic: reattach, probe-write the reserved scratch sector,
  resync divergent sectors from a healthy survivor, then re-admit —
  refusing (typed) when no healthy source exists.

The replica lifecycle is an explicit FSM (``inservice`` -> ``evicted``
-> ``probing`` -> ``inservice``/``evicted``) whose transitions are
recorded for the PicoCheck ``pxd-fallback`` scenario's legality oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...config import GUARD, TRACE
from ...core.lockclasses import declare_lock_class
from ...core.structs import StructInstance
from ...errors import BadSyscall, DriverError, MediaError
from ...hw.blockdev import BlockIo
from ...obs.spans import track_of
from ...sim import Event
from ...units import USEC
from ..vfs import File, FileOps
from . import ioctls as ioc
from .debuginfo import CURRENT_VERSION, build_module, struct_defs

# The submit lock serializes block-IO submission across Linux and
# McKernel, exactly like hfi1.sdma_submit one rank below it: both are
# innermost (taken last, nothing nests inside), but they are distinct
# classes so the lock-graph names cross-device orderings explicitly.
declare_lock_class(
    "pxd.submit", rank=22, subsystem="linux/pxd",
    attrs=("submit_lock",),
    doc="serializes block IO submission across Linux and McKernel")

#: flat cost of the administrative ioctls
_ADMIN_IOCTL_COST = 0.6 * USEC
#: per-open setup cost
_OPEN_COST = 2.1 * USEC

#: replica lifecycle FSM legal edges (PicoCheck oracle input)
REPLICA_STATES = ("inservice", "evicted", "probing")
REPLICA_LEGAL_TRANSITIONS = frozenset({
    ("inservice", "evicted"),
    ("evicted", "probing"),
    ("probing", "inservice"),
    ("probing", "evicted"),
})


@dataclass(eq=False)
class PxdIoHead:
    """Driver-side head of one replicated write (px-fuse ``head`` bio).

    ``tracker_add`` binds the shared-memory ``pxd_io_tracker`` counters
    through whichever accessor the submitting path owns — the Linux
    driver's :class:`StructInstance` or the PicoDriver's DWARF
    :class:`~repro.core.extract.StructView` — so the completion IRQ
    updates the same heap words either way.
    """

    sector: int
    nsectors: int
    payload: bytes
    targets: Tuple[int, ...]
    tracker_add: Callable[..., int]
    remaining: int = 0
    failures: List[Tuple[int, Exception]] = field(default_factory=list)
    completion: Optional[Event] = None
    #: slow path: completion closure run at head finish
    on_complete: Optional[Callable[["PxdIoHead"], object]] = None
    #: fast path: McKernel-TEXT completion address (callback registry)
    callback_addr: Optional[int] = None
    meta_addrs: List[int] = field(default_factory=list)
    owner_kernel: str = "linux"
    trace_ctx: object = None


class PxdDriver(FileOps):
    """``pxd.ko``: registered with the VFS as ``/dev/pxd/pxd<unit>``."""

    def __init__(self, version: str = CURRENT_VERSION, unit: int = 0):
        self.version = version
        self.unit = unit
        self.device_path = f"/dev/pxd/pxd{unit}"
        #: the shipped module binary — DWARF consumers extract from this
        self.binary = build_module(version)
        self._defs = struct_defs(version)
        self.kernel = None
        self.blockdev = None
        self.heap = None
        self.device: Optional[StructInstance] = None
        self.fpext: Optional[StructInstance] = None
        #: replica indices currently serving IO (mirrored into the
        #: extension struct's ``inservice_mask`` for the fast path)
        self.inservice: Set[int] = set()
        #: per-evicted-replica divergent sector set (resync work list)
        self._dirty: Dict[int, Set[int]] = {}
        #: replicas with a probe/readmit in progress
        self._probing: Set[int] = set()
        #: the replica most recently taken out of service; when the
        #: whole set empties, this one is the data authority (see
        #: :meth:`_resync_and_readmit`)
        self._last_evicted: Optional[int] = None
        #: replica lifecycle FSM: recorded transitions + current states
        self._replica_state: Dict[int, str] = {}
        self.replica_transitions: List[Tuple[float, int, str, str, str]] = []
        #: runtime invariant breaches (PicoCheck oracle input)
        self.violations: List[str] = []
        #: one entry per resync attempt: divergence found / refusals
        self.resync_reports: List[Dict[str, object]] = []
        #: writes in flight (head submitted, last completion pending)
        self._inflight: Set[PxdIoHead] = set()
        #: probes/readmits parked until bypassing writes drain
        self._admit_waiters: List[Event] = []
        #: cross-kernel callback registry, installed by the machine
        #: builder when an LWK is present
        self.callbacks = None
        #: optional :class:`repro.guard.GuardManager` (replica breakers
        #: + qdepth gates; installed by the machine builder when the
        #: guard plane is enabled, ``None`` otherwise)
        self.guard = None

    # -- module load -------------------------------------------------------

    def probe(self, kernel) -> None:
        """Module init: root structs, submit lock, chrdev, IRQ line."""
        self.kernel = kernel
        self.blockdev = kernel.node.blockdev
        if self.blockdev is None:
            raise DriverError("pxd probe with no block device on the node")
        self.heap = kernel.node.kheap
        blk = self.blockdev.params
        self.device = StructInstance(self._defs["pxd_device"], self.heap)
        self.device.set("dev_id", 0xBD0 + self.unit)
        self.device.set("size", blk.sectors * blk.sector_size)
        self.device.set("major", 252)
        self.device.set("minor", self.unit)
        self.device.set("qdepth", blk.qdepth)
        self.device.set("nfd", blk.replicas)
        self.fpext = StructInstance(self._defs["pxd_fastpath_extension"],
                                    self.heap)
        self.device.set("fastpath", self.fpext.addr)
        self.fpext.set("nfd", blk.replicas)
        self.fpext.set("suspend", 0, atomic=True)
        self.fpext.set("congested", 0, atomic=True)
        self.fpext.set("nr_congestion_on", blk.qdepth)
        self.fpext.set("nr_congestion_off", max(1, blk.qdepth * 3 // 4))
        self.inservice = set(range(blk.replicas))
        self._replica_state = {i: "inservice" for i in range(blk.replicas)}
        self.fpext.set("inservice_mask", self._mask(), atomic=True)
        # block-IO submission lock: shared-heap spin lock so the fast
        # path can serialize with us (same pattern as hfi1.sdma_submit)
        from ...core.sync import CrossKernelSpinLock
        self.submit_lock = CrossKernelSpinLock(kernel.sim, self.heap,
                                               name="pxd.submit",
                                               tracer=kernel.tracer)
        kernel.vfs.register_chrdev(self.device_path, self)
        from ..device_model import Device
        self.sysfs = Device(f"pxd{self.unit}", "block")
        self.sysfs.add_attr("size", lambda: self.device.get("size"))
        self.sysfs.add_attr("nfd", blk.replicas)
        self.sysfs.add_attr("inservice",
                            lambda: ",".join(map(str, sorted(self.inservice))))
        kernel.devices.register(self.sysfs)
        self.blockdev.irq_dispatcher = self._irq

    # -- geometry ----------------------------------------------------------

    @property
    def data_sectors(self) -> int:
        """Sectors available to callers; the last sector is the probe
        scratch area (probe writes must never touch application data)."""
        return self.blockdev.params.sectors - 1

    @property
    def probe_sector(self) -> int:
        return self.blockdev.params.sectors - 1

    def _mask(self) -> int:
        mask = 0
        for i in self.inservice:
            mask |= 1 << i
        return mask

    def _check_range(self, sector: int, nsectors: int) -> None:
        if sector < 0 or nsectors <= 0 \
                or sector + nsectors > self.data_sectors:
            raise BadSyscall(
                f"pxd: sector range [{sector}, {sector + nsectors}) outside "
                f"data region [0, {self.data_sectors})")

    # -- replica lifecycle FSM ---------------------------------------------

    def _transition(self, replica: int, new: str, reason: str) -> None:
        old = self._replica_state.get(replica, "inservice")
        self.replica_transitions.append(
            (self.kernel.sim.now, replica, old, new, reason))
        if (old, new) not in REPLICA_LEGAL_TRANSITIONS:
            self.violations.append(
                f"pxd replica {replica}: illegal {old}->{new} "
                f"at t={self.kernel.sim.now * 1e6:.1f}us ({reason})")
        self._replica_state[replica] = new

    def fsm_violations(self) -> List[str]:
        """Replica transitions outside the legal lifecycle edge set
        (empty on a healthy run; a PicoCheck oracle)."""
        bad = []
        for when, replica, old, new, reason in self.replica_transitions:
            if (old, new) not in REPLICA_LEGAL_TRANSITIONS:
                bad.append(f"pxd replica {replica}: illegal {old}->{new} "
                           f"at t={when * 1e6:.1f}us ({reason})")
        return bad

    def _evict(self, replica: int, reason: str,
               sectors: Optional[Tuple[int, int]] = None) -> None:
        """Take a replica out of service (always-on data-integrity
        action: a write failure means its content may have diverged)."""
        if replica not in self.inservice:
            # already evicted by a concurrent IO; just extend its dirt
            if sectors is not None and replica in self._dirty:
                lo, n = sectors
                self._dirty[replica].update(range(lo, lo + n))
            return
        self.inservice.discard(replica)
        self.fpext.set("inservice_mask", self._mask(), atomic=True)
        self.fpext.add("fail_cnt", 1)
        self._last_evicted = replica
        self._dirty[replica] = set()
        if sectors is not None:
            lo, n = sectors
            self._dirty[replica].update(range(lo, lo + n))
        self.blockdev.tracer.count("pxd.evictions")
        self._transition(replica, "evicted", reason)
        if GUARD.enabled and self.guard is not None:
            self.guard.record_failure(self.guard.path_name(replica), reason)
        if TRACE.enabled:
            TRACE.collector.instant_span(
                "pxd.evict", track_of(self), cat="recovery",
                args={"replica": replica, "reason": reason})

    def _readmit(self, replica: int) -> None:
        """Return a resynced replica to service (FSM: probing->inservice)."""
        self.inservice.add(replica)
        self.fpext.set("inservice_mask", self._mask(), atomic=True)
        self._dirty.pop(replica, None)
        self.blockdev.tracer.count("pxd.readmits")
        self._transition(replica, "inservice", "resync complete")
        if TRACE.enabled:
            TRACE.collector.instant_span(
                "pxd.readmit", track_of(self), cat="recovery",
                args={"replica": replica})

    # -- file operations ---------------------------------------------------

    def open(self, kernel, file: File, task):
        """Generator: root the file at the fastpath extension struct —
        the address the PicoDriver dereferences cross-kernel."""
        yield kernel.sim.timeout(_OPEN_COST)
        file.private_data = self.fpext.addr

    def release(self, kernel, file: File, task):
        """Generator: drop the file's root pointer."""
        yield kernel.sim.timeout(_OPEN_COST / 2)
        file.private_data = None

    def writev(self, kernel, file: File, task, iovecs):
        """``writev(fd, iovecs)``: iovec 0 is the request header
        (``sector``/``payload``/``completion``), the rest describe the
        user buffers (charged through ``get_user_pages``).

        Returns once the write is *submitted* to every in-service
        replica; the acknowledgement (success from the survivors, or a
        typed :class:`MediaError` when all targeted replicas failed)
        arrives through the header's completion event at head finish.
        """
        if len(iovecs) < 2:
            raise BadSyscall("pxd writev needs a header iovec and at "
                             "least one data iovec")
        meta = iovecs[0]
        payload: bytes = meta["payload"]
        sector: int = meta["sector"]
        blk = self.blockdev.params
        if len(payload) % blk.sector_size:
            raise BadSyscall(f"pxd write of {len(payload)}B is not "
                             f"sector-aligned ({blk.sector_size}B sectors)")
        nsectors = len(payload) // blk.sector_size
        self._check_range(sector, nsectors)
        mem = kernel.params.mem

        cost = blk.submit_base
        for vaddr, length in iovecs[1:]:
            _pages, gup_cost = kernel.mm.get_user_pages(task, vaddr, length)
            cost += gup_cost
        tracker = StructInstance(self._defs["pxd_io_tracker"], self.heap)
        cost += mem.kmalloc_cost

        span = TRACE.collector.begin_span(
            "pxd.writev", track_of(self), cat="driver",
            args={"sector": sector, "nsectors": nsectors}) \
            if TRACE.enabled else None
        head: Optional[PxdIoHead] = None
        try:
            yield kernel.sim.timeout(cost)
            # the target set is fixed only now, after the setup costs:
            # until this point a concurrent readmit may still widen it
            targets = tuple(sorted(self.inservice))
            if not targets:
                tracker.free()
                # nothing in flight means no head-finish will ever kick
                # the probe machinery — kick it from the failing submit
                if GUARD.enabled:
                    self._maybe_probe()
                raise MediaError("pxd write with no in-service replicas")
            tracker.set("orig_sector", sector)
            tracker.set("nsectors", nsectors)
            tracker.set("active", len(targets), atomic=True)
            tracker.set("fails", 0, atomic=True)
            self.fpext.add("wr_seq", 1)
            completion = meta.get("completion")

            def complete(head: PxdIoHead):
                # runs in IRQ context on a Linux CPU; returns a
                # generator so the cleanup cost is charged there
                def cleanup():
                    tracker.free()
                    yield kernel.sim.timeout(mem.kfree_cost)
                    self._ack(head)
                return cleanup()

            head = PxdIoHead(sector=sector, nsectors=nsectors,
                             payload=payload, targets=targets,
                             tracker_add=tracker.add,
                             remaining=len(targets), completion=completion,
                             on_complete=complete, owner_kernel="linux")
            if TRACE.enabled:
                head.trace_ctx = span
            # registered the moment the target set is fixed, before any
            # further yield: a probe's drain check must see every write
            # whose target set could exclude its replica
            self._inflight.add(head)
            guard = self.guard if GUARD.enabled else None
            if guard is not None:
                # suspended device: park on the queued-IO list; resume()
                # replays us in arrival order
                yield from guard.park_if_suspended()
                # qdepth bound: one slot per targeted replica, ascending
                # order so concurrent writers cannot deadlock
                for r in targets:
                    yield from guard.gates[r].acquire_slots(1)
                # WRITE_ONCE: the fast path updates the same flag
                # lock-free from McKernel CPUs
                self.fpext.set("congested",
                               1 if any(guard.gates[r].congested
                                        for r in targets) else 0,
                               atomic=True)
            yield from self.submit_lock.acquire("linux", kernel.aspace)
            try:
                for r in targets:
                    self.blockdev.submit(BlockIo(
                        op="write", replica=r, sector=sector,
                        nsectors=nsectors, payload=payload, user_ctx=head,
                        trace_ctx=head.trace_ctx))
            finally:
                self.submit_lock.release("linux")
        except BaseException:
            if head is not None:
                self._inflight.discard(head)
                tracker.free()
            raise
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.blockdev.tracer.count("pxd.writes")
        return len(payload)

    def _ack(self, head: PxdIoHead) -> None:
        """Complete the caller's event: survivors ack, all-failed is a
        typed error."""
        completion = head.completion
        if completion is None or completion.triggered:
            return
        if len(head.failures) >= len(head.targets):
            completion.fail(MediaError(
                f"pxd write at sector {head.sector} failed on all "
                f"{len(head.targets)} targeted replica(s): "
                + "; ".join(str(e) for _r, e in head.failures)))
        else:
            completion.succeed(head)

    # -- ioctl surface -----------------------------------------------------

    def ioctl(self, kernel, file: File, task, cmd, arg):
        """Generator: the pxd control surface."""
        if cmd == ioc.PXD_IOCTL_READ:
            return (yield from self._read(kernel, arg))
        if cmd == ioc.PXD_IOCTL_GET_STATS:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            return self.stats()
        if cmd == ioc.PXD_IOCTL_UPDATE_PATH:
            return (yield from self._update_path(kernel, arg))
        if cmd == ioc.PXD_IOCTL_SET_SUSPEND:
            yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
            self.fpext.set("suspend",
                           1 if (arg.get("suspend")
                                 if isinstance(arg, dict)
                                 else arg) else 0,
                           atomic=True)
            return 0
        raise BadSyscall(f"pxd: unknown ioctl {cmd:#x}")

    def _read(self, kernel, arg):
        """Read a sector run: serve from the lowest in-service replica,
        retrying the next on media errors; typed when all fail."""
        sector, nsectors = arg["sector"], arg["nsectors"]
        self._check_range(sector, nsectors)
        yield kernel.sim.timeout(self.blockdev.params.submit_base)
        guard = self.guard if GUARD.enabled else None
        if guard is not None:
            yield from guard.park_if_suspended()
        errors: List[Tuple[int, Exception]] = []
        for r in sorted(self.inservice):
            evt = Event(kernel.sim)
            io = BlockIo(op="read", replica=r, sector=sector,
                         nsectors=nsectors, user_ctx={"io_evt": evt})
            yield from self.submit_lock.acquire("linux", kernel.aspace)
            try:
                self.blockdev.submit(io)
            finally:
                self.submit_lock.release("linux")
            yield evt
            done: BlockIo = evt.value
            if done.status is None:
                self.blockdev.tracer.count("pxd.reads")
                return done.data
            errors.append((r, done.status))
            self.blockdev.tracer.count("pxd.read_retries")
            if guard is not None:
                guard.record_failure(guard.path_name(r),
                                     f"read error: {done.status}")
        # with nothing left in service there may be no traffic to kick
        # re-probing at head finish; kick it from the failing read
        if GUARD.enabled:
            self._maybe_probe()
        raise MediaError(
            f"pxd read at sector {sector} failed on every in-service "
            f"replica: " + ("; ".join(str(e) for _r, e in errors)
                            if errors else "none in service"))

    def _update_path(self, kernel, arg):
        """Administrative re-admission of an evicted replica: reattach
        the path, resync, re-admit — or refuse typed."""
        r = int(arg["replica"])
        yield kernel.sim.timeout(_ADMIN_IOCTL_COST)
        if r < 0 or r >= self.blockdev.params.replicas:
            raise BadSyscall(f"pxd: no replica {r}")
        if r in self.inservice:
            return 0
        if r in self._probing:
            raise DriverError(f"pxd replica {r}: probe already in progress")
        self._probing.add(r)
        try:
            self.blockdev.replicas[r].reattach()
            self._transition(r, "probing", "admin UPDATE_PATH")
            ok = yield from self._resync_and_readmit(r)
        finally:
            self._probing.discard(r)
        if not ok:
            raise MediaError(
                f"pxd replica {r} re-admission refused: no healthy "
                f"source to resync from", replica=r)
        return 1

    def stats(self) -> Dict[str, object]:
        """Point-in-time health snapshot (GET_STATS / reports)."""
        return {
            "inservice": sorted(self.inservice),
            "states": dict(self._replica_state),
            "wr_seq": self.fpext.get("wr_seq"),
            "fail_cnt": self.fpext.get("fail_cnt"),
            "suspend": self.fpext.get("suspend", atomic=True),
            "dirty": {r: len(s) for r, s in self._dirty.items()},
            "inflight": len(self._inflight),
        }

    # -- completion path ---------------------------------------------------

    def _irq(self, io: BlockIo) -> None:
        """Block-device IRQ dispatcher: route to a Linux CPU via the
        interrupt controller, then run the completion there."""
        self.kernel.interrupts.deliver(self._blk_complete, io)

    def _blk_complete(self, io: BlockIo):
        """Runs on a Linux OS CPU in IRQ context."""
        if TRACE.enabled:
            io.trace_ctx = TRACE.collector.instant_span(
                "pxd.irq", track_of(self), cat="irq",
                args={"op": io.op, "replica": io.replica},
                flow_from=io.trace_ctx)
        ctx = io.user_ctx
        if isinstance(ctx, dict):
            # reads and probe writes: complete the waiter, no tracker
            evt = ctx.get("io_evt")
            if evt is not None and not evt.triggered:
                evt.succeed(io)
            return None
        head: PxdIoHead = ctx
        r = io.replica
        guard = self.guard if GUARD.enabled else None
        if guard is not None:
            guard.gates[r].release_slots(1)
        head.remaining -= 1
        head.tracker_add("active", -1)
        if io.status is not None:
            head.failures.append((r, io.status))
            head.tracker_add("fails", 1)
            self._evict(r, str(io.status),
                        sectors=(head.sector, head.nsectors))
        elif guard is not None and r in self.inservice:
            guard.record_success(guard.path_name(r))
        if head.remaining == 0:
            return self._head_finish(head)
        return None

    def _head_finish(self, head: PxdIoHead):
        """Last replica completion: settle divergence bookkeeping, wake
        parked probes, kick re-probing, then run the head callback."""
        self._inflight.discard(head)
        acked = len(head.failures) < len(head.targets)
        if acked:
            # the write landed on the survivors; every replica outside
            # the target set (evicted before submit) now diverges here
            for r in range(self.blockdev.params.replicas):
                if r not in head.targets and r not in self.inservice \
                        and r in self._dirty:
                    self._dirty[r].update(
                        range(head.sector, head.sector + head.nsectors))
            self.blockdev.tracer.count("pxd.acked_writes")
        else:
            self.blockdev.tracer.count("pxd.failed_writes")
        if self._admit_waiters:
            waiters, self._admit_waiters = self._admit_waiters, []
            for w in waiters:
                if not w.triggered:
                    w.succeed()
        if GUARD.enabled and self.guard is not None:
            self._maybe_probe()
        if head.callback_addr is not None:
            if self.callbacks is None:
                raise DriverError("pxd completion carries a callback "
                                  "address but no registry is installed")
            result = self.callbacks.invoke("linux", head.callback_addr, head)
        elif head.on_complete is not None:
            result = head.on_complete(head)
        else:
            result = None
        if result is not None and hasattr(result, "send"):
            return result
        return None

    # -- re-probing / resync (guard-driven) --------------------------------

    def _maybe_probe(self) -> None:
        """Start a probe for every evicted replica whose breaker admits
        traffic again (called at head finish; guard-gated by callers)."""
        guard = self.guard if GUARD.enabled else None
        if guard is not None:
            from ...guard.breaker import BREAKER_PROBING
            for r, state in self._replica_state.items():
                if state != "evicted" or r in self._probing:
                    continue
                breaker = guard.breakers[guard.path_name(r)]
                if not breaker.admits():
                    continue
                if breaker.state == BREAKER_PROBING:
                    breaker.begin_probe()
                self._probing.add(r)
                self._transition(r, "probing", "breaker admits probe")
                self.blockdev.tracer.count("pxd.probes")
                self.kernel.sim.process(self._probe(r))

    def _probe(self, r: int):
        """Generator: probe-write the scratch sector of a reattached
        replica; on success (breaker closed) resync and re-admit."""
        sim = self.kernel.sim
        blk = self.blockdev.params
        media = self.blockdev.replicas[r]
        media.reattach()
        evt = Event(sim)
        pattern = bytes([(0xA5 + r) & 0xFF]) * blk.sector_size
        io = BlockIo(op="write", replica=r, sector=self.probe_sector,
                     nsectors=1, payload=pattern, user_ctx={"io_evt": evt})
        yield from self.submit_lock.acquire("linux", self.kernel.aspace)
        try:
            self.blockdev.submit(io)
        finally:
            self.submit_lock.release("linux")
        yield evt
        done: BlockIo = evt.value
        guard = self.guard if GUARD.enabled else None
        try:
            if done.status is not None:
                if guard is not None:
                    guard.record_failure(guard.path_name(r),
                                         f"probe failed: {done.status}")
                self._transition(r, "evicted", f"probe failed: {done.status}")
                return
            if guard is not None:
                guard.record_success(guard.path_name(r))
                from ...guard.breaker import BREAKER_CLOSED
                if guard.breakers[guard.path_name(r)].state != BREAKER_CLOSED:
                    # failback hysteresis: more probe successes needed
                    self._transition(r, "evicted",
                                     "probe ok, breaker not yet closed")
                    return
            yield from self._resync_and_readmit(r)
        finally:
            self._probing.discard(r)

    def _resync_and_readmit(self, r: int):
        """Generator: copy divergent sectors from a healthy survivor
        until the dirty set is stable and no bypassing write is in
        flight, then re-admit.  Returns False (FSM back to ``evicted``,
        refusal reported) when no healthy source exists."""
        sim = self.kernel.sim
        blk = self.blockdev.params
        media = self.blockdev.replicas[r]
        synced: Set[int] = set()
        diverged = 0
        while True:
            # writes that bypassed this replica must drain before the
            # dirty set can be trusted as complete
            while any(r not in h.targets for h in self._inflight):
                waiter = Event(sim)
                self._admit_waiters.append(waiter)
                yield waiter
            sources = sorted(self.inservice)
            if not sources:
                if r == self._last_evicted:
                    # Every acknowledged write succeeded on the last
                    # replica standing (a write is only acked when a
                    # then-in-service target applied it), so its media
                    # is authoritative: re-admit it as-is and make every
                    # other evicted replica converge to it — including
                    # sectors torn by the unacked write that evicted it,
                    # whose content is undefined but must still end up
                    # identical everywhere.
                    adopted = self._dirty.get(r, set())
                    for other, dirt in self._dirty.items():
                        if other != r:
                            dirt.update(adopted)
                    self.resync_reports.append(
                        {"replica": r, "refused": False, "authority": True,
                         "adopted": len(adopted)})
                    self.blockdev.tracer.count("pxd.authority_readmits")
                    self._readmit(r)
                    return True
                self.blockdev.tracer.count("pxd.readmit_refused")
                self.resync_reports.append(
                    {"replica": r, "refused": True,
                     "reason": "no healthy source",
                     "dirty": len(self._dirty.get(r, ()))})
                self._transition(r, "evicted",
                                 "readmit refused: no healthy source")
                return False
            pending = sorted(s for s in self._dirty.get(r, ())
                             if s not in synced)
            if not pending:
                break
            src = self.blockdev.replicas[sources[0]]
            nbytes = 0
            for sector in pending:
                want = src.peek(sector, 1)
                if media.peek(sector, 1) != want:
                    diverged += 1
                    media.poke(sector, want)
                synced.add(sector)
                nbytes += blk.sector_size
            yield sim.timeout(nbytes / blk.resync_bandwidth)
        self.resync_reports.append(
            {"replica": r, "refused": False, "diverged": diverged,
             "scanned": len(synced)})
        self.blockdev.tracer.count("pxd.resyncs")
        self.blockdev.tracer.record("pxd.resync_sectors", len(synced))
        self._readmit(r)
        return True
