"""pxd driver ioctl command numbers (the px-fuse control surface)."""

from __future__ import annotations

#: read a sector run back through the replica set (retry-next on media
#: errors; typed :class:`~repro.errors.MediaError` when every in-service
#: replica fails).  Block reads go through ioctl because the generic
#: ``read`` syscall path never reaches driver file operations.
PXD_IOCTL_READ = 0x7801
#: point-in-time driver health snapshot (in-service set, counters).
PXD_IOCTL_GET_STATS = 0x7802
#: administrative re-admission of an evicted replica path: reattach,
#: resync divergent sectors from a healthy survivor, then re-admit —
#: or fail typed when no healthy source exists.
PXD_IOCTL_UPDATE_PATH = 0x7803
#: suspend/resume the PicoDriver fast path (forced-sync control bit the
#: fast path observes through its DWARF view of the extension struct).
PXD_IOCTL_SET_SUSPEND = 0x7804

#: data-path commands the pxd PicoDriver claims
DATA_IOCTLS = frozenset({PXD_IOCTL_READ})
