"""Linux OS-core scheduling under proxy-process oversubscription.

The macro model folds the cost of running many runnable proxy processes
on few Linux cores into one constant (``IkcParams.context_switch_cost``).
This module contains the micro-model that *justifies* that constant: a
time-sliced core serving N runnable proxies, each request paying

* the direct context-switch cost (register/state swap, scheduler pick),
* a cache/TLB refill penalty after running someone else — a warmth model
  where the penalty grows with the number of distinct processes that ran
  since this proxy last did (capped at a full refill), and
* the actual handler work.

``effective_service_time`` runs the model and reports the mean per-request
wall cost; ``benchmarks/bench_ablation_proxy_scheduling.py`` sweeps the
oversubscription level and shows the derived cost crossing the calibrated
constant around 32 ranks / 4 CPUs — the paper's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..units import USEC


@dataclass(frozen=True)
class SchedModelParams:
    """Constants of the oversubscribed-core micro-model (KNL-flavored:
    slow in-order cores, small per-core caches)."""

    #: direct switch: save/restore + runqueue manipulation
    direct_switch: float = 6.0 * USEC
    #: full cache/TLB refill after a cold switch
    full_refill: float = 80.0 * USEC
    #: how many other processes it takes to fully evict a proxy's state
    eviction_span: int = 4


class OversubscribedCore:
    """One OS core running proxy processes round-robin.

    Requests arrive as (proxy id, handler seconds); the core serves them
    FIFO, charging switch + warmth costs.  Deterministic, no simulator
    needed — it is an analytical aid, not part of the hot path.
    """

    def __init__(self, params: SchedModelParams = SchedModelParams()):
        self.params = params
        self._last: int = -1
        self._since_ran: Dict[int, int] = {}
        self.busy_seconds = 0.0
        self.requests = 0

    def serve(self, proxy: int, handler_seconds: float) -> float:
        """Serve one request; returns its wall cost on the core."""
        p = self.params
        cost = handler_seconds
        if proxy != self._last:
            cost += p.direct_switch
            staleness = min(self._since_ran.get(proxy, p.eviction_span),
                            p.eviction_span)
            cost += p.full_refill * staleness / p.eviction_span
            for other in self._since_ran:
                self._since_ran[other] += 1
            self._since_ran[proxy] = 0
            self._last = proxy
        self.busy_seconds += cost
        self.requests += 1
        return cost

    @property
    def mean_service(self) -> float:
        return self.busy_seconds / self.requests if self.requests else 0.0


def effective_service_time(n_proxies: int, handler_seconds: float = 4e-6,
                           requests_per_proxy: int = 32,
                           params: SchedModelParams = SchedModelParams()
                           ) -> float:
    """Mean per-request cost with ``n_proxies`` interleaving round-robin
    on one core — the worst (and, under saturation, typical) interleave."""
    core = OversubscribedCore(params)
    for _round in range(requests_per_proxy):
        for proxy in range(n_proxies):
            core.serve(proxy, handler_seconds)
    return core.mean_service


def derived_switch_cost(n_proxies: int,
                        handler_seconds: float = 4e-6,
                        params: SchedModelParams = SchedModelParams()
                        ) -> float:
    """The per-dispatch disturbance the macro model should charge at this
    oversubscription level: everything beyond the handler itself."""
    return (effective_service_time(n_proxies, handler_seconds,
                                   params=params) - handler_seconds)
