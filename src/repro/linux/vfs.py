"""A minimal Virtual File System layer: character devices and file objects.

Linux device drivers expose functionality as file operations registered
with the VFS (paper section 1).  The HFI1 driver registers ``/dev/hfi1_N``
here; McKernel has no VFS at all — its device access goes through the proxy
process, whose file descriptor table lives on this side.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import BadSyscall


class FileOps:
    """Driver callbacks, mirroring ``struct file_operations``.

    Every method is a *generator* (simulation process body) receiving the
    kernel, the file object and the calling task.  The default
    implementations reject the call like a driver with a NULL slot.
    """

    def open(self, kernel, file: "File", task):
        """Driver open callback (default: no-op)."""
        return
        yield  # pragma: no cover

    def release(self, kernel, file: "File", task):
        """Driver close callback (default: no-op)."""
        return
        yield  # pragma: no cover

    def writev(self, kernel, file: "File", task, iovecs):
        """Driver writev callback (default: -EINVAL)."""
        raise BadSyscall(f"{file.path}: no writev support")
        yield  # pragma: no cover

    def ioctl(self, kernel, file: "File", task, cmd, arg):
        """Driver ioctl callback (default: -EINVAL)."""
        raise BadSyscall(f"{file.path}: no ioctl support")
        yield  # pragma: no cover

    def mmap(self, kernel, file: "File", task, length):
        """Driver mmap callback (default: -EINVAL)."""
        raise BadSyscall(f"{file.path}: no mmap support")
        yield  # pragma: no cover

    def poll(self, kernel, file: "File", task):
        """Driver poll callback (default: nothing ready)."""
        return 0
        yield  # pragma: no cover

    def lseek(self, kernel, file: "File", task, offset):
        """Default lseek: set the file position."""
        file.pos = offset
        return offset
        yield  # pragma: no cover


class File:
    """An open file description (``struct file``)."""

    def __init__(self, path: str, ops: FileOps):
        self.path = path
        self.ops = ops
        self.pos = 0
        #: driver per-open state (``file->private_data``); for the HFI1
        #: driver this holds the kernel-heap *address* of hfi1_filedata,
        #: which is what the PicoDriver dereferences cross-kernel.
        self.private_data: Any = None


class VFS:
    """Path to file-operations registry plus per-task fd tables."""

    def __init__(self) -> None:
        self._chrdevs: Dict[str, FileOps] = {}
        self._fd_tables: Dict[str, Dict[int, File]] = {}
        self._next_fd: Dict[str, int] = {}

    # -- devices --------------------------------------------------------

    def register_chrdev(self, path: str, ops: FileOps) -> None:
        """Register file operations for a device path."""
        if path in self._chrdevs:
            raise BadSyscall(f"device {path} already registered")
        self._chrdevs[path] = ops

    def unregister_chrdev(self, path: str) -> None:
        """Remove a device registration."""
        self._chrdevs.pop(path, None)

    def lookup(self, path: str) -> FileOps:
        """File operations for a path (plain files get defaults)."""
        ops = self._chrdevs.get(path)
        if ops is None:
            # non-device paths get a plain file with default ops
            ops = FileOps()
        return ops

    def is_device(self, path: str) -> bool:
        """True if a chrdev is registered at ``path``."""
        return path in self._chrdevs

    # -- fd tables ---------------------------------------------------------

    def fd_table(self, task_name: str) -> Dict[int, File]:
        """The fd table of ``task_name`` (created on demand)."""
        return self._fd_tables.setdefault(task_name, {})

    def install_fd(self, task_name: str, file: File) -> int:
        """Assign the next fd number to an open file."""
        table = self.fd_table(task_name)
        fd = self._next_fd.get(task_name, 3)  # 0-2 are std streams
        self._next_fd[task_name] = fd + 1
        table[fd] = file
        return fd

    def file_for(self, task_name: str, fd: int) -> File:
        """The open file behind an fd (BadSyscall if closed)."""
        table = self.fd_table(task_name)
        if fd not in table:
            raise BadSyscall(f"{task_name}: bad file descriptor {fd}")
        return table[fd]

    def close_fd(self, task_name: str, fd: int) -> File:
        """Remove and return the file behind an fd."""
        table = self.fd_table(task_name)
        if fd not in table:
            raise BadSyscall(f"{task_name}: bad file descriptor {fd}")
        return table.pop(fd)
