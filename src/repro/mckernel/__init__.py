"""McKernel: the lightweight co-kernel.

Implements only the performance-sensitive OS services — memory management
with physically contiguous large-page anonymous mappings, a tick-less
cooperative scheduler, and local syscall handling — and delegates the rest
to Linux through the proxy process and IKC (paper section 2.1).
"""

from .kernel import McKernel
from .mm import LwkMM, PerCoreAllocator
from .proxy import ProxyProcess
from .scheduler import CoopScheduler

__all__ = ["CoopScheduler", "LwkMM", "McKernel", "PerCoreAllocator",
           "ProxyProcess"]
