"""The McKernel lightweight kernel.

Syscall routing (sections 2.1, 3):

* anonymous ``mmap`` — local, contiguous/large-page memory;
* ``munmap`` — local teardown *plus* an offloaded shadow-unmap keeping the
  proxy's view coherent (the cost Figure 9 exposes);
* ``nanosleep`` and scheduling — local (tick-less);
* device-file syscalls — offered to a registered PicoDriver first; claimed
  calls run on the LWK core (fast path), everything else offloads to the
  unmodified Linux driver through the proxy process;
* everything else — offloaded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import GUARD, TRACE
from ..core.lockclasses import declare_lock_class
from ..core.picodriver import PicoDriverRegistry
from ..errors import BadSyscall, FastPathUnavailable, ReproError
from ..hw.node import Node
from ..ihk.ikc import IkcChannel
from ..ihk.partition import IhkPartition
from ..kernels.base import KernelBase, Task
from ..linux.kernel import LinuxKernel
from ..linux.vfs import File
from ..obs.spans import track_of
from ..params import Params
from ..sim import Simulator, Tracer
from ..units import pages_for
from .mm import LwkMM, PerCoreAllocator
from .proxy import ProxyProcess
from .scheduler import CoopScheduler

# The dispatcher lock ranks *below* every device lock: a fast path runs
# under syscall dispatch and then takes its device's submit lock, never
# the other way around.  Declared without an instance — the current
# dispatcher is per-core cooperative and needs no shared word — so the
# hierarchy slot is reserved before anyone grows a cross-kernel
# dispatcher and discovers the inversion the hard way.
declare_lock_class(
    "mckernel.dispatch", rank=10, subsystem="mckernel",
    attrs=("dispatch_lock",),
    doc="orders LWK syscall dispatch against device fast paths")

#: fd-based syscalls that may target a device file
_FD_SYSCALLS = ("close", "read", "writev", "ioctl", "poll", "lseek")


class McKernel(KernelBase):
    """One LWK instance, booted by IHK next to Linux on the same node."""

    name = "mckernel"

    def __init__(self, sim: Simulator, params: Params, node: Node,
                 linux: LinuxKernel, ikc: IkcChannel,
                 partition: IhkPartition, aspace,
                 tracer: Optional[Tracer] = None):
        super().__init__(sim, params, tracer)
        self.node = node
        self.linux = linux
        self.ikc = ikc
        self.partition = partition
        self.aspace = aspace
        self.mm = LwkMM(params, partition.lwk_allocator)
        core_ids = [c.core_id for c in partition.cores]
        self.alloc = PerCoreAllocator(params, node.kheap, set(core_ids))
        self.sched = CoopScheduler(core_ids)
        self.pico = PicoDriverRegistry()
        self.proxies: Dict[str, ProxyProcess] = {}
        #: fd -> (device path, Linux file object) per task, mirrored from
        #: the proxy's fd table after device opens
        self._device_fds: Dict[str, Dict[int, Tuple[str, File]]] = {}
        node.mckernel = self

    # -- process management ----------------------------------------------------

    def spawn_process(self, name: str, core_id: Optional[int] = None,
                      rng=None) -> Task:
        """Create an LWK process and its Linux-side proxy."""
        task = self.spawn_task(name, core_id if core_id is not None else -1,
                               rng)
        placed = self.sched.enqueue(task, core_id)
        task.core_id = placed
        os_core = self.node.cpus.owned_by("linux")[0].core_id
        proxy_task = self.linux.spawn_task(f"{name}.proxy", os_core, rng)
        # the proxy mirrors the application's user address space (partially
        # separated page tables): offloaded driver calls resolve user
        # buffers through the same mappings the LWK installed
        proxy_task.pagetable = task.pagetable
        self.proxies[name] = ProxyProcess(task, proxy_task)
        self._device_fds[name] = {}
        return task

    def proxy_for(self, task: Task) -> ProxyProcess:
        """The Linux-side proxy process of an LWK task."""
        proxy = self.proxies.get(task.name)
        if proxy is None:
            raise ReproError(f"{task.name} has no proxy process")
        return proxy

    def device_file(self, task: Task, fd: int) -> Tuple[str, File]:
        """(path, Linux file) behind a device fd of this task."""
        entry = self._device_fds.get(task.name, {}).get(fd)
        if entry is None:
            raise BadSyscall(f"{task.name}: fd {fd} is not an open device")
        return entry

    # -- time ----------------------------------------------------------------------

    def execute(self, task: Task, seconds: float):
        """Generator: tick-less computation.

        No noise is ever added (the LWK's defining property), but if the
        co-operative scheduler has several tasks on this core they share
        it, so wall time scales with the run-queue depth.
        """
        if seconds <= 0:
            return None
        load = max(1, self.sched.load(task.core_id))
        yield self.sim.timeout(seconds * load)
        return None

    # -- PicoDriver registration -------------------------------------------------

    def register_picodriver(self, driver) -> None:
        """Attach a fast-path driver (verifies unification + layouts)."""
        driver.attach(self)
        self.pico.register(driver)

    # -- syscall dispatch ------------------------------------------------------------

    def syscall(self, task: Task, name: str, *args):
        """Generator: LWK entry cost + routing + per-call accounting."""
        t0 = self.sim.now
        span = TRACE.collector.begin_span(
            f"lwk.{name}", track_of(self), cat="syscall",
            args={"task": task.name}) if TRACE.enabled else None
        try:
            yield self.sim.timeout(self.params.syscall.lwk_entry)
            ret = yield from self._dispatch(task, name, args)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.account_syscall(name, self.sim.now - t0)
        return ret

    def _dispatch(self, task: Task, name: str, args: tuple):
        sc = self.params.syscall
        # --- locally implemented services ---
        if name == "mmap" and len(args) == 1:
            length, = args
            yield self.sim.timeout(sc.mmap_cost
                                   + pages_for(length) * sc.page_map_cost)
            return self.mm.alloc_anonymous(task, length)
        if name == "munmap":
            self.check_args(name, args, 2)
            vaddr, length = args
            yield self.sim.timeout(sc.munmap_cost
                                   + pages_for(length) * sc.page_unmap_cost)
            self.mm.free_anonymous(task, vaddr, length)
            # keep the proxy's address space coherent — an offloaded
            # shadow unmap (the residual cost of Figure 9)
            yield from self._offload(task, "munmap_shadow", (vaddr, length))
            return 0
        if name == "nanosleep":
            self.check_args(name, args, 1)
            duration, = args
            yield self.sim.timeout(sc.nanosleep_cost / 2 + duration)
            return 0
        # --- device fast path ---
        if name in _FD_SYSCALLS or (name == "mmap" and len(args) == 2):
            fd = args[0]
            entry = self._device_fds.get(task.name, {}).get(fd)
            if entry is not None:
                path, _file = entry
                decision = self.pico.decide(path, name, args)
                self.tracer.count(
                    f"pico.{'fast' if decision.handled else 'offload'}.{name}")
                if decision.handled:
                    driver = self.pico.lookup(path)
                    guard = (getattr(getattr(driver, "linux_driver", None),
                                     "guard", None)
                             if GUARD.enabled else None)
                    if guard is not None and not guard.admits(name):
                        # Dispatch-time routing: every path the guard
                        # tracks for this call is DOWN, so go straight
                        # to offload without exception churn.
                        self.tracer.count("guard.routed_offload")
                        self.tracer.count(f"guard.routed_offload.{name}")
                        ret = yield from self._guarded_offload(
                            task, name, args, guard)
                        return ret
                    try:
                        ret = yield from driver.fast_call(task, name, args)
                        return ret
                    except FastPathUnavailable as exc:
                        # Graceful degradation: the fast path declined
                        # (halted engine, failed submit); the unmodified
                        # Linux driver handles everything, so re-issue
                        # the call over the offload path.
                        self.tracer.count("pico.fallbacks")
                        self.tracer.count(f"pico.fallback.{name}")
                        if exc.engine is not None:
                            # per-engine attribution so flap reports can
                            # name which engine degraded
                            self.tracer.count(
                                f"pico.fallback.engine{exc.engine}")
                        if TRACE.enabled:
                            TRACE.collector.instant_span(
                                "pico.fallback", track_of(self),
                                cat="recovery",
                                args={"syscall": name,
                                      "engine": exc.engine})
                        if guard is not None:
                            ret = yield from self._guarded_offload(
                                task, name, args, guard)
                        else:
                            ret = yield from self._offload(task, name, args)
                        return ret
                if name == "close":
                    ret = yield from self._offload(task, name, args)
                    self._device_fds[task.name].pop(fd, None)
                    return ret
        # --- everything else: system call offloading ---
        ret = yield from self._offload(task, name, args)
        if name == "open":
            path = args[0]
            if self.linux.vfs.is_device(path):
                proxy = self.proxy_for(task)
                file = self.linux.vfs.file_for(proxy.name, ret)
                self._device_fds[task.name][ret] = (path, file)
        return ret

    def _guarded_offload(self, task: Task, name: str, args: tuple, guard):
        """Offload with the outcome fed to the guard's offload breaker.

        The offload path is the route of last resort, so its breaker
        never blocks dispatch — it only attributes failures so a flap
        report can tell "fast path degraded" from "device dead".
        """
        try:
            ret = yield from self._offload(task, name, args)
        except ReproError as exc:
            if guard is not None:
                guard.record_failure("offload",
                                     f"{type(exc).__name__}: {exc}")
            raise
        if guard is not None:
            guard.record_success("offload")
        return ret

    def _offload(self, task: Task, name: str, args: tuple):
        self.tracer.count("offload.calls")
        proxy = self.proxy_for(task)
        span = TRACE.collector.begin_span(
            f"ikc.offload.{name}", track_of(self), cat="offload",
            args=proxy.trace_identity()) if TRACE.enabled else None
        try:
            ret = yield from self.ikc.call(proxy.linux_task, name, args,
                                           cause=span)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        return ret
