"""McKernel memory management.

Two policies matter for PicoDriver (sections 3.3-3.4):

* **Anonymous mappings are physically contiguous and large-page backed
  whenever possible, and always pinned.**  SDMA fast paths can then walk
  page tables over long physical spans instead of pinning page-by-page.

* **The kernel allocator is per-core.**  ``kfree`` must run on a McKernel
  CPU to find its free list — but SDMA completions run on *Linux* CPUs.
  :meth:`PerCoreAllocator.kfree` reproduces the paper's extension: a
  foreign (Linux) CPU takes a slower cross-core path instead of failing.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import OutOfMemory, ReproError
from ..hw.memory import FrameAllocator, SharedHeap
from ..kernels.base import Task
from ..params import Params
from ..units import LARGE_PAGE_SIZE, PAGE_SIZE, align_up, pages_for


class LwkMM:
    """Anonymous-memory manager over the LWK's partitioned frames."""

    def __init__(self, params: Params, allocator: FrameAllocator):
        self.params = params
        self.allocator = allocator

    def alloc_anonymous(self, task: Task, length: int) -> int:
        """Map ``length`` bytes of ANONYMOUS memory: physically contiguous
        (2MB-aligned when it helps), large-page mapped, pinned."""
        if length <= 0:
            raise ReproError(f"mmap of non-positive length {length}")
        n = pages_for(length)
        lp_frames = LARGE_PAGE_SIZE // PAGE_SIZE
        align = lp_frames if n >= lp_frames else 1
        try:
            extents = [self.allocator.alloc_contiguous(n, align=align)]
        except OutOfMemory:
            # best effort: fall back to as-few-extents-as-possible
            extents = self.allocator.alloc(n)
        va = task.mmap_cursor
        # align the VA so 2MB-aligned physical runs can use large pages
        if align > 1:
            va = align_up(va, LARGE_PAGE_SIZE)
        task.mmap_cursor = align_up(va + length, PAGE_SIZE)
        task.pagetable.map_extents(va, extents, pinned=True,
                                   use_large_pages=True)
        return va

    def free_anonymous(self, task: Task, vaddr: int, length: int) -> None:
        """Unmap an anonymous region and return its frames."""
        released = task.pagetable.unmap_range(
            vaddr, align_up(length, PAGE_SIZE))
        self.allocator.free(released)


class PerCoreAllocator:
    """McKernel's scalable per-core kernel-object allocator.

    Objects are tagged with their allocating core.  Freeing from a core the
    LWK manages is cheap; freeing from a *Linux* CPU only works once the
    PicoDriver extension is enabled, and costs extra (section 3.3).
    """

    def __init__(self, params: Params, heap: SharedHeap,
                 lwk_cores: Set[int]):
        self.params = params
        self.heap = heap
        self.lwk_cores = set(lwk_cores)
        self.foreign_free_enabled = False
        self._owner: Dict[int, int] = {}           # addr -> owning core
        self._freelists: Dict[int, List[int]] = {}  # core -> recycled addrs
        self.foreign_frees = 0

    def kmalloc(self, size: int, core_id: int) -> Tuple[int, float]:
        """Allocate on ``core_id``; returns (addr, cpu cost)."""
        if core_id not in self.lwk_cores:
            raise ReproError(
                f"McKernel kmalloc on unmanaged core {core_id}")
        addr = self.heap.kmalloc(size)
        self._owner[addr] = core_id
        return addr, self.params.mem.kmalloc_cost

    def kfree(self, addr: int, core_id: int) -> float:
        """Free ``addr`` from ``core_id``; returns the cpu cost.

        On an LWK core: push onto that core's free list.  On any other
        (Linux) CPU: fail unless the cross-kernel extension is on.
        """
        owner = self._owner.pop(addr, None)
        if owner is None:
            raise ReproError(f"kfree of unallocated {addr:#x}")
        if core_id in self.lwk_cores:
            self.heap.kfree(addr)
            self._freelists.setdefault(core_id, []).append(addr)
            return self.params.mem.kfree_cost
        if not self.foreign_free_enabled:
            # the unmodified behaviour the paper had to fix
            self._owner[addr] = owner  # leave allocation intact
            raise ReproError(
                f"McKernel kfree called on non-LWK CPU {core_id} "
                f"(enable the PicoDriver foreign-free extension)")
        self.heap.kfree(addr)
        self._freelists.setdefault(owner, []).append(addr)
        self.foreign_frees += 1
        return self.params.mem.foreign_free_cost

    def live_objects(self) -> int:
        """Number of live kernel objects (leak checks)."""
        return len(self._owner)
