"""The proxy process (paper section 2.1).

For every McKernel process there is a Linux-side proxy that provides the
execution context for offloaded syscalls and *owns the state Linux must
track*: most importantly the file descriptor table — "McKernel has no
notion of file descriptors, it simply returns the number it receives from
the proxy process".
"""

from __future__ import annotations

from ..kernels.base import Task


class ProxyProcess:
    """Linux-side twin of one McKernel task."""

    def __init__(self, mck_task: Task, linux_task: Task):
        self.mck_task = mck_task
        self.linux_task = linux_task

    @property
    def name(self) -> str:
        return self.linux_task.name

    def trace_identity(self) -> dict:
        """Span args identifying this proxy pair in a trace."""
        return {"proxy": self.name, "app": self.mck_task.name}

    def fd_table(self):
        """The *Linux* fd table — the single source of truth for open
        files of the McKernel process."""
        return self.mck_task.kernel.linux.vfs.fd_table(self.linux_task.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProxyProcess for {self.mck_task.name}>"
