"""McKernel's co-operative, tick-less round-robin scheduler.

There is no timer tick on LWK cores — a task runs until it yields — which
is exactly why McKernel cores are noise-free (sections 2.1, 4).  The HPC
configurations in the paper pin one rank per core, so the scheduler's run
queues are usually depth one; the implementation still supports
multiplexing for completeness and for tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import ReproError
from ..kernels.base import Task


class CoopScheduler:
    """Per-core FIFO run queues with voluntary yield only."""

    def __init__(self, core_ids: List[int]):
        if not core_ids:
            raise ReproError("scheduler needs at least one core")
        self.core_ids = list(core_ids)
        self._queues: Dict[int, Deque[Task]] = {c: deque() for c in core_ids}

    def enqueue(self, task: Task, core_id: Optional[int] = None) -> int:
        """Place ``task`` on a core (least-loaded when unspecified)."""
        if core_id is None:
            core_id = min(self.core_ids, key=lambda c: len(self._queues[c]))
        if core_id not in self._queues:
            raise ReproError(f"core {core_id} not managed by this LWK")
        self._queues[core_id].append(task)
        return core_id

    def current(self, core_id: int) -> Optional[Task]:
        """The task at the head of a core's run queue."""
        queue = self._queues[core_id]
        return queue[0] if queue else None

    def yield_cpu(self, core_id: int) -> Optional[Task]:
        """Co-operative yield: rotate the core's run queue."""
        queue = self._queues[core_id]
        if not queue:
            return None
        queue.rotate(-1)
        return queue[0]

    def dequeue(self, task: Task) -> None:
        """Remove a task from whichever run queue holds it."""
        for queue in self._queues.values():
            if task in queue:
                queue.remove(task)
                return
        raise ReproError(f"{task} not on any run queue")

    def load(self, core_id: int) -> int:
        """Run-queue depth of a core."""
        return len(self._queues[core_id])

    @property
    def is_tickless(self) -> bool:
        """No preemption timer exists; documented as an invariant."""
        return True
