"""A miniature MPI over PSM.

Enough of MPI to run the paper's workloads: communicator/world setup
(``MPI_Init`` semantics including device initialization), point-to-point
with requests, the collectives the CORAL apps exercise, and an
``I_MPI_STATS``-style per-call profile (Table 1)."""

from .communicator import MpiRank, MpiWorld
from .p2p import PersistentRequest, Request
from .stats import MpiStats, StatRow
from . import collectives

__all__ = ["MpiRank", "MpiStats", "MpiWorld", "PersistentRequest",
           "Request", "StatRow", "collectives"]
