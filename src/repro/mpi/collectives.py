"""MPI collectives over point-to-point, with the classic algorithms:

* ``barrier`` — dissemination (log2 P rounds of small messages),
* ``bcast`` — binomial tree,
* ``reduce`` / ``allreduce`` — binomial tree / recursive doubling, with
  values really combined so correctness is testable,
* ``allgather`` — ring,
* ``alltoallv`` — pairwise exchange,
* ``scan`` — inclusive prefix by recursive doubling,
* ``cart_create`` — address exchange + reorder: an allgather, a barrier
  and per-rank bookkeeping compute.  Dominated by many small
  synchronizing messages, which is why OS noise inflates it (HACC's top
  Linux cost in Table 1).

Every function is a generator to be driven from a rank's process and
records exactly one entry — the collective's MPI name — in the rank's
``MpiStats`` (internal point-to-point calls are suppressed, as Intel
MPI's profile does).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ReproError
from ..sim import AllOf
from .communicator import MpiRank

#: control-message payload size used by synchronization rounds
CTRL = 16


def _tag(op: str, seq: int, extra=None):
    return ("coll", op, seq, extra)


def _timed(name: str):
    """Decorator: wrap a collective generator with stats push/pop/record."""
    def deco(fn):
        def wrapper(rank: MpiRank, *args, **kwargs):
            t0 = rank.sim.now
            rank.stats.push(name)
            try:
                result = yield from fn(rank, *args, **kwargs)
            finally:
                rank.stats.pop()
            rank.stats.record(name, rank.sim.now - t0)
            return result
        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper
    return deco


@_timed("Barrier")
def barrier(rank: MpiRank):
    """Dissemination barrier: ceil(log2 P) rounds."""
    seq = rank.next_seq("barrier")
    size, me = rank.size, rank.rank
    k = 1
    while k < size:
        dst = (me + k) % size
        src = (me - k) % size
        rreq = rank.irecv(src, _tag("bar", seq, k), CTRL)
        sreq = yield from rank.isend(dst, _tag("bar", seq, k), CTRL)
        yield AllOf(rank.sim, [rreq.event, sreq.event])
        k *= 2
    return None


@_timed("Bcast")
def bcast(rank: MpiRank, nbytes: int, root: int = 0, payload=None):
    """Binomial-tree broadcast; returns the payload at every rank."""
    seq = rank.next_seq("bcast")
    size = rank.size
    vrank = (rank.rank - root) % size       # root becomes virtual rank 0
    value = payload if rank.rank == root else None
    mask = 1
    while mask < size:
        mask <<= 1
    mask >>= 1
    received = rank.rank == root
    while mask >= 1:
        if vrank % (mask * 2) == 0 and vrank + mask < size and received:
            dst = (vrank + mask + root) % size
            sreq = yield from rank.isend(dst, _tag("bcast", seq, mask),
                                         nbytes, value)
            yield sreq.event
        elif vrank % (mask * 2) == mask and not received:
            src = (vrank - mask + root) % size
            req = yield from rank.recv(src, _tag("bcast", seq, mask), nbytes)
            value = req.payload
            received = True
        mask >>= 1
    return value


@_timed("Allreduce")
def allreduce(rank: MpiRank, nbytes: int, value,
              op: Callable = lambda a, b: a + b):
    """Recursive-doubling allreduce (with the standard remainder folding
    for non-power-of-two P).  Returns the reduction at every rank."""
    seq = rank.next_seq("allreduce")
    size, me = rank.size, rank.rank
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = value
    in_game = True
    newrank = me
    if me < 2 * rem:                      # fold remainder ranks
        if me % 2 == 0:
            sreq = yield from rank.isend(me + 1, _tag("ar", seq, "pre"),
                                         nbytes, acc)
            yield sreq.event
            in_game = False
        else:
            req = yield from rank.recv(me - 1, _tag("ar", seq, "pre"), nbytes)
            acc = op(acc, req.payload)
            newrank = me // 2
    else:
        newrank = me - rem
    if in_game:
        mask = 1
        while mask < pof2:
            pnew = newrank ^ mask
            partner = pnew * 2 + 1 if pnew < rem else pnew + rem
            rreq = rank.irecv(partner, _tag("ar", seq, mask), nbytes)
            sreq = yield from rank.isend(partner, _tag("ar", seq, mask),
                                         nbytes, acc)
            yield AllOf(rank.sim, [rreq.event, sreq.event])
            acc = op(acc, rreq.payload)
            mask *= 2
    if me < 2 * rem:                      # unfold
        if me % 2 == 1:
            sreq = yield from rank.isend(me - 1, _tag("ar", seq, "post"),
                                         nbytes, acc)
            yield sreq.event
        else:
            req = yield from rank.recv(me + 1, _tag("ar", seq, "post"),
                                       nbytes)
            acc = req.payload
    return acc


@_timed("Reduce")
def reduce(rank: MpiRank, nbytes: int, value, root: int = 0,
           op: Callable = lambda a, b: a + b):
    """Binomial-tree reduce; returns the result at ``root``, else None."""
    seq = rank.next_seq("reduce")
    size = rank.size
    vrank = (rank.rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = ((vrank & ~mask) + root) % size
            sreq = yield from rank.isend(dst, _tag("red", seq, mask),
                                         nbytes, acc)
            yield sreq.event
            break
        partner = vrank | mask
        if partner < size:
            req = yield from rank.recv((partner + root) % size,
                                       _tag("red", seq, mask), nbytes)
            acc = op(acc, req.payload)
        mask <<= 1
    return acc if rank.rank == root else None


@_timed("Allgather")
def allgather(rank: MpiRank, nbytes: int, value):
    """Ring allgather; returns every rank's contribution, indexed by rank."""
    seq = rank.next_seq("allgather")
    size, me = rank.size, rank.rank
    values: List = [None] * size
    values[me] = value
    right, left = (me + 1) % size, (me - 1) % size
    carry = (me, value)
    for step in range(size - 1):
        rreq = rank.irecv(left, _tag("ag", seq, step), nbytes)
        sreq = yield from rank.isend(right, _tag("ag", seq, step),
                                     nbytes, carry)
        yield AllOf(rank.sim, [rreq.event, sreq.event])
        carry = rreq.payload
        values[carry[0]] = carry[1]
    return values


@_timed("Alltoallv")
def alltoallv(rank: MpiRank, send_sizes: Sequence[int],
              payloads: Optional[Sequence] = None):
    """Pairwise-exchange alltoallv; ``send_sizes[i]`` bytes go to rank i.
    Returns the received payloads, indexed by source rank."""
    size, me = rank.size, rank.rank
    if len(send_sizes) != size:
        raise ReproError(f"alltoallv needs {size} sizes, got {len(send_sizes)}")
    seq = rank.next_seq("alltoallv")
    received: List = [None] * size
    received[me] = payloads[me] if payloads is not None else None
    for step in range(1, size):
        dst = (me + step) % size
        src = (me - step) % size
        rreq = rank.irecv(src, _tag("a2av", seq, step), max(send_sizes) + 1)
        sreq = yield from rank.isend(
            dst, _tag("a2av", seq, step), max(1, send_sizes[dst]),
            payloads[dst] if payloads is not None else None)
        yield AllOf(rank.sim, [rreq.event, sreq.event])
        received[src] = rreq.payload
    return received


@_timed("Scan")
def scan(rank: MpiRank, nbytes: int, value,
         op: Callable = lambda a, b: a + b):
    """Inclusive prefix scan (recursive doubling)."""
    seq = rank.next_seq("scan")
    size, me = rank.size, rank.rank
    result = value
    partial = value
    mask = 1
    while mask < size:
        events = []
        rreq = None
        if me + mask < size:
            sreq = yield from rank.isend(me + mask, _tag("scan", seq, mask),
                                         nbytes, partial)
            events.append(sreq.event)
        if me - mask >= 0:
            rreq = rank.irecv(me - mask, _tag("scan", seq, mask), nbytes)
            events.append(rreq.event)
        if events:
            yield AllOf(rank.sim, events)
        if rreq is not None:
            partial = op(rreq.payload, partial)
            result = op(rreq.payload, result)
        mask <<= 1
    return result


@_timed("Cart_create")
def cart_create(rank: MpiRank, dims: Sequence[int]):
    """MPI_Cart_create with reorder; returns this rank's coordinates."""
    size = rank.size
    total = 1
    for d in dims:
        total *= d
    if total != size:
        raise ReproError(f"cart dims {tuple(dims)} != world size {size}")
    yield from allgather(rank, 64, rank.rank)
    yield from rank.compute(2e-7 * size)    # reorder bookkeeping
    yield from barrier(rank)
    coords = []
    rem = rank.rank
    for d in reversed(dims):
        coords.append(rem % d)
        rem //= d
    coords.reverse()
    return coords
