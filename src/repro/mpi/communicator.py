"""MPI world construction and per-rank handles.

``MpiWorld.build`` plays the role of the job launcher plus ``MPI_Init``:
it spawns one task per rank on the machine's application kernel, opens a
PSM endpoint for each (device open/ioctl/mmap — *offloaded* on McKernel,
plus the PicoDriver's extra per-process setup when registered), exchanges
endpoint addresses out of band, and synchronizes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import TRACE
from ..errors import ReproError
from ..obs.spans import track_of
from ..psm import Endpoint, TagMatcher
from ..psm.mq import ANY
from ..sim import AllOf
from ..units import MiB
from .p2p import Request
from .stats import MpiStats

#: scratch buffer each rank maps at init for message data
SCRATCH_BYTES = 24 * MiB


class MpiRank:
    """One MPI rank: task + endpoint + stats + collective sequencing."""

    def __init__(self, world: "MpiWorld", rank: int, task, endpoint: Endpoint):
        self.world = world
        self.rank = rank
        self.task = task
        self.endpoint = endpoint
        self.sim = world.sim
        self.stats = MpiStats()
        self.scratch: Optional[int] = None
        self._coll_seq: Dict[str, int] = {}
        self._started_at = 0.0

    @property
    def size(self) -> int:
        return self.world.size

    def addr_of(self, rank: int):
        """PSM endpoint address of another rank."""
        return self.world.address(rank)

    def next_seq(self, op: str) -> int:
        """Per-collective sequence number (identical across ranks because
        collectives are called in the same order everywhere)."""
        seq = self._coll_seq.get(op, 0)
        self._coll_seq[op] = seq + 1
        return seq

    # -- init ------------------------------------------------------------

    def init(self):
        """Generator: this rank's share of MPI_Init."""
        t0 = self.sim.now
        self._started_at = t0
        yield from self.endpoint.open()
        self.world._register(self.rank, self.endpoint.addr)
        self.scratch = yield from self.task.syscall("mmap", SCRATCH_BYTES)
        # wait for every rank to have registered (out-of-band PMI barrier)
        yield self.world._all_registered(self.sim)
        self.stats.record("Init", self.sim.now - t0)

    def finalize(self):
        """Generator: close the endpoint, account total runtime."""
        yield from self.endpoint.close()
        self.stats.add_runtime(self.sim.now - self._started_at)

    # -- point to point ---------------------------------------------------------

    def isend(self, dest: int, tag, nbytes: int, payload=None):
        """Generator: MPI_Isend -> Request."""
        t0 = self.sim.now
        span = TRACE.collector.begin_span(
            "mpi.isend", track_of(self.task.kernel), cat="mpi",
            args={"rank": self.rank, "dest": dest, "nbytes": nbytes}) \
            if TRACE.enabled else None
        try:
            mq_req = yield from self.endpoint.mq_isend(
                self.addr_of(dest), tag, self.scratch, nbytes, payload)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.stats.record("Isend", self.sim.now - t0)
        return Request(mq_req, "send")

    def irecv(self, source, tag, max_bytes: int) -> Request:
        """MPI_Irecv (non-blocking post; no syscalls in the caller)."""
        matcher = TagMatcher(
            source=self.addr_of(source) if source is not None else ANY,
            tag=tag)
        mq_req = self.endpoint.mq_irecv(matcher, (self.scratch, max_bytes))
        return Request(mq_req, "recv")

    def send(self, dest: int, tag, nbytes: int, payload=None):
        """Generator: blocking MPI_Send."""
        t0 = self.sim.now
        span = TRACE.collector.begin_span(
            "mpi.send", track_of(self.task.kernel), cat="mpi",
            args={"rank": self.rank, "dest": dest, "nbytes": nbytes}) \
            if TRACE.enabled else None
        try:
            mq_req = yield from self.endpoint.mq_send(
                self.addr_of(dest), tag, self.scratch, nbytes, payload)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.stats.record("Send", self.sim.now - t0)
        return Request(mq_req, "send")

    def recv(self, source, tag, max_bytes: int):
        """Generator: blocking MPI_Recv."""
        t0 = self.sim.now
        span = TRACE.collector.begin_span(
            "mpi.recv", track_of(self.task.kernel), cat="mpi",
            args={"rank": self.rank, "max_bytes": max_bytes}) \
            if TRACE.enabled else None
        try:
            req = self.irecv(source, tag, max_bytes)
            yield req.event
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        self.stats.record("Recv", self.sim.now - t0)
        return req

    def send_init(self, dest: int, tag, nbytes: int):
        """MPI_Send_init: describe a persistent send channel."""
        from .p2p import PersistentRequest
        return PersistentRequest(self, "send", dest, tag, nbytes)

    def recv_init(self, source, tag, nbytes: int):
        """MPI_Recv_init: describe a persistent receive channel."""
        from .p2p import PersistentRequest
        return PersistentRequest(self, "recv", source, tag, nbytes)

    def sendrecv(self, dest: int, source, tag, nbytes: int, payload=None,
                 max_bytes: Optional[int] = None):
        """Generator: MPI_Sendrecv; returns the received Request."""
        rreq = self.irecv(source, tag, max_bytes or max(nbytes, 1))
        sreq = yield from self.isend(dest, tag, nbytes, payload)
        t0 = self.sim.now
        yield AllOf(self.sim, [rreq.event, sreq.event])
        self.stats.record("Sendrecv", self.sim.now - t0)
        return rreq

    def compute(self, seconds: float):
        """Generator: application computation between MPI calls."""
        return self.task.compute(seconds)


class MpiWorld:
    """All ranks of one job on one machine."""

    def __init__(self, machine):
        self.machine = machine
        self.sim = machine.sim
        self.ranks: List[MpiRank] = []
        self._addresses: Dict[int, object] = {}
        self._registered_evt = None

    @property
    def size(self) -> int:
        return len(self.ranks)

    @classmethod
    def build(cls, machine, ranks_per_node: int) -> "MpiWorld":
        world = cls(machine)
        n_nodes = len(machine.nodes)
        for node_idx in range(n_nodes):
            for local in range(ranks_per_node):
                global_rank = node_idx * ranks_per_node + local
                task = machine.spawn_rank(node_idx, local, global_rank)
                ep = Endpoint(machine.sim, machine.params,
                              machine.nodes[node_idx].node.hfi, task,
                              tracer=machine.tracer)
                world.ranks.append(MpiRank(world, global_rank, task, ep))
        return world

    def address(self, rank: int):
        """Endpoint address of ``rank`` (after its init)."""
        try:
            return self._addresses[rank]
        except KeyError:
            raise ReproError(f"rank {rank} not initialized yet")

    def _register(self, rank: int, addr) -> None:
        self._addresses[rank] = addr
        if (self._registered_evt is not None
                and not self._registered_evt.triggered
                and len(self._addresses) == self.size):
            self._registered_evt.succeed()

    def _all_registered(self, sim):
        if self._registered_evt is None:
            self._registered_evt = sim.event()
        if (not self._registered_evt.triggered
                and len(self._addresses) == self.size):
            self._registered_evt.succeed()
        return self._registered_evt

    # -- running -------------------------------------------------------------

    def launch(self, rank_main: Callable) -> List:
        """Run ``rank_main(rank)`` (a generator function) on every rank:
        init -> body -> finalize.  Returns each rank's body result."""
        procs = []

        def wrapper(rank: MpiRank):
            yield from rank.init()
            result = yield from rank_main(rank)
            yield from rank.finalize()
            return result

        for rank in self.ranks:
            procs.append(self.sim.process(wrapper(rank)))
        done = self.sim.run(until=AllOf(self.sim, procs))
        return [procs[i].value for i in range(len(procs))]

    def aggregate_stats(self) -> MpiStats:
        """Job-wide profile: per-call time summed over all ranks."""
        total = MpiStats()
        for rank in self.ranks:
            total.merge(rank.stats)
        return total
