"""MPI point-to-point operations and requests."""

from __future__ import annotations

from typing import List, Optional

from ..config import TRACE
from ..errors import ReproError
from ..obs.spans import track_of
from ..psm.mq import MqRequest
from ..sim import AllOf, Event


class Request:
    """An MPI request wrapping a PSM MQ request."""

    def __init__(self, mq_request: MqRequest, kind: str):
        self.mq_request = mq_request
        self.kind = kind

    @property
    def event(self) -> Event:
        return self.mq_request.event

    @property
    def done(self) -> bool:
        return self.mq_request.done

    @property
    def payload(self):
        if not self.done:
            raise ReproError("request not complete")
        return self.mq_request.payload

    @property
    def nbytes(self) -> int:
        return self.mq_request.nbytes


class PersistentRequest:
    """MPI persistent communication: ``Send_init``/``Recv_init`` describe
    the transfer once; ``Start`` fires an instance; ``Wait`` completes it;
    ``Request_free`` releases the description (UMT2013's sweep pattern —
    MPI_Start and MPI_Request_free both show in the paper's Table 1)."""

    def __init__(self, rank, kind: str, peer, tag, nbytes: int):
        self.rank = rank
        self.kind = kind            # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.active: Optional[Request] = None
        self.freed = False
        self._instance = 0

    def start(self):
        """Generator: MPI_Start — activate one instance."""
        if self.freed:
            raise ReproError("MPI_Start on a freed persistent request")
        if self.active is not None and not self.active.done:
            raise ReproError("MPI_Start while a previous instance is active")
        t0 = self.rank.sim.now
        inst_tag = ("persist", self.tag, self._instance)
        self._instance += 1
        self.rank.stats.push("Start")   # fold inner Isend into Start
        try:
            if self.kind == "send":
                self.active = yield from self.rank.isend(
                    self.peer, inst_tag, self.nbytes)
            else:
                self.active = self.rank.irecv(self.peer, inst_tag,
                                              self.nbytes)
        finally:
            self.rank.stats.pop()
        self.rank.stats.record("Start", self.rank.sim.now - t0)
        return self.active

    def wait(self):
        """Generator: complete the active instance."""
        if self.active is None:
            raise ReproError("MPI_Wait with no started instance")
        result = yield from wait(self.rank, self.active)
        return result

    def free(self) -> None:
        """MPI_Request_free."""
        if self.freed:
            raise ReproError("double MPI_Request_free")
        self.freed = True
        self.rank.stats.record("Request_free", 2e-7)


def wait(rank, request: Request):
    """Generator: MPI_Wait — where rendezvous progress time surfaces
    (the Table 1 column the paper bolds)."""
    t0 = rank.sim.now
    span = TRACE.collector.begin_span(
        "mpi.wait", track_of(rank.task.kernel), cat="mpi",
        args={"rank": rank.rank, "kind": request.kind}) \
        if TRACE.enabled else None
    try:
        yield request.event
    finally:
        if TRACE.enabled and span is not None:
            TRACE.collector.end_span(span)
    rank.stats.record("Wait", rank.sim.now - t0)
    return request


def waitall(rank, requests: List[Request]):
    """Generator: MPI_Waitall."""
    t0 = rank.sim.now
    span = TRACE.collector.begin_span(
        "mpi.waitall", track_of(rank.task.kernel), cat="mpi",
        args={"rank": rank.rank, "n": len(requests)}) \
        if TRACE.enabled else None
    try:
        yield AllOf(rank.sim, [r.event for r in requests])
    finally:
        if TRACE.enabled and span is not None:
            TRACE.collector.end_span(span)
    rank.stats.record("Waitall", rank.sim.now - t0)
    return requests
