"""``I_MPI_STATS``-style MPI call profiling.

Accumulates per-call time summed over all ranks, and renders the Table 1
columns: cumulative Time, % of MPI time, % of total runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class StatRow:
    """One row of the communication profile."""

    call: str          # e.g. "Wait" for MPI_Wait
    time: float        # cumulative seconds over all ranks
    pct_mpi: float     # share of total MPI time
    pct_runtime: float # share of total runtime


class MpiStats:
    """Per-call accumulation across ranks."""

    def __init__(self) -> None:
        self._time: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._runtime: float = 0.0
        self._ctx: List[str] = []

    def push(self, name: str) -> None:
        """Enter a collective: suppress recording of its internal
        point-to-point calls (Intel MPI reports only the collective)."""
        self._ctx.append(name)

    def pop(self) -> None:
        """Leave the innermost collective context."""
        self._ctx.pop()

    def record(self, call: str, elapsed: float) -> None:
        """Account one call's elapsed time (suppressed inside collectives)."""
        if self._ctx:
            return  # internal to a collective; the collective records itself
        self._time[call] = self._time.get(call, 0.0) + elapsed
        self._calls[call] = self._calls.get(call, 0) + 1

    def add_runtime(self, elapsed: float) -> None:
        """Account one rank's total runtime (for the %Rt column)."""
        self._runtime += elapsed

    def merge(self, other: "MpiStats") -> None:
        """Fold another rank's profile into this one."""
        for call, t in other._time.items():
            self._time[call] = self._time.get(call, 0.0) + t
        for call, n in other._calls.items():
            self._calls[call] = self._calls.get(call, 0) + n
        self._runtime += other._runtime

    @property
    def total_mpi_time(self) -> float:
        return sum(self._time.values())

    @property
    def total_runtime(self) -> float:
        return self._runtime

    def time_in(self, call: str) -> float:
        """Cumulative seconds recorded for one call."""
        return self._time.get(call, 0.0)

    def calls_to(self, call: str) -> int:
        """Number of recorded invocations of one call."""
        return self._calls.get(call, 0)

    def top(self, n: int = 5) -> List[StatRow]:
        """The Table 1 view: top-n calls by cumulative time."""
        total_mpi = self.total_mpi_time or 1.0
        total_rt = self._runtime or 1.0
        rows = sorted(self._time.items(), key=lambda kv: -kv[1])[:n]
        return [StatRow(call=call, time=t, pct_mpi=100.0 * t / total_mpi,
                        pct_runtime=100.0 * t / total_rt)
                for call, t in rows]

    def render(self, n: int = 5, label: str = "") -> str:
        """Plain-text top-n profile table."""
        lines = [f"Call (MPI_)      Time(s)    %MPI     %Rt   {label}"]
        for row in self.top(n):
            lines.append(f"{row.call:<14s} {row.time:9.4f} {row.pct_mpi:7.2f} "
                         f"{row.pct_runtime:7.2f}")
        return "\n".join(lines)
