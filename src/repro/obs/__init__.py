"""PicoTrace: causal cross-kernel event tracing (the observability plane).

The subsystem has three layers:

* :mod:`repro.obs.spans` — the span/flow store and the per-object track
  stamping (:func:`~repro.obs.spans.track_of`), fed by TRACE-gated
  hooks throughout the MPI/PSM/kernel/driver/hardware stack;
* :mod:`repro.obs.export` — Chrome-trace / Perfetto JSON export with
  one track per node/kernel/SDMA-engine;
* :mod:`repro.obs.critical_path` — the backward flow-edge walk from a
  message completion to a per-segment latency breakdown.

Everything is opt-in via :func:`repro.config.enable_tracing`; with
tracing disabled no hook runs and experiment outputs are bit-identical
to an uninstrumented build (lint rule PD011 enforces the gating).
"""

from .critical_path import (Segment, breakdown_by_category, critical_path,
                            message_completion, render_breakdown)
from .export import (chrome_trace_events, export_chrome_trace,
                     write_chrome_trace)
from .spans import Span, SpanCollector, track_of

__all__ = [
    "Span", "SpanCollector", "track_of",
    "chrome_trace_events", "export_chrome_trace", "write_chrome_trace",
    "Segment", "breakdown_by_category", "critical_path",
    "message_completion", "render_breakdown",
]
