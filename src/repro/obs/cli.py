"""``python -m repro trace`` — run an experiment with tracing enabled.

    python -m repro trace fig4  [--out trace.json] [--breakdown] [--smoke]
    python -m repro trace chaos [--out trace.json] [--breakdown]

Builds a :class:`~repro.obs.spans.SpanCollector`, installs it with
:func:`repro.config.enable_tracing` for the duration of the experiment,
then optionally writes the Chrome-trace JSON (open in
https://ui.perfetto.dev) and prints the per-segment critical-path
breakdown for the largest completed message under every OS config.
"""

from __future__ import annotations

from typing import List

from ..config import ALL_CONFIGS, enable_tracing
from ..units import KiB, MiB
from .critical_path import render_breakdown
from .export import write_chrome_trace
from .spans import SpanCollector

#: trimmed fig4 sweep for --smoke: one PIO-regime and one SDMA-regime size
SMOKE_SIZES = (16 * KiB, 4 * MiB)

_USAGE = ("usage: python -m repro trace <fig4|chaos> "
          "[--out FILE] [--breakdown] [--smoke]")


def run_traced(experiment: str, smoke: bool = False) -> SpanCollector:
    """Run ``experiment`` with tracing enabled; returns the collector.

    The collector is installed only for the duration of the run, so the
    caller never leaks tracing into later machine builds.
    """
    collector = SpanCollector()
    enable_tracing(collector)
    try:
        if experiment == "fig4":
            from ..experiments.fig4 import run_fig4
            if smoke:
                result = run_fig4(sizes=SMOKE_SIZES, repetitions=1)
            else:
                result = run_fig4(repetitions=2)
            print(result.render())
        elif experiment == "chaos":
            from ..experiments.chaos import run_chaos
            result = run_chaos(smoke=True)
            print(result.render())
        else:
            raise ValueError(f"unknown trace experiment {experiment!r}")
    finally:
        enable_tracing(None)
    collector.finalize()
    return collector


def cmd_trace(argv: List[str]) -> int:
    """Entry point for ``python -m repro trace ...``."""
    out = None
    rest: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out = next(it, None)
            if out is None:
                print(_USAGE)
                return 2
        else:
            rest.append(arg)
    breakdown = "--breakdown" in rest
    smoke = "--smoke" in rest
    rest = [a for a in rest if a not in ("--breakdown", "--smoke")]
    unknown = [a for a in rest if a.startswith("-")]
    if unknown or len(rest) != 1 or rest[0] not in ("fig4", "chaos"):
        print(_USAGE)
        return 2
    experiment = rest[0]

    collector = run_traced(experiment, smoke=smoke)
    print(f"\ntrace: {len(collector.spans)} spans, "
          f"{len(collector.flows)} flow edges")
    if out is not None:
        write_chrome_trace(collector, out)
        print(f"trace: wrote {out} (load in https://ui.perfetto.dev)")
    if breakdown:
        for config in ALL_CONFIGS:
            print()
            print(render_breakdown(collector, config.label))
    return 0
