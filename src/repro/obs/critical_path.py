"""Critical-path extraction over the span store.

Walks backward from a message-completion span along flow edges and
parent links, at each step picking the predecessor that handed off
*latest* — the one actually responsible for when the current span could
make progress.  The result is a contiguous chain of segments covering
``[path start, completion]``, each attributed to one span, which makes
the paper's mechanism claims directly visible: the McKernel offload
path contains ``offload``-category segments (the IKC hop), the
PicoDriver path replaces them with ``fastpath`` segments, and the wire
and SDMA segments show the 4 KB vs. 10 KB descriptor economics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..units import fmt_size
from .spans import Span, SpanCollector


@dataclass
class Segment:
    """One contiguous slice of the critical path, owned by one span."""

    span: Span
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        """Slice length in simulated seconds."""
        return self.t1 - self.t0


def message_completion(collector: SpanCollector, label: str,
                       nbytes: Optional[int] = None) -> Optional[Span]:
    """The latest ``psm.msg_complete`` span for one OS-config label.

    ``nbytes`` filters on the completed message size; ``None`` picks the
    largest message seen (fig4's 4 MiB point).
    """
    spans = collector.find(name="psm.msg_complete",
                           track_prefix=f"{label}/")
    if nbytes is None and spans:
        nbytes = max((s.args or {}).get("nbytes", 0) for s in spans)
    spans = [s for s in spans if (s.args or {}).get("nbytes") == nbytes]
    return spans[-1] if spans else None


def critical_path(collector: SpanCollector, target: Span) -> List[Segment]:
    """The backward critical-path walk ending at ``target``.

    Predecessors of a span are its incoming flow edges plus its parent.
    Each predecessor's *hand-off time* is clamped to the current span's
    start (a flow source may still be open, and a parent by definition
    encloses its child); the predecessor with the latest hand-off wins,
    ties preferring flow edges over the enclosing parent.  The walk
    stops at a span with no predecessors or on a revisit (cycle guard).
    """
    by_sid: Dict[int, Span] = {s.sid: s for s in collector.spans}
    incoming: Dict[int, List[int]] = {}
    for _fid, src_sid, dst_sid in collector.flows:
        incoming.setdefault(dst_sid, []).append(src_sid)

    segments: List[Segment] = []
    cur: Optional[Span] = target
    t_hi = target.end if target.end is not None else target.start
    visited = set()
    while cur is not None and cur.sid not in visited:
        visited.add(cur.sid)
        best = None  # (handoff, is_flow, pred_start, pred)
        for src_sid in incoming.get(cur.sid, ()):
            pred = by_sid.get(src_sid)
            if pred is None:
                continue
            p_end = pred.end if pred.end is not None else pred.start
            key = (min(p_end, cur.start), 1, pred.start)
            if best is None or key > best[:3]:
                best = key + (pred,)
        if cur.parent is not None:
            pred = by_sid.get(cur.parent)
            if pred is not None:
                key = (cur.start, 0, pred.start)
                if best is None or key > best[:3]:
                    best = key + (pred,)
        t_lo = cur.start if best is None else best[0]
        t_lo = min(t_lo, t_hi)
        segments.append(Segment(cur, t_lo, t_hi))
        if best is None:
            break
        cur, t_hi = best[3], t_lo
    segments.reverse()
    return segments


def breakdown_by_category(segments: List[Segment]) -> Dict[str, float]:
    """Total critical-path seconds per span category, insertion-ordered."""
    totals: Dict[str, float] = {}
    for seg in segments:
        cat = seg.span.cat or "other"
        totals[cat] = totals.get(cat, 0.0) + seg.duration
    return totals


def render_breakdown(collector: SpanCollector, label: str,
                     nbytes: Optional[int] = None) -> str:
    """Human-readable per-segment latency breakdown for one config.

    Picks the completion span via :func:`message_completion`, walks the
    critical path and prints each segment plus per-category totals.
    """
    target = message_completion(collector, label, nbytes)
    if target is None:
        return f"{label}: no completed message found in trace"
    segments = critical_path(collector, target)
    size = (target.args or {}).get("nbytes", 0)
    total = segments[-1].t1 - segments[0].t0 if segments else 0.0
    lines = [f"critical path — {label}, {fmt_size(size)} message "
             f"({total * 1e6:.2f} us, {len(segments)} segments)",
             f"  {'start us':>12}  {'dur us':>10}  {'cat':<9} span"]
    for seg in segments:
        lines.append(f"  {seg.t0 * 1e6:>12.3f}  "
                     f"{seg.duration * 1e6:>10.3f}  "
                     f"{seg.span.cat or '-':<9} "
                     f"{seg.span.name} [{seg.span.track}]")
    cats = breakdown_by_category(segments)
    lines.append("  per-category: " + "  ".join(
        f"{cat}={secs * 1e6:.3f}us"
        for cat, secs in sorted(cats.items(),
                                key=lambda kv: -kv[1])))
    return "\n".join(lines)
