"""Chrome-trace / Perfetto JSON export for the span store.

Produces the Chrome Trace Event JSON format (the array-of-events form
wrapped in ``{"traceEvents": [...]}``), loadable in ``chrome://tracing``
and https://ui.perfetto.dev.  Each span track maps to a (pid, tid)
pair: the ``pid`` groups everything up to the last ``/`` of the track
name (``McKernel+HFI1/node0``), the ``tid`` is the final segment
(``lwk``, ``sdma0``, ``irq``, ...), so one process row per node with
one thread lane per kernel/engine.

Events emitted: ``M`` (process/thread names), ``X`` (complete spans,
microsecond ``ts``/``dur``), and ``s``/``f`` flow pairs sharing a
globally unique integer ``id`` for every causal edge.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .spans import SpanCollector

#: simulated seconds -> Chrome trace microseconds
_US = 1e6


def _split_track(track: str) -> Tuple[str, str]:
    """Split ``"A/B/C"`` into the process name ``"A/B"`` and thread ``"C"``."""
    if "/" in track:
        head, tail = track.rsplit("/", 1)
        return head, tail
    return track, track


def _json_args(args: Any) -> Dict[str, Any]:
    """Coerce span args into a JSON-safe flat dict (repr for the rest)."""
    if not args:
        return {}
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


def chrome_trace_events(collector: SpanCollector) -> List[dict]:
    """The flat Chrome Trace Event list for ``collector``'s spans."""
    tracks = sorted({s.track for s in collector.spans})
    pids: Dict[str, int] = {}
    tids: Dict[str, Tuple[int, int]] = {}
    for track in tracks:
        pname, tname = _split_track(track)
        pid = pids.setdefault(pname, len(pids) + 1)
        tids[track] = (pid, len([t for t in tids
                                 if tids[t][0] == pid]) + 1)

    events: List[dict] = []
    for pname, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": pname}})
    for track in tracks:
        pid, tid = tids[track]
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": _split_track(track)[1]}})

    by_sid = {}
    for span in collector.spans:
        by_sid[span.sid] = span
        pid, tid = tids[span.track]
        end = span.end if span.end is not None else span.start
        events.append({
            "ph": "X", "name": span.name, "cat": span.cat or "span",
            "pid": pid, "tid": tid,
            "ts": span.start * _US, "dur": (end - span.start) * _US,
            "args": dict(_json_args(span.args), sid=span.sid),
        })

    for fid, src_sid, dst_sid in collector.flows:
        src = by_sid.get(src_sid)
        dst = by_sid.get(dst_sid)
        if src is None or dst is None:
            continue
        spid, stid = tids[src.track]
        dpid, dtid = tids[dst.track]
        src_end = src.end if src.end is not None else src.start
        events.append({"ph": "s", "id": fid, "name": "flow",
                       "cat": src.cat or "span", "pid": spid, "tid": stid,
                       "ts": src_end * _US})
        events.append({"ph": "f", "id": fid, "name": "flow", "bp": "e",
                       "cat": dst.cat or "span", "pid": dpid, "tid": dtid,
                       "ts": dst.start * _US})
    return events


def export_chrome_trace(collector: SpanCollector) -> dict:
    """The full Chrome trace document (object form) for ``collector``."""
    return {"traceEvents": chrome_trace_events(collector),
            "displayTimeUnit": "ns"}


def write_chrome_trace(collector: SpanCollector, path: str) -> str:
    """Serialize the trace to ``path`` as JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(export_chrome_trace(collector), fh, indent=1)
    return path
