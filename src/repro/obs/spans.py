"""Causal span store for cross-kernel tracing (PicoTrace).

The aggregate planes (:mod:`repro.sim.trace` counters, MPI stats, the
kernel profiler) answer *how much*; this module answers *where a single
message's time went*.  A :class:`Span` is a named interval on a *track*
(one track per node/kernel/SDMA-engine, stamped by
:meth:`SpanCollector.attach_machine`); spans nest via ``parent`` links
within one simulation process, and *flow edges* connect spans across
processes, kernels and nodes — RTS packet to receiver match, offload
request to IKC service, SDMA descriptor to wire delivery.

Every emission call site in the instrumented tree is gated on
:data:`repro.config.TRACE` (lint rule PD011), so traced-off runs make
no calls here at all and stay bit-identical to a build without the
hooks.  The collector itself never creates simulator events and never
draws randomness: recording is pure bookkeeping on the side.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional, Tuple


def track_of(obj: Any, default: str = "main") -> str:
    """The trace track stamped on ``obj`` (see ``attach_machine``).

    Objects that never went through :meth:`SpanCollector.attach_machine`
    (bare test rigs) land on the ``default`` track rather than erroring.
    """
    return getattr(obj, "trace_track", default)


class Span(object):
    """One named interval on a track, with a parent link.

    ``end`` is ``None`` while the span is open.  ``parent`` is the
    ``sid`` of the enclosing span in the same simulation process (or
    ``None`` at a lane root).  Instants are spans with ``end == start``.
    """

    __slots__ = ("sid", "name", "track", "cat", "start", "end",
                 "parent", "args")

    def __init__(self, sid: int, name: str, track: str, cat: str,
                 start: float, parent: Optional[int],
                 args: Optional[dict]):
        self.sid = sid
        self.name = name
        self.track = track
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.args = args

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.sid} {self.name!r} on {self.track!r} "
                f"[{self.start:.9f}, {self.end}]>")


class SpanCollector(object):
    """Accumulates spans and flow edges for one traced run.

    Install with :func:`repro.config.enable_tracing`; every machine
    built while tracing is enabled calls :meth:`attach_machine`, which
    stamps track names onto the kernels/devices and points the
    collector at that machine's simulator clock.  Span ids and flow ids
    are globally unique across all machines attached to one collector
    (the export test relies on this).

    Open spans are kept on per-process *lane* stacks keyed on the
    simulator's ``active_process``, so spans opened by concurrent
    processes (progress workers, watchdogs, IRQ handlers) nest
    correctly instead of interleaving on one stack.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        #: flow edges as ``(flow_id, src_sid, dst_sid)`` tuples
        self.flows: List[Tuple[int, int, int]] = []
        self._sids = count(1)
        self._fids = count(1)
        self._stacks: Dict[int, List[Span]] = {}
        self._sim = None

    # -- wiring ----------------------------------------------------------

    def attach_machine(self, machine: Any) -> None:
        """Stamp track names onto ``machine`` and adopt its clock.

        One track per node/kernel/SDMA-engine, all prefixed with the OS
        configuration label so traces from several machines (fig4 runs
        one per config) stay separable in one collector.
        """
        label = machine.os_config.label
        self._sim = machine.sim
        machine.fabric.trace_track = f"{label}/fabric"
        for i, mn in enumerate(machine.nodes):
            base = f"{label}/node{i}"
            mn.linux.trace_track = f"{base}/linux"
            if getattr(mn, "driver", None) is not None:
                mn.driver.trace_track = f"{base}/linux"
                mn.driver.trace_irq_track = f"{base}/irq"
            if getattr(mn, "mckernel", None) is not None:
                mn.mckernel.trace_track = f"{base}/lwk"
            if getattr(mn, "pico", None) is not None:
                mn.pico.trace_track = f"{base}/lwk"
            hfi = mn.node.hfi
            hfi.trace_track = f"{base}/hfi"
            for j, eng in enumerate(hfi.engines):
                eng.trace_track = f"{base}/sdma{j}"
            if getattr(mn, "guard", None) is not None:
                # guarded runs: breaker transitions and congestion
                # instants get their own per-node track
                mn.guard.trace_track = f"{base}/guard"

    @property
    def now(self) -> float:
        """Current simulated time of the most recently attached machine."""
        return 0.0 if self._sim is None else self._sim.now

    def _lane(self) -> int:
        # 0 is the shared lane for bare event callbacks (no process).
        if self._sim is None or self._sim.active_process is None:
            return 0
        return id(self._sim.active_process)

    # -- emission --------------------------------------------------------

    def begin_span(self, name: str, track: str, cat: str = "",
                   args: Optional[dict] = None, detached: bool = False,
                   flow_from: Optional[Span] = None) -> Span:
        """Open a span now; its parent is the top of the current lane.

        ``detached`` spans get the parent link but are not pushed on the
        lane stack — use them for intervals that outlive the opening
        process (SDMA descriptors on the engine ring).  ``flow_from``
        adds a flow edge from another span (possibly still open).
        """
        lane = self._stacks.setdefault(self._lane(), [])
        parent = lane[-1].sid if lane else None
        span = Span(next(self._sids), name, track, cat, self.now,
                    parent, args)
        self.spans.append(span)
        if not detached:
            lane.append(span)
        if flow_from is not None:
            self.add_flow(flow_from, span)
        return span

    def end_span(self, span: Span, args: Optional[dict] = None) -> Span:
        """Close ``span`` at the current time (idempotent on the stack).

        Clamped to the span's start: abandoned generators are closed by
        the garbage collector, whose ``finally`` blocks can fire after
        the collector's clock moved on to a later machine's simulator.
        """
        if span.end is None:
            span.end = max(span.start, self.now)
        if args:
            span.args = dict(span.args or {}, **args)
        for lane in self._stacks.values():
            if span in lane:
                lane.remove(span)
                break
        return span

    def instant_span(self, name: str, track: str, cat: str = "",
                     args: Optional[dict] = None,
                     flow_from: Optional[Span] = None) -> Span:
        """A zero-duration span (a point event) at the current time."""
        span = self.begin_span(name, track, cat, args, detached=True,
                               flow_from=flow_from)
        span.end = span.start
        return span

    def complete_span(self, name: str, track: str, t0: float, t1: float,
                      cat: str = "", args: Optional[dict] = None,
                      flow_from: Optional[Span] = None) -> Span:
        """A pre-closed span over ``[t0, t1]`` (e.g. a wire flight).

        Never touches the lane stacks and never schedules simulator
        events, so it is safe from bare callbacks.
        """
        span = self.begin_span(name, track, cat, args, detached=True,
                               flow_from=flow_from)
        span.start = t0
        span.end = t1
        return span

    def add_flow(self, src: Span, dst: Span) -> int:
        """Record a causal flow edge ``src -> dst``; returns the flow id."""
        fid = next(self._fids)
        self.flows.append((fid, src.sid, dst.sid))
        return fid

    def current(self) -> Optional[Span]:
        """The innermost open span of the current lane, if any."""
        lane = self._stacks.get(self._lane())
        return lane[-1] if lane else None

    # -- queries ---------------------------------------------------------

    def find(self, name: Optional[str] = None, cat: Optional[str] = None,
             track_prefix: Optional[str] = None) -> List[Span]:
        """Spans matching every given filter, in emission order."""
        out = []
        for s in self.spans:
            if name is not None and s.name != name:
                continue
            if cat is not None and s.cat != cat:
                continue
            if track_prefix is not None \
                    and not s.track.startswith(track_prefix):
                continue
            out.append(s)
        return out

    def finalize(self) -> None:
        """Close any dangling spans and drop the lane stacks.

        Well-behaved instrumentation closes every span in a ``finally``,
        so this is a safety net for processes that never quiesced.
        """
        now = self.now
        for lane in self._stacks.values():
            for span in lane:
                if span.end is None:
                    span.end = max(span.start, now)
        self._stacks.clear()
