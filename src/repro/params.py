"""Calibration parameters for the simulated hardware/software stack.

Every latency, bandwidth and per-item overhead the simulator consumes lives
here, in one place, so the relationship between a constant and the paper
effect it produces is auditable (see DESIGN.md section 4).

The defaults are calibrated so that the *shape* of the paper's results holds:

* ``link_bandwidth`` + ``sdma_desc_overhead`` reproduce Figure 4: with the
  Linux driver's 4KB descriptors a 4MB transfer lands near 10GB/s, while
  the PicoDriver's 10KB descriptors land ~15% higher.
* The IKC constants make one uncontended offloaded syscall cost a few
  microseconds more than a native one — harmless for ping-pong, ruinous
  when 32-64 ranks contend for 4 Linux CPUs (UMT2013/HACC collapse).
* Noise constants give Linux app cores a small residual jitter
  (nohz_full configured, daemons confined to OS cores) that collectives
  amplify at scale.

Absolute numbers are synthetic; they are chosen to be *plausible* for KNL +
OmniPath but no claim is made beyond shape fidelity (EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .units import KiB, MiB, GiB, PAGE_SIZE, USEC, NSEC


@dataclass(frozen=True)
class NicParams:
    """Host Fabric Interface (HFI) and OmniPath fabric characteristics."""

    #: PSM switches from PIO to SDMA at this message size (paper section 2.2.1).
    pio_threshold: int = 64 * KiB
    #: Number of SDMA engines per HFI (paper section 2.2.1).
    sdma_engines: int = 16
    #: Descriptor ring capacity per SDMA engine.
    sdma_ring_size: int = 128
    #: Per-message PIO injection overhead (doorbell + header build).
    pio_overhead: float = 0.55 * USEC
    #: PIO copy bandwidth (store to write-combining window).
    pio_bandwidth: float = 3.2e9
    #: Raw link payload bandwidth (OmniPath 100Gbit/s, payload-efficient).
    link_bandwidth: float = 12.3e9
    #: One-way wire + switch latency between any two nodes.
    wire_latency: float = 0.9 * USEC
    #: SDMA engine per-descriptor fetch/setup overhead. The key Figure 4
    #: constant: 1024 x 4KB descriptors for 4MB cost ~84us on top of the
    #: ~340us of wire time, vs ~420 x 10KB descriptors costing ~34us.
    sdma_desc_overhead: float = 60 * NSEC
    #: The hardware accepts SDMA requests up to this size if the physical
    #: range is contiguous (paper section 3.4).
    sdma_max_request: int = 10 * KiB
    #: The Linux HFI1 driver only ever submits PAGE_SIZE requests
    #: (paper section 3.4: "utilizes only up to PAGE_SIZE long SDMA requests").
    linux_max_request: int = PAGE_SIZE
    #: RcvArray (expected receive) entries per context.
    rcv_array_entries: int = 2048
    #: Cost to program / unprogram one RcvArray entry (MMIO write).
    tid_program_cost: float = 70 * NSEC
    #: Largest physically-contiguous span one RcvArray entry can cover.
    tid_max_span: int = 2 * MiB
    #: Receiver-side memcpy bandwidth for eager messages (PSM copies from
    #: library-internal buffers to application buffers, section 2.2.1).
    eager_copy_bandwidth: float = 10.0e9
    #: Intra-node (shared memory) transport: PSM never touches the driver
    #: for ranks on the same node, which is why single-node runs show OS
    #: parity in Figures 5-7.
    shm_latency: float = 0.6 * USEC
    shm_bandwidth: float = 8.0e9
    #: Interrupt delivery latency (IRQ raise to handler start).
    irq_latency: float = 1.4 * USEC
    #: Completion handler fixed cost (callback dispatch + metadata cleanup).
    irq_handler_cost: float = 0.9 * USEC
    #: SDMA engine drain/reinit time after a halt (the hfi1 driver's
    #: S10_HW_START_UP_HALT_WAIT dwell: descriptor queue flush + CSR
    #: reprogramming before the engine re-enters S99_RUNNING).
    sdma_restart_cost: float = 40 * USEC
    #: Submit-side bound on waiting for a halted engine to return to
    #: S99_RUNNING (covers several back-to-back restart cycles); when it
    #: elapses the slow path surfaces a typed :class:`DeviceTimeout`
    #: instead of hanging the submitter on an engine that never recovers.
    sdma_wait_timeout: float = 400 * USEC


@dataclass(frozen=True)
class SyscallParams:
    """Per-syscall cost building blocks (native execution)."""

    #: Kernel entry/exit (trap, save/restore) on Linux.
    linux_entry: float = 0.28 * USEC
    #: Kernel entry/exit on McKernel (leaner path, no audit/seccomp).
    lwk_entry: float = 0.12 * USEC
    #: get_user_pages() per-page cost in the Linux driver (lookup + pin).
    gup_per_page: float = 40 * NSEC
    #: McKernel page-table iteration cost per *physical span* — pinned
    #: memory means no page references are taken (paper section 3.4).
    ptwalk_per_span: float = 18 * NSEC
    #: Building one SDMA descriptor (request structure + ring write).
    desc_build: float = 26 * NSEC
    #: writev() fixed handler cost in the Linux HFI1 driver (iovec copy,
    #: validation, engine reservation).
    writev_base: float = 0.85 * USEC
    #: writev() fixed cost in the HFI PicoDriver fast path.
    writev_base_pico: float = 0.38 * USEC
    #: ioctl(TID_UPDATE) fixed handler cost (Linux driver).
    tid_ioctl_base: float = 0.95 * USEC
    #: ioctl(TID_UPDATE) fixed cost in the PicoDriver fast path.
    tid_ioctl_base_pico: float = 0.34 * USEC
    #: Misc slow-path syscalls (always Linux-served).
    open_cost: float = 4.5 * USEC
    close_cost: float = 1.2 * USEC
    read_cost: float = 0.9 * USEC
    poll_cost: float = 1.6 * USEC
    mmap_cost: float = 2.8 * USEC
    munmap_cost: float = 3.4 * USEC
    nanosleep_cost: float = 1.1 * USEC
    #: per-process PicoDriver initialization (kernel-level mappings of
    #: driver internals, DWARF-layout setup) — the MPI_Init inflation the
    #: paper observes for McKernel+HFI in Table 1.
    pico_init_cost: float = 350 * USEC
    #: installing one page-table entry during mmap.
    page_map_cost: float = 25 * NSEC
    #: tearing down one page-table entry (incl. amortized TLB shootdown) —
    #: the munmap cost that dominates QBOX's residual kernel time (Fig. 9).
    page_unmap_cost: float = 48 * NSEC


@dataclass(frozen=True)
class PsmParams:
    """PSM library protocol parameters (section 2.2.1)."""

    #: messages above the PIO threshold but at most this size are sent
    #: eager over SDMA (receiver copies out of library buffers); larger
    #: messages use expected receive with TID registration.
    expected_threshold: int = 192 * KiB
    #: rendezvous window: one TID registration + one writev per window.
    window_size: int = 256 * KiB
    #: expected-receive windows registered ahead of the incoming data.
    prefetch_windows: int = 3
    #: RTS/CTS control message size (PIO, user-space driven).
    ctrl_bytes: int = 64
    #: library-side bookkeeping per MQ operation.
    mq_overhead: float = 0.25 * USEC
    #: receiver progress-engine work per rendezvous window (rcvhdrq
    #: polling, header validation, completion bookkeeping) — identical on
    #: every OS configuration.
    rndv_window_overhead: float = 6.0 * USEC
    #: base reliability timeout: an un-ACKed eager send, an unanswered
    #: RTS, or a CTS whose data never lands is retransmitted after this
    #: long (chosen well above the worst uncontended transfer time of one
    #: 256KB window so the zero-fault path never spuriously retries).
    retry_timeout: float = 400 * USEC
    #: exponential backoff multiplier applied per retransmission.
    retry_backoff: float = 2.0
    #: bounded retransmit budget before a typed DeviceTimeout /
    #: TransferCorrupt surfaces to the application.
    max_retries: int = 6


@dataclass(frozen=True)
class IkcParams:
    """Inter-kernel communication (syscall offloading) costs."""

    #: Marshal request + enqueue on the IKC channel.
    request_cost: float = 0.50 * USEC
    #: Inter-processor interrupt to wake the Linux-side worker.
    ipi_cost: float = 1.30 * USEC
    #: Linux-side dequeue + proxy-process context dispatch.
    dispatch_cost: float = 1.50 * USEC
    #: Marshal response + notify the LWK core.
    response_cost: float = 1.00 * USEC
    #: Effective per-dispatch disturbance when more proxy processes are
    #: runnable than there are OS CPUs: direct context switch plus cache/
    #: TLB pollution and IPI/scheduler storms on slow in-order KNL cores.
    #: This is the paper's section 4.3 amplification: "substantially lower
    #: number of Linux CPUs than the number of MPI ranks ... introduces
    #: high contention on a few Linux CPUs for driver processing".  The
    #: magnitude is derived from the paper's own Table 1 (McKernel spends
    #: ~80% of UMT runtime in MPI on modest message counts, implying
    #: effective per-offload service of hundreds of microseconds under
    #: full 32-rank thrash); see DESIGN.md section 4.
    context_switch_cost: float = 75.0 * USEC
    #: Cap on the queue-depth-per-CPU multiplier of the switch penalty.
    contention_cap: float = 8.0

    @property
    def round_trip(self) -> float:
        """Uncontended offload overhead on top of the handler itself."""
        return (self.request_cost + self.ipi_cost
                + self.dispatch_cost + self.response_cost)


@dataclass(frozen=True)
class NoiseParams:
    """Residual OS noise on Linux application cores.

    OFP's production Linux runs nohz_full on app cores, so the residual
    noise is small: rare timer ticks plus occasional kworker activity.
    McKernel app cores are tickless and noise-free.
    """

    #: Residual tick rate on nohz_full cores (housekeeping still fires).
    tick_rate_hz: float = 10.0
    #: Cost of one residual tick.
    tick_cost: float = 4.0 * USEC
    #: Rate of heavier asynchronous events (kworker, RCU callbacks).
    burst_rate_hz: float = 3.5
    #: Log-normal parameters of burst duration (median ~60us, heavy tail).
    burst_log_median: float = 90.0 * USEC
    burst_log_sigma: float = 0.9

    @property
    def mean_fraction(self) -> float:
        """Expected fraction of CPU stolen by noise (first-order)."""
        import math
        burst_mean = self.burst_log_median * math.exp(self.burst_log_sigma ** 2 / 2)
        return (self.tick_rate_hz * self.tick_cost
                + self.burst_rate_hz * burst_mean)


@dataclass(frozen=True)
class NodeParams:
    """A KNL compute node as configured in the paper's evaluation."""

    #: Total CPU cores (Xeon Phi 7250; dev nodes have 64-core 7210).
    total_cores: int = 68
    #: Cores given to the application (power-of-two, paper section 4.1).
    app_cores: int = 64
    #: Cores reserved for OS activity / Linux in multi-kernel mode.
    os_cores: int = 4
    #: Hardware threads per core.
    hw_threads: int = 4
    #: MCDRAM capacity.
    mcdram_bytes: int = 16 * GiB
    #: DDR4 capacity.
    ddr_bytes: int = 96 * GiB
    #: NUMA domains in SNC-4 flat mode (4 MCDRAM + 4 DDR).
    numa_domains: int = 8


@dataclass(frozen=True)
class MemParams:
    """Memory-management policies that differ between the kernels."""

    #: Linux anonymous pages: effectively random 4KB frames (fragmented
    #: after boot); probability two virtually-adjacent pages are also
    #: physically adjacent.
    linux_contig_prob: float = 0.02
    #: McKernel backs anonymous mappings with large pages / contiguous
    #: runs whenever possible (paper section 3.4).
    lwk_large_page_prob: float = 0.97
    #: kmalloc per-object allocator cost (both kernels, same order).
    kmalloc_cost: float = 90 * NSEC
    #: kfree cost on the owning core.
    kfree_cost: float = 60 * NSEC
    #: Extra cost of McKernel kfree invoked from a *Linux* CPU
    #: (foreign-core free list insertion, paper section 3.3).
    foreign_free_cost: float = 150 * NSEC


@dataclass(frozen=True)
class BlkParams:
    """The modeled pxd block device and its backing replicas.

    ``replicas`` defaults to 0: no machine grows a block device unless a
    storage experiment opts in, which is what keeps the paper figures
    bit-identical to the pre-PicoBlock tree.
    """

    #: Backing replicas each write is cloned to (0 = no block device).
    replicas: int = 0
    #: Sector size of the backing media.
    sector_size: int = 512
    #: Sectors per backing store (capacity = sectors * sector_size).
    sectors: int = 4096
    #: Completion-queue depth per replica; doubles as the congestion
    #: gate capacity (px-fuse ``qdepth`` / ``nr_congestion_on``).
    qdepth: int = 32
    #: Fixed media access latency per IO (NVMe-class flash).
    media_latency: float = 8.0 * USEC
    #: Media streaming bandwidth.
    media_bandwidth: float = 2.0e9
    #: Fixed submit-side cost in the Linux pxd slow path (bio build,
    #: tracker clone, per-replica queueing).
    submit_base: float = 0.9 * USEC
    #: Fixed submit cost in the pxd PicoDriver fast path.
    submit_base_pico: float = 0.4 * USEC
    #: Copy bandwidth of the resync scrubber that re-mirrors an evicted
    #: replica from a healthy survivor before re-admission.
    resync_bandwidth: float = 1.2e9


@dataclass(frozen=True)
class Params:
    """Top-level parameter bundle handed to every simulator component."""

    nic: NicParams = field(default_factory=NicParams)
    psm: PsmParams = field(default_factory=PsmParams)
    syscall: SyscallParams = field(default_factory=SyscallParams)
    ikc: IkcParams = field(default_factory=IkcParams)
    noise: NoiseParams = field(default_factory=NoiseParams)
    node: NodeParams = field(default_factory=NodeParams)
    mem: MemParams = field(default_factory=MemParams)
    blk: BlkParams = field(default_factory=BlkParams)
    #: Root seed for all random streams (deterministic runs).
    seed: int = 20180611  # HPDC'18 opening day

    def with_overrides(self, **sections) -> "Params":
        """Return a copy with whole sections replaced, e.g.
        ``params.with_overrides(nic=replace(params.nic, sdma_engines=8))``.
        """
        return replace(self, **sections)


def default_params(seed: int = 20180611) -> Params:
    """The calibrated defaults used by all experiments."""
    return Params(seed=seed)
