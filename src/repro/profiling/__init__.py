"""Kernel-level profiling (the paper's in-house McKernel profiler)."""

from .kernel_profiler import (KernelProfile, profile_from_spans,
                              profile_from_tracer)

__all__ = ["KernelProfile", "profile_from_spans", "profile_from_tracer"]
