"""Per-syscall kernel-time breakdown (paper Figures 8-9).

The paper profiles McKernel with an in-house kernel profiler ("currently
only available for McKernel"), reporting the share of kernel time spent
in each system call.  In this reproduction every kernel's syscall
dispatcher records per-call elapsed time into its tracer under
``syscall.<name>``; this module turns those records into the pie-chart
view, for both the detailed (micro) and the macro simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..sim import Tracer


@dataclass
class KernelProfile:
    """Kernel time per syscall, plus the derived shares."""

    times: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.times.values())

    def shares(self) -> Dict[str, float]:
        """Per-syscall share of total kernel time, sorted descending."""
        total = self.total or 1.0
        return {name: t / total for name, t in
                sorted(self.times.items(), key=lambda kv: -kv[1])}

    def share(self, name: str) -> float:
        """One syscall's share (0 if absent)."""
        return self.shares().get(name, 0.0)

    def dominant(self) -> Optional[str]:
        """The syscall with the most kernel time, or None."""
        if not self.times:
            return None
        return max(self.times, key=self.times.get)

    def ratio_to(self, other: "KernelProfile") -> float:
        """This profile's kernel time as a fraction of ``other``'s —
        the paper's "7% of the original McKernel system time" metric."""
        return self.total / other.total if other.total else float("inf")

    def render(self, label: str = "") -> str:
        """Plain-text breakdown (the pie chart as a table)."""
        lines = [f"Kernel time breakdown{(' — ' + label) if label else ''} "
                 f"(total {self.total * 1e3:.3f}ms)"]
        for name, share in self.shares().items():
            lines.append(f"  {name + '()':>12s} {100 * share:6.1f}%")
        return "\n".join(lines)


def profile_from_tracer(tracer: Tracer, prefix: str = "syscall.") -> KernelProfile:
    """Extract the per-syscall profile a kernel's tracer accumulated."""
    times: Dict[str, float] = {}
    for name, total in tracer.totals(prefix).items():
        call = name[len(prefix):]
        if "." in call:        # skip e.g. syscall.writev.calls counters
            continue
        times[call] = times.get(call, 0.0) + total
    return KernelProfile(times=times)


def profile_from_mapping(times: Mapping[str, float]) -> KernelProfile:
    """Build a profile from a macro result's ``syscall_time`` dict."""
    return KernelProfile(times=dict(times))


def profile_from_spans(collector, track_prefix: Optional[str] = None,
                       cat: str = "syscall") -> KernelProfile:
    """Build a profile from a traced run's syscall spans.

    Both kernels' dispatchers emit one ``cat="syscall"`` span per call,
    named ``linux.<name>`` / ``lwk.<name>`` and covering exactly the
    interval the tracer accounts under ``syscall.<name>`` — so on the
    same run this equals :func:`profile_from_tracer` (pinned by test).
    ``track_prefix`` narrows to one machine/node/kernel track subtree.
    """
    times: Dict[str, float] = {}
    for span in collector.spans:
        if span.cat != cat:
            continue
        if track_prefix is not None \
                and not span.track.startswith(track_prefix):
            continue
        call = span.name.split(".", 1)[-1]
        times[call] = times.get(call, 0.0) + span.duration
    return KernelProfile(times=times)
