"""Performance Scaled Messaging (PSM): the user-level OmniPath library.

Endpoint-based communication with matched queues (section 2.2.1):

* sends below the 64KB threshold go out via PIO, entirely from user space;
* larger sends use SDMA through ``writev()`` on the device file;
* receives are eager (library buffers + copy) below the threshold, and
  expected (direct data placement after TID registration via ``ioctl``)
  above it — the two syscall paths that trigger offloading on McKernel.
"""

from .endpoint import Endpoint, EndpointAddress
from .mq import MatchedQueue, MqRequest, TagMatcher

__all__ = ["Endpoint", "EndpointAddress", "MatchedQueue", "MqRequest",
           "TagMatcher"]
