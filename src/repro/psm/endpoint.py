"""PSM endpoints: the user-level communication API.

One endpoint per MPI rank: it opens the HFI device file (offloaded on
McKernel), owns a receive context, a matched queue and two progress
workers (tx: SDMA submissions, rx: TID registrations).  All protocol
decisions — PIO vs SDMA at the 64KB threshold, eager vs expected receive,
window pipelining — live here, exactly the layering of Figure 2.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from ..errors import ReproError
from ..hw.hfi import HFIDevice, Packet
from ..kernels.base import Task
from ..linux.hfi1 import ioctls as ioc
from ..params import Params
from ..sim import Event, Simulator, Tracer
from .mq import MatchedQueue, MqRequest, TagMatcher, UnexpectedMessage
from .progress import ProgressWorker
from .transfer import (Cts, RecvFlow, Rts, SendFlow, window_count,
                       window_extent)


class EndpointAddress(NamedTuple):
    """Network-wide endpoint identity."""

    node_id: int
    ctxt_id: int


class Endpoint:
    """One PSM endpoint bound to a task and an HFI."""

    def __init__(self, sim: Simulator, params: Params, hfi: HFIDevice,
                 task: Task, tracer: Optional[Tracer] = None,
                 device_path: str = "/dev/hfi1_0"):
        self.sim = sim
        self.params = params
        self.hfi = hfi
        self.task = task
        self.tracer = tracer if tracer is not None else Tracer()
        self.device_path = device_path
        self.mq = MatchedQueue(sim)
        self.tx = ProgressWorker(sim, f"{task.name}.tx")
        self.rx = ProgressWorker(sim, f"{task.name}.rx")
        self.fd: Optional[int] = None
        self.addr: Optional[EndpointAddress] = None
        self._send_flows: Dict[Tuple, SendFlow] = {}
        self._recv_flows: Dict[Tuple, RecvFlow] = {}
        self._msg_counter = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self):
        """Generator: open the device, acquire a context, map the device
        (all slow path — offloaded on McKernel)."""
        self.fd = yield from self.task.syscall("open", self.device_path)
        info = yield from self.task.syscall(
            "ioctl", self.fd, ioc.HFI1_IOCTL_ASSIGN_CTXT, None)
        ctxt_id = info["ctxt"]
        # PIO send buffers / credit window (OS-bypass window for PIO)
        yield from self.task.syscall("mmap", self.fd, 0x10_0000)
        self.addr = EndpointAddress(self.hfi.node_id, ctxt_id)
        self.hfi.context(ctxt_id).on_packet = self._rx_packet
        # McKernel+HFI pays extra per-process setup: kernel-level mappings
        # of driver internals (visible as MPI_Init time in Table 1)
        kernel = self.task.kernel
        pico = getattr(kernel, "pico", None)
        if pico is not None and pico.lookup(self.device_path) is not None:
            yield self.sim.timeout(self.params.syscall.pico_init_cost)
        return self.addr

    def close(self):
        """Generator: close the device file."""
        if self.fd is None:
            raise ReproError("endpoint not open")
        yield from self.task.syscall("close", self.fd)
        self.fd = None

    # -- send API ---------------------------------------------------------------

    def mq_isend(self, dest: EndpointAddress, tag, buffer: int, nbytes: int,
                 payload=None):
        """Generator: start a send, return the MqRequest.

        Eager (PIO) sends complete before returning; rendezvous sends
        complete when every window's SDMA transfer has finished.
        """
        if self.addr is None:
            raise ReproError("endpoint not open")
        req = MqRequest(self.sim, "send")
        yield self.sim.timeout(self.params.psm.mq_overhead)
        if nbytes <= self.params.nic.pio_threshold:
            pkt = Packet(kind="eager", src_node=self.addr.node_id,
                         dst_node=dest.node_id, dst_ctxt=dest.ctxt_id,
                         nbytes=nbytes, tag=("eager", self.addr, tag),
                         payload=payload)
            yield from self.hfi.pio_send(pkt)
            self.tracer.count("psm.eager_sends")
            req.complete(self.addr, tag, nbytes)
            return req
        if nbytes <= self.params.psm.expected_threshold:
            # eager over SDMA: one writev, no TID registration; the
            # receiver copies out of library buffers
            done = Event(self.sim)
            meta = {"dst_node": dest.node_id, "dst_ctxt": dest.ctxt_id,
                    "kind": "eager", "tag": ("eager", self.addr, tag),
                    "payload": payload, "completion": done}
            yield from self.task.syscall("writev", self.fd,
                                         [meta, (buffer, nbytes)])
            self.tracer.count("psm.eager_sdma_sends")
            done.add_callback(
                lambda _e: req.complete(self.addr, tag, nbytes))
            return req
        msg_id = (self.addr, self._msg_counter)
        self._msg_counter += 1
        flow = SendFlow(msg_id=msg_id, buffer=buffer, total=nbytes,
                        windows=window_count(nbytes,
                                             self.params.psm.window_size),
                        request=req)
        self._send_flows[msg_id] = flow
        rts = Rts(msg_id, self.addr, tag, nbytes, payload)
        pkt = Packet(kind="rts", src_node=self.addr.node_id,
                     dst_node=dest.node_id, dst_ctxt=dest.ctxt_id,
                     nbytes=self.params.psm.ctrl_bytes, payload=rts)
        yield from self.hfi.pio_send(pkt)
        self.tracer.count("psm.rndv_sends")
        return req

    def mq_send(self, dest: EndpointAddress, tag, buffer: int, nbytes: int,
                payload=None):
        """Generator: blocking send."""
        req = yield from self.mq_isend(dest, tag, buffer, nbytes, payload)
        yield req.event
        return req

    # -- receive API -----------------------------------------------------------------

    def mq_irecv(self, matcher: TagMatcher,
                 buffer: Optional[Tuple[int, int]] = None) -> MqRequest:
        """Post a receive (non-blocking, no syscalls in the caller)."""
        req, msg = self.mq.post_recv(matcher, buffer)
        if msg is not None:
            if msg.rts is not None:
                self._start_recv_flow(msg.rts, req, buffer)
            else:
                self.sim.process(self._eager_deliver(
                    req, msg.source, msg.tag, msg.nbytes, msg.payload))
        return req

    # -- packet demux (called at wire arrival) ----------------------------------------

    def _rx_packet(self, pkt: Packet) -> None:
        if pkt.kind == "eager":
            _, src, tag = pkt.tag
            req = self.mq.match_arrival(src, tag)
            if req is not None:
                self.sim.process(self._eager_deliver(
                    req, src, tag, pkt.nbytes, pkt.payload))
            else:
                self.mq.add_unexpected(UnexpectedMessage(
                    src, tag, pkt.nbytes, payload=pkt.payload))
                self.tracer.count("psm.unexpected")
        elif pkt.kind == "rts":
            rts: Rts = pkt.payload
            req = self.mq.match_arrival(rts.source, rts.tag)
            if req is not None:
                self._start_recv_flow(rts, req, req.buffer)
            else:
                self.mq.add_unexpected(UnexpectedMessage(
                    rts.source, rts.tag, rts.total, rts=rts))
                self.tracer.count("psm.unexpected")
        elif pkt.kind == "cts":
            cts: Cts = pkt.payload
            self.tx.submit(self._send_window(cts))
        elif pkt.kind == "expected":
            _, msg_id, widx = pkt.tag
            self._window_arrived(msg_id, widx)
        else:
            raise ReproError(f"unknown packet kind {pkt.kind!r}")

    # -- eager data path -----------------------------------------------------------------

    def _eager_deliver(self, req: MqRequest, src, tag, nbytes, payload):
        """Copy from library buffers to the application buffer.

        The copy is pipelined with arrival (PSM copies fragment by
        fragment), so only the rate mismatch versus the link plus one
        fragment tail is serial."""
        copy_bw = self.params.nic.eager_copy_bandwidth
        link_bw = self.params.nic.link_bandwidth
        tail = min(nbytes, 8192) / copy_bw
        lag = max(0.0, nbytes * (1.0 / copy_bw - 1.0 / link_bw))
        yield self.sim.timeout(self.params.psm.mq_overhead + tail + lag)
        req.complete(src, tag, nbytes, payload)

    # -- rendezvous receive side -------------------------------------------------------------

    def _start_recv_flow(self, rts: Rts, req: MqRequest,
                         buffer: Optional[Tuple[int, int]]) -> None:
        if buffer is None:
            raise ReproError(
                f"rendezvous message {rts.msg_id} needs a posted buffer")
        vaddr, length = buffer
        if length < rts.total:
            raise ReproError(f"receive buffer of {length}B too small for "
                             f"{rts.total}B message")
        flow = RecvFlow(rts=rts, buffer=vaddr, request=req,
                        windows=window_count(rts.total,
                                             self.params.psm.window_size))
        self._recv_flows[rts.msg_id] = flow
        for _ in range(min(self.params.psm.prefetch_windows, flow.windows)):
            self._register_next(flow)

    def _register_next(self, flow: RecvFlow) -> None:
        if flow.next_register >= flow.windows:
            return
        w = flow.next_register
        flow.next_register += 1
        self.rx.submit(self._register_window(flow, w))

    def _register_window(self, flow: RecvFlow, w: int):
        """rx-worker job: TID_UPDATE + CTS for window ``w``."""
        offset, length = window_extent(flow.rts.total,
                                       self.params.psm.window_size, w)
        yield self.sim.timeout(self.params.psm.rndv_window_overhead)
        tids = yield from self.task.syscall(
            "ioctl", self.fd, ioc.HFI1_IOCTL_TID_UPDATE,
            {"vaddr": flow.buffer + offset, "length": length})
        flow.tids_by_window[w] = tuple(tids)
        self.tracer.record("psm.tids_per_window", len(tids))
        cts = Cts(flow.rts.msg_id, w, offset, length, tuple(tids), self.addr)
        pkt = Packet(kind="cts", src_node=self.addr.node_id,
                     dst_node=flow.rts.source.node_id,
                     dst_ctxt=flow.rts.source.ctxt_id,
                     nbytes=self.params.psm.ctrl_bytes, payload=cts)
        yield from self.hfi.pio_send(pkt)

    def _window_arrived(self, msg_id: Tuple, widx: int) -> None:
        flow = self._recv_flows.get(msg_id)
        if flow is None:
            raise ReproError(f"expected data for unknown message {msg_id}")
        flow.arrived += 1
        tids = flow.tids_by_window.pop(widx)
        # TID_FREE is deferred off the critical path but still serializes
        # with upcoming registrations on the progress worker
        self.rx.submit(self._free_tids(tids))
        self._register_next(flow)
        if flow.all_arrived():
            del self._recv_flows[msg_id]
            flow.request.complete(flow.rts.source, flow.rts.tag,
                                  flow.rts.total, flow.rts.payload)

    def _free_tids(self, tids):
        yield from self.task.syscall(
            "ioctl", self.fd, ioc.HFI1_IOCTL_TID_FREE, {"tids": list(tids)})

    # -- rendezvous send side ------------------------------------------------------------------

    def _send_window(self, cts: Cts):
        """tx-worker job: SDMA writev for one granted window."""
        flow = self._send_flows.get(cts.msg_id)
        if flow is None:
            raise ReproError(f"CTS for unknown message {cts.msg_id}")
        done = Event(self.sim)
        meta = {"dst_node": cts.dest.node_id, "dst_ctxt": cts.dest.ctxt_id,
                "kind": "expected", "tids": cts.tids,
                "tag": ("win", cts.msg_id, cts.window), "completion": done}
        yield from self.task.syscall(
            "writev", self.fd,
            [meta, (flow.buffer + cts.offset, cts.length)])
        flow.submitted += 1
        done.add_callback(lambda _e: self._sdma_complete(flow))

    def _sdma_complete(self, flow: SendFlow) -> None:
        if flow.window_complete():
            del self._send_flows[flow.msg_id]
            flow.request.complete(self.addr, None, flow.total)
