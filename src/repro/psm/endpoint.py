"""PSM endpoints: the user-level communication API.

One endpoint per MPI rank: it opens the HFI device file (offloaded on
McKernel), owns a receive context, a matched queue and two progress
workers (tx: SDMA submissions, rx: TID registrations).  All protocol
decisions — PIO vs SDMA at the 64KB threshold, eager vs expected receive,
window pipelining — live here, exactly the layering of Figure 2.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from ..config import FAULTS, TRACE
from ..errors import (DeviceTimeout, ReproError, TransferCorrupt,
                      TransientDeviceError)
from ..hw.hfi import HFIDevice, Packet
from ..kernels.base import Task
from ..linux.hfi1 import ioctls as ioc
from ..obs.spans import track_of
from ..params import Params
from ..sim import Event, Simulator, Tracer
from .mq import MatchedQueue, MqRequest, TagMatcher, UnexpectedMessage
from .progress import ProgressWorker
from .transfer import (Cts, RecvFlow, Rts, SendFlow, packet_checksum,
                       window_count, window_extent)


class EndpointAddress(NamedTuple):
    """Network-wide endpoint identity."""

    node_id: int
    ctxt_id: int


class Endpoint:
    """One PSM endpoint bound to a task and an HFI."""

    def __init__(self, sim: Simulator, params: Params, hfi: HFIDevice,
                 task: Task, tracer: Optional[Tracer] = None,
                 device_path: str = "/dev/hfi1_0"):
        self.sim = sim
        self.params = params
        self.hfi = hfi
        self.task = task
        self.tracer = tracer if tracer is not None else Tracer()
        self.device_path = device_path
        self.mq = MatchedQueue(sim)
        self.tx = ProgressWorker(sim, f"{task.name}.tx")
        self.rx = ProgressWorker(sim, f"{task.name}.rx")
        self.fd: Optional[int] = None
        self.addr: Optional[EndpointAddress] = None
        self._send_flows: Dict[Tuple, SendFlow] = {}
        self._recv_flows: Dict[Tuple, RecvFlow] = {}
        self._msg_counter = 0
        # -- reliability state, used only under fault injection --
        self._tx_seq = 0
        #: un-ACKed eager sends: seq -> retransmit record
        self._pending_eager: Dict[Tuple, dict] = {}
        #: eager sequence numbers already delivered (dedups retransmits)
        self._seen_eager = set()
        #: rendezvous msg_ids whose RTS was already processed
        self._seen_rts = set()

    # -- lifecycle ---------------------------------------------------------

    def open(self):
        """Generator: open the device, acquire a context, map the device
        (all slow path — offloaded on McKernel)."""
        self.fd = yield from self.task.syscall("open", self.device_path)
        info = yield from self.task.syscall(
            "ioctl", self.fd, ioc.HFI1_IOCTL_ASSIGN_CTXT, None)
        ctxt_id = info["ctxt"]
        # PIO send buffers / credit window (OS-bypass window for PIO)
        yield from self.task.syscall("mmap", self.fd, 0x10_0000)
        self.addr = EndpointAddress(self.hfi.node_id, ctxt_id)
        self.hfi.context(ctxt_id).on_packet = self._rx_packet
        # McKernel+HFI pays extra per-process setup: kernel-level mappings
        # of driver internals (visible as MPI_Init time in Table 1)
        kernel = self.task.kernel
        pico = getattr(kernel, "pico", None)
        if pico is not None and pico.lookup(self.device_path) is not None:
            yield self.sim.timeout(self.params.syscall.pico_init_cost)
        return self.addr

    def close(self):
        """Generator: close the device file."""
        if self.fd is None:
            raise ReproError("endpoint not open")
        yield from self.task.syscall("close", self.fd)
        self.fd = None

    # -- send API ---------------------------------------------------------------

    def mq_isend(self, dest: EndpointAddress, tag, buffer: int, nbytes: int,
                 payload=None):
        """Generator: start a send, return the MqRequest.

        Eager (PIO) sends complete before returning; rendezvous sends
        complete when every window's SDMA transfer has finished.
        """
        if self.addr is None:
            raise ReproError("endpoint not open")
        req = MqRequest(self.sim, "send")
        span = TRACE.collector.begin_span(
            "psm.isend", track_of(self.task.kernel), cat="psm",
            args={"nbytes": nbytes}) if TRACE.enabled else None
        try:
            ret = yield from self._isend(dest, tag, buffer, nbytes,
                                         payload, req)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        return ret

    def _isend(self, dest: EndpointAddress, tag, buffer: int, nbytes: int,
               payload, req: MqRequest):
        """Generator: protocol selection + initiation (see mq_isend)."""
        yield self.sim.timeout(self.params.psm.mq_overhead)
        if nbytes <= self.params.nic.pio_threshold:
            seq = csum = None
            if FAULTS.enabled:
                seq = (self.addr, self._tx_seq)
                self._tx_seq += 1
                csum = packet_checksum("eager", ("eager", self.addr, tag),
                                       nbytes, seq, payload)
            pkt = Packet(kind="eager", src_node=self.addr.node_id,
                         dst_node=dest.node_id, dst_ctxt=dest.ctxt_id,
                         nbytes=nbytes, tag=("eager", self.addr, tag),
                         payload=payload, seq=seq, csum=csum)
            if FAULTS.enabled:
                # completion is deferred to the receiver's ACK; the
                # watchdog retransmits until acked or the budget is gone
                self._pending_eager[seq] = {
                    "via": "pio", "pkt": pkt, "req": req,
                    "tag": tag, "nbytes": nbytes}
            yield from self.hfi.pio_send(pkt)
            self.tracer.count("psm.eager_sends")
            if FAULTS.enabled:
                self.sim.process(self._eager_watchdog(seq))
            else:
                req.complete(self.addr, tag, nbytes)
            return req
        if nbytes <= self.params.psm.expected_threshold:
            # eager over SDMA: one writev, no TID registration; the
            # receiver copies out of library buffers
            meta = {"dst_node": dest.node_id, "dst_ctxt": dest.ctxt_id,
                    "kind": "eager", "tag": ("eager", self.addr, tag),
                    "payload": payload}
            done = None
            seq = None
            if FAULTS.enabled:
                seq = (self.addr, self._tx_seq)
                self._tx_seq += 1
                meta["seq"] = seq
                meta["csum"] = packet_checksum("eager", meta["tag"],
                                               nbytes, seq, payload)
                self._pending_eager[seq] = {
                    "via": "sdma", "meta": dict(meta), "buffer": buffer,
                    "req": req, "tag": tag, "nbytes": nbytes}
            else:
                done = Event(self.sim)
                meta["completion"] = done
            try:
                yield from self.task.syscall("writev", self.fd,
                                             [meta, (buffer, nbytes)])
            except DeviceTimeout:
                if not FAULTS.enabled:
                    raise
                # the submit timed out on a wedged device (engine never
                # returned to running): the watchdog below owns
                # retransmission, so swallow the typed failure here
                self.tracer.count("psm.send_timeouts")
            self.tracer.count("psm.eager_sdma_sends")
            if FAULTS.enabled:
                self.sim.process(self._eager_watchdog(seq))
            else:
                done.add_callback(
                    lambda _e: req.complete(self.addr, tag, nbytes))
            return req
        msg_id = (self.addr, self._msg_counter)
        self._msg_counter += 1
        flow = SendFlow(msg_id=msg_id, buffer=buffer, total=nbytes,
                        windows=window_count(nbytes,
                                             self.params.psm.window_size),
                        request=req)
        self._send_flows[msg_id] = flow
        rts = Rts(msg_id, self.addr, tag, nbytes, payload)
        csum = (packet_checksum("rts", None, self.params.psm.ctrl_bytes,
                                None, rts) if FAULTS.enabled else None)
        pkt = Packet(kind="rts", src_node=self.addr.node_id,
                     dst_node=dest.node_id, dst_ctxt=dest.ctxt_id,
                     nbytes=self.params.psm.ctrl_bytes, payload=rts,
                     csum=csum)
        yield from self.hfi.pio_send(pkt)
        self.tracer.count("psm.rndv_sends")
        if FAULTS.enabled:
            self.sim.process(self._rts_watchdog(flow, pkt))
        return req

    def mq_send(self, dest: EndpointAddress, tag, buffer: int, nbytes: int,
                payload=None):
        """Generator: blocking send."""
        req = yield from self.mq_isend(dest, tag, buffer, nbytes, payload)
        yield req.event
        return req

    # -- receive API -----------------------------------------------------------------

    def mq_irecv(self, matcher: TagMatcher,
                 buffer: Optional[Tuple[int, int]] = None) -> MqRequest:
        """Post a receive (non-blocking, no syscalls in the caller)."""
        req, msg = self.mq.post_recv(matcher, buffer)
        if msg is not None:
            if msg.rts is not None:
                self._start_recv_flow(msg.rts, req, buffer)
            else:
                self.sim.process(self._eager_deliver(
                    req, msg.source, msg.tag, msg.nbytes, msg.payload))
        return req

    # -- packet demux (called at wire arrival) ----------------------------------------

    def _rx_packet(self, pkt: Packet) -> None:
        rx = TRACE.collector.instant_span(
            f"psm.rx_{pkt.kind}", track_of(self.task.kernel), cat="psm",
            args={"nbytes": pkt.nbytes}, flow_from=pkt.trace) \
            if TRACE.enabled else None
        if FAULTS.enabled and pkt.csum is not None:
            if pkt.csum != packet_checksum(pkt.kind, pkt.tag, pkt.nbytes,
                                           pkt.seq, pkt.payload):
                # Bit flip in flight: drop like a failed link CRC; the
                # sender-side watchdogs retransmit.  For expected data,
                # remember the corruption so exhaustion raises the
                # corruption error, not a generic timeout.
                self.tracer.count("psm.corrupt_drops")
                if pkt.kind == "expected":
                    _, msg_id, _w = pkt.tag
                    flow = self._recv_flows.get(msg_id)
                    if flow is not None:
                        flow.corrupt_seen += 1
                return
        if pkt.kind == "eager":
            _, src, tag = pkt.tag
            if FAULTS.enabled and pkt.seq is not None:
                # ACK every copy (the first ACK may itself be lost), but
                # deliver each sequence number once.
                self.sim.process(self._send_ack(pkt, src))
                if pkt.seq in self._seen_eager:
                    self.tracer.count("psm.dup_eager")
                    return
                self._seen_eager.add(pkt.seq)
            req = self.mq.match_arrival(src, tag)
            if req is not None:
                self.sim.process(self._eager_deliver(
                    req, src, tag, pkt.nbytes, pkt.payload, cause=rx))
            else:
                self.mq.add_unexpected(UnexpectedMessage(
                    src, tag, pkt.nbytes, payload=pkt.payload))
                self.tracer.count("psm.unexpected")
        elif pkt.kind == "ack":
            entry = self._pending_eager.pop(pkt.payload, None)
            if entry is None:
                self.tracer.count("psm.dup_acks")
                return
            if not entry["req"].done:
                entry["req"].complete(self.addr, entry["tag"],
                                      entry["nbytes"])
        elif pkt.kind == "rts":
            rts: Rts = pkt.payload
            if FAULTS.enabled:
                if rts.msg_id in self._seen_rts:
                    self.tracer.count("psm.dup_rts")
                    return
                self._seen_rts.add(rts.msg_id)
            req = self.mq.match_arrival(rts.source, rts.tag)
            if req is not None:
                self._start_recv_flow(rts, req, req.buffer, cause=rx)
            else:
                self.mq.add_unexpected(UnexpectedMessage(
                    rts.source, rts.tag, rts.total, rts=rts))
                self.tracer.count("psm.unexpected")
        elif pkt.kind == "cts":
            cts: Cts = pkt.payload
            flow = self._send_flows.get(cts.msg_id)
            if flow is not None:
                flow.cts_seen += 1
            self.tx.submit(self._send_window(cts, cause=rx))
        elif pkt.kind == "expected":
            _, msg_id, widx = pkt.tag
            self._window_arrived(msg_id, widx, cause=rx)
        else:
            raise ReproError(f"unknown packet kind {pkt.kind!r}")

    # -- eager data path -----------------------------------------------------------------

    def _eager_deliver(self, req: MqRequest, src, tag, nbytes, payload,
                       cause=None):
        """Copy from library buffers to the application buffer.

        The copy is pipelined with arrival (PSM copies fragment by
        fragment), so only the rate mismatch versus the link plus one
        fragment tail is serial."""
        copy_bw = self.params.nic.eager_copy_bandwidth
        link_bw = self.params.nic.link_bandwidth
        tail = min(nbytes, 8192) / copy_bw
        lag = max(0.0, nbytes * (1.0 / copy_bw - 1.0 / link_bw))
        span = TRACE.collector.begin_span(
            "psm.eager_copy", track_of(self.task.kernel), cat="psm",
            args={"nbytes": nbytes}, flow_from=cause) \
            if TRACE.enabled else None
        try:
            yield self.sim.timeout(self.params.psm.mq_overhead + tail + lag)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        if TRACE.enabled:
            TRACE.collector.instant_span(
                "psm.msg_complete", track_of(self.task.kernel), cat="psm",
                args={"nbytes": nbytes}, flow_from=span)
        req.complete(src, tag, nbytes, payload)

    # -- reliability daemons (active only under fault injection) ---------------------------

    def _send_ack(self, pkt: Packet, src: EndpointAddress):
        """Generator: ACK one sequence-numbered eager packet."""
        nbytes = self.params.psm.ctrl_bytes
        ack = Packet(kind="ack", src_node=self.addr.node_id,
                     dst_node=src.node_id, dst_ctxt=src.ctxt_id,
                     nbytes=nbytes, payload=pkt.seq,
                     csum=packet_checksum("ack", None, nbytes, None,
                                          pkt.seq))
        yield from self.hfi.pio_send(ack)

    def _eager_watchdog(self, seq):
        """Retransmit an un-ACKed eager send with exponential backoff;
        fail the request with :class:`DeviceTimeout` when the bounded
        budget is exhausted."""
        psm = self.params.psm
        timeout = psm.retry_timeout
        for _ in range(psm.max_retries):
            yield self.sim.timeout(timeout)
            entry = self._pending_eager.get(seq)
            if entry is None:
                return
            self.tracer.count("psm.retransmits")
            if TRACE.enabled:
                TRACE.collector.instant_span(
                    "psm.retransmit", track_of(self.task.kernel),
                    cat="recovery", args={"kind": "eager"})
            if entry["via"] == "pio":
                yield from self.hfi.pio_send(entry["pkt"])
            else:
                try:
                    yield from self.task.syscall(
                        "writev", self.fd,
                        [dict(entry["meta"]), (entry["buffer"],
                                               entry["nbytes"])])
                except DeviceTimeout:
                    # device wedged for this attempt; keep the backoff
                    # loop alive — a later retry may land post-recovery
                    self.tracer.count("psm.retransmit_timeouts")
            timeout *= psm.retry_backoff
        entry = self._pending_eager.pop(seq, None)
        if entry is not None and not entry["req"].done:
            self.tracer.count("psm.send_failures")
            entry["req"].event.fail(DeviceTimeout(
                f"eager send {seq} unacknowledged after "
                f"{psm.max_retries} retransmits"))

    def _rts_watchdog(self, flow: SendFlow, pkt: Packet):
        """Retransmit an unanswered RTS; once any CTS arrives the
        receiver's per-window watchdogs own further recovery."""
        psm = self.params.psm
        timeout = psm.retry_timeout
        for _ in range(psm.max_retries):
            yield self.sim.timeout(timeout)
            if (flow.cts_seen or flow.finished
                    or flow.msg_id not in self._send_flows):
                return
            self.tracer.count("psm.retransmits")
            if TRACE.enabled:
                TRACE.collector.instant_span(
                    "psm.retransmit", track_of(self.task.kernel),
                    cat="recovery", args={"kind": "rts"})
            yield from self.hfi.pio_send(pkt)
            timeout *= psm.retry_backoff
        if (flow.cts_seen or flow.finished
                or flow.msg_id not in self._send_flows):
            return
        self._send_flows.pop(flow.msg_id, None)
        self.tracer.count("psm.send_failures")
        flow.request.event.fail(DeviceTimeout(
            f"RTS for {flow.msg_id} unanswered after "
            f"{psm.max_retries} retransmits"))

    def _cts_watchdog(self, flow: RecvFlow, w: int, pkt: Packet):
        """Re-grant a window whose data never landed (lost/corrupt CTS
        or data).  The CTS carries the same TIDs, so a duplicate data
        packet from an earlier grant places harmlessly and is deduped."""
        psm = self.params.psm
        timeout = psm.retry_timeout
        msg_id = flow.rts.msg_id
        for _ in range(psm.max_retries):
            yield self.sim.timeout(timeout)
            if (w in flow.arrived_windows
                    or msg_id not in self._recv_flows):
                return
            self.tracer.count("psm.retransmits")
            self.tracer.count("psm.cts_resends")
            if TRACE.enabled:
                TRACE.collector.instant_span(
                    "psm.retransmit", track_of(self.task.kernel),
                    cat="recovery", args={"kind": "cts_regrant"})
            yield from self.hfi.pio_send(pkt)
            timeout *= psm.retry_backoff
        if w in flow.arrived_windows or msg_id not in self._recv_flows:
            return
        if flow.corrupt_seen:
            exc = TransferCorrupt(
                f"window {w} of {msg_id} corrupt after "
                f"{psm.max_retries} retransmits")
        else:
            exc = DeviceTimeout(
                f"window {w} of {msg_id} never arrived after "
                f"{psm.max_retries} retransmits")
        self._fail_recv_flow(flow, exc)

    def _fail_recv_flow(self, flow: RecvFlow, exc: ReproError) -> None:
        if self._recv_flows.pop(flow.rts.msg_id, None) is None:
            return
        self.tracer.count("psm.recv_failures")
        flow.request.event.fail(exc)

    # -- rendezvous receive side -------------------------------------------------------------

    def _start_recv_flow(self, rts: Rts, req: MqRequest,
                         buffer: Optional[Tuple[int, int]],
                         cause=None) -> None:
        if buffer is None:
            raise ReproError(
                f"rendezvous message {rts.msg_id} needs a posted buffer")
        vaddr, length = buffer
        if length < rts.total:
            raise ReproError(f"receive buffer of {length}B too small for "
                             f"{rts.total}B message")
        flow = RecvFlow(rts=rts, buffer=vaddr, request=req,
                        windows=window_count(rts.total,
                                             self.params.psm.window_size))
        if TRACE.enabled:
            # window-registration jobs flow from the RTS arrival instant
            flow.trace_cause = cause
        self._recv_flows[rts.msg_id] = flow
        for _ in range(min(self.params.psm.prefetch_windows, flow.windows)):
            self._register_next(flow)

    def _register_next(self, flow: RecvFlow) -> None:
        if flow.next_register >= flow.windows:
            return
        w = flow.next_register
        flow.next_register += 1
        self.rx.submit(self._register_window(flow, w))

    def _register_window(self, flow: RecvFlow, w: int):
        """rx-worker job: TID_UPDATE + CTS for window ``w``.

        Transient TID_UPDATE failures are retried with backoff *inside*
        the job so the shared rx worker survives them; exhaustion fails
        the flow's request instead of raising."""
        offset, length = window_extent(flow.rts.total,
                                       self.params.psm.window_size, w)
        span = TRACE.collector.begin_span(
            "psm.tid_window", track_of(self.task.kernel), cat="psm",
            args={"window": w, "nbytes": length},
            flow_from=getattr(flow, "trace_cause", None)) \
            if TRACE.enabled else None
        try:
            yield self.sim.timeout(self.params.psm.rndv_window_overhead)
            psm = self.params.psm
            attempts = 0
            while True:
                try:
                    tids = yield from self.task.syscall(
                        "ioctl", self.fd, ioc.HFI1_IOCTL_TID_UPDATE,
                        {"vaddr": flow.buffer + offset, "length": length})
                    break
                except TransientDeviceError as exc:
                    attempts += 1
                    self.tracer.count("psm.tid_retries")
                    if attempts >= psm.max_retries:
                        self._fail_recv_flow(flow, DeviceTimeout(
                            f"TID_UPDATE for {flow.rts.msg_id} window {w} "
                            f"kept failing: {exc}"))
                        return
                    yield self.sim.timeout(
                        psm.retry_timeout
                        * psm.retry_backoff ** (attempts - 1))
            flow.tids_by_window[w] = tuple(tids)
            self.tracer.record("psm.tids_per_window", len(tids))
            cts = Cts(flow.rts.msg_id, w, offset, length, tuple(tids),
                      self.addr)
            csum = (packet_checksum("cts", None, self.params.psm.ctrl_bytes,
                                    None, cts) if FAULTS.enabled else None)
            pkt = Packet(kind="cts", src_node=self.addr.node_id,
                         dst_node=flow.rts.source.node_id,
                         dst_ctxt=flow.rts.source.ctxt_id,
                         nbytes=self.params.psm.ctrl_bytes, payload=cts,
                         csum=csum)
            yield from self.hfi.pio_send(pkt)
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        if FAULTS.enabled:
            self.sim.process(self._cts_watchdog(flow, w, pkt))

    def _window_arrived(self, msg_id: Tuple, widx: int,
                        cause=None) -> None:
        flow = self._recv_flows.get(msg_id)
        if flow is None:
            # Under fault injection a retransmitted window can land after
            # its flow completed or failed; elsewhere it is a protocol bug.
            if FAULTS.enabled:
                self.tracer.count("psm.dup_window")
                return
            raise ReproError(f"expected data for unknown message {msg_id}")
        if FAULTS.enabled and widx in flow.arrived_windows:
            self.tracer.count("psm.dup_window")
            return
        flow.arrived_windows.add(widx)
        flow.arrived += 1
        tids = flow.tids_by_window.pop(widx, None)
        # TID_FREE is deferred off the critical path but still serializes
        # with upcoming registrations on the progress worker
        if tids is not None:
            self.rx.submit(self._free_tids(tids))
        self._register_next(flow)
        if flow.all_arrived():
            del self._recv_flows[msg_id]
            if TRACE.enabled:
                TRACE.collector.instant_span(
                    "psm.msg_complete", track_of(self.task.kernel),
                    cat="psm", args={"nbytes": flow.rts.total},
                    flow_from=cause)
            flow.request.complete(flow.rts.source, flow.rts.tag,
                                  flow.rts.total, flow.rts.payload)

    def _free_tids(self, tids):
        yield from self.task.syscall(
            "ioctl", self.fd, ioc.HFI1_IOCTL_TID_FREE, {"tids": list(tids)})

    # -- rendezvous send side ------------------------------------------------------------------

    def _send_window(self, cts: Cts, cause=None):
        """tx-worker job: SDMA writev for one granted window."""
        flow = self._send_flows.get(cts.msg_id)
        if flow is None:
            # A re-granted CTS can outlive its sender flow (the flow
            # failed on RTS exhaustion); only a bug in fault-free runs.
            if FAULTS.enabled:
                self.tracer.count("psm.stale_cts")
                return
            raise ReproError(f"CTS for unknown message {cts.msg_id}")
        span = TRACE.collector.begin_span(
            "psm.send_window", track_of(self.task.kernel), cat="psm",
            args={"window": cts.window, "nbytes": cts.length},
            flow_from=cause) if TRACE.enabled else None
        try:
            done = Event(self.sim)
            meta = {"dst_node": cts.dest.node_id,
                    "dst_ctxt": cts.dest.ctxt_id,
                    "kind": "expected", "tids": cts.tids,
                    "tag": ("win", cts.msg_id, cts.window),
                    "completion": done}
            if FAULTS.enabled:
                meta["csum"] = packet_checksum(
                    "expected", ("win", cts.msg_id, cts.window), cts.length,
                    None, None)
            try:
                yield from self.task.syscall(
                    "writev", self.fd,
                    [meta, (flow.buffer + cts.offset, cts.length)])
            except DeviceTimeout as exc:
                # The window submit itself timed out (device wedged past
                # the driver's bounded engine wait).  Fail the flow with
                # the typed error instead of letting it escape and kill
                # the tx progress worker.
                self.tracer.count("psm.send_window_timeouts")
                self._send_flows.pop(cts.msg_id, None)
                if not flow.request.done:
                    flow.request.event.fail(exc)
                return
            flow.submitted += 1
        finally:
            if TRACE.enabled and span is not None:
                TRACE.collector.end_span(span)
        done.add_callback(
            lambda e: self._sdma_complete(flow, cts.window, e))

    def _sdma_complete(self, flow: SendFlow, window: int,
                       evt=None) -> None:
        if not flow.window_complete(window):
            return
        if flow.finished:
            return
        flow.finished = True
        # Under fault injection the flow stays registered so a receiver's
        # late re-CTS can still be answered with a fresh submission.
        if not FAULTS.enabled:
            del self._send_flows[flow.msg_id]
        if TRACE.enabled:
            group = getattr(evt, "_value", None)
            TRACE.collector.instant_span(
                "psm.send_complete", track_of(self.task.kernel), cat="psm",
                args={"nbytes": flow.total},
                flow_from=getattr(group, "trace_ctx", None))
        flow.request.complete(self.addr, None, flow.total)
