"""PSM matched queues: tag matching, posted and unexpected queues.

Matching follows the MQ rules: receives match on (source, tag) with
wildcards, in posted order; messages that arrive before a matching receive
is posted land on the unexpected queue and are matched retroactively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from ..errors import ReproError
from ..sim import Event, Simulator

#: wildcard for source or tag
ANY = None


@dataclass(frozen=True)
class TagMatcher:
    """(source, tag) selector with wildcards."""

    source: Optional[Tuple[int, int]] = ANY   # EndpointAddress tuple
    tag: Optional[object] = ANY

    def matches(self, source: Tuple[int, int], tag: object) -> bool:
        """True if (source, tag) satisfies this selector."""
        if self.source is not ANY and self.source != source:
            return False
        if self.tag is not ANY and self.tag != tag:
            return False
        return True


class MqRequest:
    """One receive (or send) request; ``event`` triggers at completion."""

    def __init__(self, sim: Simulator, kind: str, matcher: Optional[TagMatcher]
                 = None, buffer: Optional[Tuple[int, int]] = None):
        self.kind = kind                  # "recv" | "send"
        self.matcher = matcher
        self.buffer = buffer              # (vaddr, length) or None
        self.event = Event(sim)
        self.source: Optional[Tuple[int, int]] = None
        self.tag: object = None
        self.nbytes: int = 0
        self.payload: Any = None

    @property
    def done(self) -> bool:
        return self.event.triggered

    def complete(self, source, tag, nbytes, payload=None) -> None:
        """Finish the request and trigger its completion event."""
        if self.done:
            raise ReproError("request completed twice")
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.event.succeed(self)


@dataclass
class UnexpectedMessage:
    """Arrived data with no posted receive yet."""

    source: Tuple[int, int]
    tag: object
    nbytes: int
    payload: Any = None
    #: for rendezvous: the sender's RTS context so the receive side can
    #: start the expected-receive protocol once a buffer exists
    rts: Any = None


class MatchedQueue:
    """Posted-receive and unexpected queues for one endpoint."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.posted: Deque[MqRequest] = deque()
        self.unexpected: Deque[UnexpectedMessage] = deque()

    # -- receive side -----------------------------------------------------

    def post_recv(self, matcher: TagMatcher,
                  buffer: Optional[Tuple[int, int]] = None) -> Tuple[MqRequest,
                                                                     Optional[UnexpectedMessage]]:
        """Post a receive; returns (request, matched unexpected message or
        None).  The caller drives the data path for an unexpected match."""
        req = MqRequest(self.sim, "recv", matcher, buffer)
        for i, msg in enumerate(self.unexpected):
            if matcher.matches(msg.source, msg.tag):
                del self.unexpected[i]
                return req, msg
        self.posted.append(req)
        return req, None

    # -- arrival side ---------------------------------------------------------

    def match_arrival(self, source, tag) -> Optional[MqRequest]:
        """Find and claim the oldest posted receive matching an arrival."""
        for i, req in enumerate(self.posted):
            if req.matcher.matches(source, tag):
                del self.posted[i]
                return req
        return None

    def add_unexpected(self, msg: UnexpectedMessage) -> None:
        """Park an arrival that matched no posted receive."""
        self.unexpected.append(msg)

    # -- introspection -------------------------------------------------------------

    def counts(self) -> Tuple[int, int]:
        """(posted, unexpected) queue lengths."""
        return len(self.posted), len(self.unexpected)
