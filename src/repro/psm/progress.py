"""Serialized progress workers.

A PSM endpoint is driven by a single application thread, so its device
interactions — window registrations, SDMA submissions — execute one at a
time.  :class:`ProgressWorker` models that: a FIFO of generator jobs
drained by one simulation process.  On McKernel this serialization is what
stacks offloaded ``ioctl``/``writev`` latencies per window.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store


class ProgressWorker:
    """One FIFO job queue drained sequentially."""

    def __init__(self, sim: Simulator, name: str = "progress"):
        self.sim = sim
        self.name = name
        self._jobs = Store(sim, name=f"{name}.jobs")
        self._proc = sim.process(self._run())
        self.completed = 0
        self.failed = 0
        self._on_error: Optional[Callable[[BaseException], None]] = None

    def submit(self, job) -> None:
        """Queue a generator for sequential execution."""
        self._jobs.put(job)

    def on_error(self, handler: Callable[[BaseException], None]) -> None:
        """Install a handler for job exceptions (default: re-raise)."""
        self._on_error = handler

    @property
    def backlog(self) -> int:
        return len(self._jobs.items)

    def _run(self):
        while True:
            job = yield self._jobs.get()
            try:
                yield self.sim.process(job)
                self.completed += 1
            except Exception as exc:
                self.failed += 1
                if self._on_error is not None:
                    self._on_error(exc)
                else:
                    raise
