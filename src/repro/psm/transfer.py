"""PSM transfer protocols: eager (PIO) and rendezvous (SDMA + TIDs).

Rendezvous for a message of N bytes with window size W (section 2.2.1):

    sender                          receiver
    ------                          --------
    RTS(msg_id, total) --PIO-->     match against MQ / unexpected queue
                                    for up to ``prefetch`` windows ahead:
                                        ioctl(TID_UPDATE)  [syscall!]
    <--PIO-- CTS(msg_id, w, tids)
    writev(window w)  [syscall!]
    ...SDMA...         --wire-->    window w placed directly (TIDs)
                                    ioctl(TID_FREE)  [syscall, deferred]
                                    register/CTS next window
    (all windows complete)          (all windows arrived -> recv done)

Both syscall sites are exactly the operations the paper's PicoDriver ports
to the LWK.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..errors import ReproError


def packet_checksum(kind: str, tag: object, nbytes: int, seq: object,
                    payload: object) -> int:
    """Deterministic integrity checksum over a packet's logical content.

    Computed by the sender when fault injection is active and verified
    by the receiver before the packet enters protocol processing; the
    fabric's corruption fault perturbs the stored value, modeling bit
    flips in flight.
    """
    return zlib.crc32(repr((kind, tag, nbytes, seq, payload)).encode())


@dataclass(frozen=True)
class Rts:
    """Ready-to-send control message."""

    msg_id: Tuple
    source: Tuple[int, int]          # sender EndpointAddress
    tag: object
    total: int
    payload: object = None


@dataclass(frozen=True)
class Cts:
    """Clear-to-send for one window."""

    msg_id: Tuple
    window: int
    offset: int
    length: int
    tids: Tuple[int, ...]
    dest: Tuple[int, int]            # receiver EndpointAddress


def window_count(total: int, window_size: int) -> int:
    """Number of rendezvous windows for a message size."""
    if total <= 0:
        raise ReproError(f"bad rendezvous size {total}")
    return -(-total // window_size)


def window_extent(total: int, window_size: int, w: int) -> Tuple[int, int]:
    """(offset, length) of window ``w``."""
    offset = w * window_size
    if offset >= total:
        raise ReproError(f"window {w} beyond message of {total} bytes")
    return offset, min(window_size, total - offset)


@dataclass
class SendFlow:
    """Sender-side state of one rendezvous message."""

    msg_id: Tuple
    buffer: int                      # send buffer vaddr
    total: int
    windows: int
    request: object                  # MqRequest to complete
    sdma_done: int = 0
    submitted: int = 0
    #: windows whose SDMA completed at least once (re-CTS resubmissions
    #: under fault injection complete the same window twice)
    done_windows: Set[int] = field(default_factory=set)
    #: CTS packets seen (any window) — quiesces the sender's RTS watchdog
    cts_seen: int = 0
    #: all windows done and the send request completed
    finished: bool = False

    def window_complete(self, window: int = None) -> bool:
        """Account one SDMA completion; True when the message is done.

        With a ``window`` index, completions are deduplicated so a
        window retransmitted on a receiver's re-CTS is not counted
        twice.  Without one (legacy callers), completions are counted
        blindly and overcounting raises.
        """
        if window is not None:
            self.done_windows.add(window)
            self.sdma_done = len(self.done_windows)
            return self.sdma_done == self.windows
        self.sdma_done += 1
        if self.sdma_done > self.windows:
            raise ReproError(f"msg {self.msg_id}: too many completions")
        return self.sdma_done == self.windows


@dataclass
class RecvFlow:
    """Receiver-side state of one expected-receive message."""

    rts: Rts
    buffer: int                      # receive buffer vaddr
    request: object                  # MqRequest to complete
    windows: int
    next_register: int = 0
    arrived: int = 0
    tids_by_window: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: windows placed at least once (dedups re-CTS-triggered duplicates)
    arrived_windows: Set[int] = field(default_factory=set)
    #: corrupted expected-data packets seen (picks the typed error when
    #: the retransmit budget runs out)
    corrupt_seen: int = 0

    def all_arrived(self) -> bool:
        """True once every window has been placed."""
        return self.arrived == self.windows
