"""PSM transfer protocols: eager (PIO) and rendezvous (SDMA + TIDs).

Rendezvous for a message of N bytes with window size W (section 2.2.1):

    sender                          receiver
    ------                          --------
    RTS(msg_id, total) --PIO-->     match against MQ / unexpected queue
                                    for up to ``prefetch`` windows ahead:
                                        ioctl(TID_UPDATE)  [syscall!]
    <--PIO-- CTS(msg_id, w, tids)
    writev(window w)  [syscall!]
    ...SDMA...         --wire-->    window w placed directly (TIDs)
                                    ioctl(TID_FREE)  [syscall, deferred]
                                    register/CTS next window
    (all windows complete)          (all windows arrived -> recv done)

Both syscall sites are exactly the operations the paper's PicoDriver ports
to the LWK.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class Rts:
    """Ready-to-send control message."""

    msg_id: Tuple
    source: Tuple[int, int]          # sender EndpointAddress
    tag: object
    total: int
    payload: object = None


@dataclass(frozen=True)
class Cts:
    """Clear-to-send for one window."""

    msg_id: Tuple
    window: int
    offset: int
    length: int
    tids: Tuple[int, ...]
    dest: Tuple[int, int]            # receiver EndpointAddress


def window_count(total: int, window_size: int) -> int:
    """Number of rendezvous windows for a message size."""
    if total <= 0:
        raise ReproError(f"bad rendezvous size {total}")
    return -(-total // window_size)


def window_extent(total: int, window_size: int, w: int) -> Tuple[int, int]:
    """(offset, length) of window ``w``."""
    offset = w * window_size
    if offset >= total:
        raise ReproError(f"window {w} beyond message of {total} bytes")
    return offset, min(window_size, total - offset)


@dataclass
class SendFlow:
    """Sender-side state of one rendezvous message."""

    msg_id: Tuple
    buffer: int                      # send buffer vaddr
    total: int
    windows: int
    request: object                  # MqRequest to complete
    sdma_done: int = 0
    submitted: int = 0

    def window_complete(self) -> bool:
        """Account one SDMA completion; True when the message is done."""
        self.sdma_done += 1
        if self.sdma_done > self.windows:
            raise ReproError(f"msg {self.msg_id}: too many completions")
        return self.sdma_done == self.windows


@dataclass
class RecvFlow:
    """Receiver-side state of one expected-receive message."""

    rts: Rts
    buffer: int                      # receive buffer vaddr
    request: object                  # MqRequest to complete
    windows: int
    next_register: int = 0
    arrived: int = 0
    tids_by_window: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def all_arrived(self) -> bool:
        """True once every window has been placed."""
        return self.arrived == self.windows
