"""Deterministic discrete-event simulation core.

A small, SimPy-flavoured engine: an event queue ordered by (time, sequence),
generator-based processes that ``yield`` events, and FIFO multi-server
resources.  Everything above this package (hardware, kernels, MPI, apps)
expresses time purely through these primitives, which keeps runs
deterministic and unit-testable.
"""

from .engine import Event, Simulator, SimError, Timeout
from .process import AllOf, AnyOf, Process
from .resources import Request, Resource, Store
from .rng import RngFactory
from .trace import Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Request",
    "Resource",
    "RngFactory",
    "SimError",
    "Simulator",
    "Store",
    "Timeout",
    "Tracer",
]
