"""Event queue and simulator clock.

Design notes
------------
* Events carry a list of callbacks; triggering an event schedules it on the
  simulator queue, and callbacks run when the queue reaches it.  This is the
  SimPy model and makes process wake-up ordering deterministic.
* The heap is ordered by ``(time, seq)`` where ``seq`` is a monotonically
  increasing tie-breaker, so same-time events fire in schedule order.
* The engine never consults wall-clock time or global randomness; a run is a
  pure function of its inputs (guide: "make it work reliably" before fast).

Tie-break policy (pinned)
-------------------------
Same-timestamp events fire in **stable FIFO order by insertion** — the
``seq`` counter is assigned in :meth:`Simulator._post` call order and the
heap never reorders equal-``(time, seq)`` keys, so two events scheduled
for the same instant are processed in exactly the order they were
triggered.  This is a *contract*, not an accident of ``heapq``: the
bounded model checker (:mod:`repro.analysis.check`) enumerates the
same-time ready set as a *choice point* and must know what choice 0 (the
default, uncontrolled schedule) means.  A regression test pins it.

When a controlled scheduler is installed (``sim.scheduler``, see
:class:`repro.analysis.check.ControlledScheduler`), every same-time
ready set with more than one event becomes an explicit choice point:
the scheduler picks which event fires next and the rest are re-queued
with their original ``(time, seq)`` keys, preserving FIFO order among
the events it did not pick.  With no scheduler installed (the default),
``step()`` takes the single cheap pop path and behaves bit-identically
to a build without the hook.

Precomputed no-op dispatch (hot loop)
-------------------------------------
``step()`` and ``timeout()`` are *rebound per instance*: installing a
controlled scheduler or a wait monitor swaps the instance's bound
method for the instrumented variant, and uninstalling swaps the fast
variant back.  The disabled configuration therefore pays **zero**
per-event branches for the monitor hooks — there is no ``if scheduler
is not None`` test on the fast path at all; the dispatch decision was
made once, at install time.  cProfile on a full fig4 regeneration
(~51k events) attributes ~two thirds of the wall clock to
``step``/``_deliver``/``Timeout.__init__``, which is why these three
and the classes they allocate (:class:`Event`, :class:`Timeout`,
:class:`~repro.sim.process.Process` — all ``__slots__``) are the
flattening targets.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, List, Optional


class SimError(Exception):
    """Raised for misuse of the simulation engine."""


class Event:
    """A one-shot occurrence with a value (or an exception) and callbacks.

    Lifecycle: *pending* -> ``succeed``/``fail`` (-> *triggered*, scheduled)
    -> callbacks run (-> *processed*).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimError("event not yet triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError("event not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception (propagates into waiters)."""
        if self._triggered:
            raise SimError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.sim._post(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this lets late waiters join completed operations.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for fn in callbacks:  # type: ignore[union-attr]
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._post(self, delay)


class Simulator:
    """The event loop: a clock plus a (time, seq)-ordered event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = count()
        self._wait_monitor = None
        self._scheduler = None
        #: the :class:`~repro.sim.process.Process` whose generator is
        #: currently executing, or ``None`` between steps / in bare event
        #: callbacks.  The tracer keys its span stacks on this so spans
        #: opened by concurrent processes (progress workers, watchdogs,
        #: IRQ handlers) never interleave on one stack.
        self.active_process = None
        # Precomputed dispatch: the hot entry points start on their fast
        # variants; installing a monitor rebinds the instance attribute
        # (shadowing the class method) so the disabled path never tests
        # for the hook at all.
        self.step = self._step_fast
        self.timeout = self._timeout_fast

    # -- opt-in monitors (precomputed dispatch) ---------------------------

    @property
    def wait_monitor(self):
        """Opt-in wait observer (the lockdep validator): notified of
        every positive-delay timeout so held-across-wait hazards are
        caught.  Assigning one rebinds :meth:`timeout` to the observed
        variant; assigning ``None`` restores the fast path."""
        return self._wait_monitor

    @wait_monitor.setter
    def wait_monitor(self, monitor) -> None:
        self._wait_monitor = monitor
        self.timeout = (self._timeout_fast if monitor is None
                        else self._timeout_observed)

    @property
    def scheduler(self):
        """Opt-in controlled scheduler (the PicoCheck explorer): when
        installed, same-time ready sets become choice points and every
        step is bracketed for footprint recording.  Assigning one
        rebinds :meth:`step` to the controlled variant; assigning
        ``None`` (the default) restores the single cheap pop path."""
        return self._scheduler

    @scheduler.setter
    def scheduler(self, scheduler) -> None:
        self._scheduler = scheduler
        self.step = (self._step_fast if scheduler is None
                     else self._step_controlled)

    # -- scheduling ------------------------------------------------------

    def _post(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._heap, (self.now + delay, next(self._seq), event))

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now.

        Instances carry a rebound fast/observed variant (see
        :attr:`wait_monitor`); this class-level definition documents the
        contract and covers any instance built without ``__init__``.
        """
        return self._timeout_fast(delay, value)

    def _timeout_fast(self, delay: float, value: Any = None) -> Timeout:
        # no wait monitor installed: straight to the event allocation
        return Timeout(self, delay, value)

    def _timeout_observed(self, delay: float, value: Any = None) -> Timeout:
        wait_monitor = self._wait_monitor
        if wait_monitor is not None and delay > 0:
            wait_monitor.on_timed_wait(delay)
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Run a generator as a simulation process."""
        from .process import Process
        return Process(self, generator)

    # -- running ---------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Same-time events fire in stable FIFO insertion order (see the
        module docstring's tie-break policy).  An installed controlled
        scheduler overrides the pick within a same-time ready set; it
        cannot reorder across distinct timestamps.

        Instances carry a rebound fast/controlled variant (see
        :attr:`scheduler`); this class-level definition documents the
        contract and covers any instance built without ``__init__``.
        """
        return self._step_fast()

    def _step_fast(self) -> None:
        # the uncontrolled hot path: one pop, one callback fan-out
        heap = self._heap
        if not heap:
            raise SimError("step() on an empty event queue")
        when, _, event = heappop(heap)
        self.now = when
        event._run_callbacks()

    def _step_controlled(self) -> None:
        # Controlled mode (PicoCheck): surface the same-time ready set
        # as a choice point and bracket the step so the scheduler can
        # record its footprint.
        heap = self._heap
        if not heap:
            raise SimError("step() on an empty event queue")
        scheduler = self._scheduler
        if scheduler is not None:
            when = heap[0][0]
            ready = [heappop(heap)]
            while heap and heap[0][0] == when:
                ready.append(heappop(heap))
            if len(ready) > 1:
                pick = scheduler.choose_ready(when, ready)
                if not 0 <= pick < len(ready):
                    raise SimError(f"scheduler chose {pick} out of "
                                   f"{len(ready)} ready events")
                entry = ready.pop(pick)
                # the unchosen events keep their original (time, seq)
                # keys, so FIFO order among them is preserved
                for other in ready:
                    heappush(heap, other)
            else:
                entry = ready[0]
            self.now = when
            scheduler.on_step_begin(when, entry[1], entry[2])
            try:
                entry[2]._run_callbacks()
            finally:
                scheduler.on_step_end()
            return
        self._step_fast()  # pragma: no cover - rebinding keeps these in sync

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, ``until`` seconds pass, or the
        ``until`` event triggers.  Returns the ``until`` event's value when
        given an event.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            done = [False]
            until.add_callback(lambda e: done.__setitem__(0, True))
            while not done[0]:
                if not self._heap:
                    raise SimError("run(until=event): queue drained before "
                                   "the event triggered (deadlock?)")
                self.step()
            if until._exc is not None:
                raise until._exc
            return until._value
        horizon = float(until)
        if horizon < self.now:
            raise SimError(f"run until {horizon} is in the past (now={self.now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self.now = horizon
        return None
