"""Generator-based simulation processes and event combinators.

A process body is a Python generator that ``yield``s :class:`Event`s; the
process suspends until the yielded event triggers, then resumes with the
event's value (or has the event's exception thrown into it).  A process is
itself an :class:`Event` that triggers with the generator's return value, so
processes compose (``yield sim.process(sub())``).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from .engine import Event, SimError, Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """An event that completes when its generator returns."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: Simulator, gen: Generator):
        if not hasattr(gen, "send"):
            raise SimError(f"process body must be a generator, got {gen!r}")
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Event = sim.timeout(0.0)
        self._waiting_on.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on keeps running; the process is
        simply no longer waiting on it.
        """
        if self.triggered:
            raise SimError("cannot interrupt a finished process")
        waited = self._waiting_on
        interrupt_evt = Event(self.sim)
        interrupt_evt.add_callback(
            lambda e: self._deliver(waited, Interrupt(cause)))
        interrupt_evt.succeed()

    # -- internal --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._deliver(event, None)

    def _deliver(self, event: Event, interrupt: Any) -> None:
        self._waiting_on = None  # type: ignore[assignment]
        prev_active = self.sim.active_process
        self.sim.active_process = self
        scheduler = self.sim._scheduler
        if scheduler is not None:
            # PicoCheck footprint recording: which processes a step
            # resumed is half of the explorer's independence relation
            scheduler.on_process_resumed(self)
        try:
            if interrupt is not None:
                target = self._gen.throw(interrupt)
            elif event.exception is not None:
                target = self._gen.throw(event.exception)
            else:
                target = self._gen.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Fail the process event; the exception propagates into any
            # process waiting on this one (failure-injection tests rely on
            # this instead of crashing the event loop).
            self.fail(exc)
            return
        finally:
            self.sim.active_process = prev_active
        if not isinstance(target, Event) or target.sim is not self.sim:
            self._gen.close()
            self.fail(SimError(f"process yielded a non-event (or an event "
                               f"from another simulator): {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf: triggers based on a set of child events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for evt in self._events:
            if evt.sim is not sim:
                raise SimError("condition mixes events from different simulators")
        self._pending = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for evt in self._events:
            evt.add_callback(self._check)

    def _values(self) -> dict:
        # ``processed`` (callbacks ran), not ``triggered``: a Timeout counts
        # as triggered from creation but only *fires* at its due time.
        return {evt: evt._value for evt in self._events if evt.processed
                and evt.exception is None}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered (fails on first error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self.succeed(self._values())
