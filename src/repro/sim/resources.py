"""FIFO multi-server resources and stores.

:class:`Resource` models ``capacity`` identical servers with a FIFO queue —
it is the primitive behind "4 Linux CPUs serving offloaded syscalls" and
"16 SDMA engines".  :class:`Store` is an unbounded message queue used by IKC
channels and NIC receive paths.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .engine import Event, SimError, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` servers, FIFO service order, no preemption."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # occupancy statistics (time-weighted)
        self._busy_area = 0.0
        self._queue_area = 0.0
        self._last_stamp = sim.now

    # -- API ---------------------------------------------------------------

    def request(self) -> Request:
        """Claim a server; the returned event triggers when granted."""
        self._account()
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Release a granted (or cancel a queued) request."""
        self._account()
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                raise SimError("release() of a request not held or queued")

    @property
    def count(self) -> int:
        """Number of servers currently in use."""
        return len(self.users)

    @property
    def queued(self) -> int:
        return len(self.queue)

    def utilization(self) -> float:
        """Time-averaged busy-server fraction since simulator start."""
        self._account()
        elapsed = self.sim.now
        return self._busy_area / (elapsed * self.capacity) if elapsed else 0.0

    def mean_queue_length(self) -> float:
        """Time-averaged queue length since simulator start."""
        self._account()
        elapsed = self.sim.now
        return self._queue_area / elapsed if elapsed else 0.0

    # -- internals ----------------------------------------------------------

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def _account(self) -> None:
        dt = self.sim.now - self._last_stamp
        if dt > 0:
            self._busy_area += dt * len(self.users)
            self._queue_area += dt * len(self.queue)
            self._last_stamp = self.sim.now


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (immediately if available)."""
        evt = Event(self.sim)
        if self.items:
            evt.succeed(self.items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def __len__(self) -> int:
        return len(self.items)
