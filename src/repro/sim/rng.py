"""Named, reproducible random streams.

Every stochastic component asks the factory for a stream keyed by a stable
name (``("noise", node_id, core_id)``).  Streams are independent PCG64
generators derived from the root seed, so adding a component never perturbs
the draws of another — runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Key = Union[str, int]


class RngFactory:
    """Derives independent ``numpy`` generators from a root seed."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def stream(self, *key: Key) -> np.random.Generator:
        """A generator unique to ``key`` (stable across runs and platforms)."""
        digest = hashlib.sha256(
            repr((self.root_seed,) + tuple(key)).encode()).digest()
        seed_words = np.frombuffer(digest[:16], dtype=np.uint32)
        return np.random.default_rng(np.random.SeedSequence(seed_words.tolist()))

    def spawn(self, *key: Key) -> "RngFactory":
        """A sub-factory whose streams are disjoint from this factory's."""
        digest = hashlib.sha256(
            repr(("spawn", self.root_seed) + tuple(key)).encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))
