"""Lightweight counters and accumulators for simulation statistics.

The tracer is the one sink every layer reports into: syscall timings for the
kernel profiler (Figures 8-9), MPI per-call times for ``I_MPI_STATS``
(Table 1), SDMA descriptor counts for Figure 4 validation, and so on.
Recording is cheap (dict update) and can be disabled wholesale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Accumulator:
    """Streaming count/sum/min/max of a scalar series."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self, count: int = 0, total: float = 0.0,
                 min: float = float("inf"), max: float = float("-inf")):
        self.count = count
        self.total = total
        self.min = min
        self.max = max

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Accumulator):
            return NotImplemented
        return (self.count, self.total, self.min, self.max) == \
            (other.count, other.total, other.min, other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Accumulator(count={self.count}, total={self.total}, "
                f"min={self.min}, max={self.max})")

    def add(self, value: float) -> None:
        """Fold one value into the running statistics."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Tracer:
    """Named counters, accumulators and optional (time, value) series."""

    __slots__ = ("enabled", "keep_series", "counters", "accs", "series")

    def __init__(self, enabled: bool = True, keep_series: bool = False,
                 counters: Optional[Dict[str, int]] = None,
                 accs: Optional[Dict[str, Accumulator]] = None,
                 series: Optional[Dict[str, List[Tuple[float, float]]]] = None):
        self.enabled = enabled
        self.keep_series = keep_series
        self.counters: Dict[str, int] = {} if counters is None else counters
        self.accs: Dict[str, Accumulator] = {} if accs is None else accs
        self.series: Dict[str, List[Tuple[float, float]]] = \
            {} if series is None else series

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def record(self, name: str, value: float, t: Optional[float] = None) -> None:
        """Add a value to a named accumulator (and optional series)."""
        if not self.enabled:
            return
        acc = self.accs.get(name)
        if acc is None:
            acc = self.accs[name] = Accumulator()
        acc.add(value)
        if self.keep_series and t is not None:
            self.series.setdefault(name, []).append((t, value))

    def get_count(self, name: str) -> int:
        """Current value of a counter (0 if unused)."""
        return self.counters.get(name, 0)

    def get_total(self, name: str) -> float:
        """Sum recorded under a name (0 if unused)."""
        acc = self.accs.get(name)
        return acc.total if acc else 0.0

    def get_mean(self, name: str) -> float:
        """Mean recorded under a name (0 if unused)."""
        acc = self.accs.get(name)
        return acc.mean if acc else 0.0

    def totals(self, prefix: str = "") -> Dict[str, float]:
        """``{name: total}`` for all accumulators matching ``prefix``."""
        return {name: acc.total for name, acc in self.accs.items()
                if name.startswith(prefix)}

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's statistics into this one."""
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, acc in other.accs.items():
            mine = self.accs.get(name)
            if mine is None:
                mine = self.accs[name] = Accumulator()
            mine.count += acc.count
            mine.total += acc.total
            mine.min = min(mine.min, acc.min)
            mine.max = max(mine.max, acc.max)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Flat report suitable for printing or assertions."""
        out: Dict[str, Dict[str, float]] = {}
        for name, n in sorted(self.counters.items()):
            out[name] = {"count": float(n)}
        for name, acc in sorted(self.accs.items()):
            out[name] = {"count": float(acc.count), "total": acc.total,
                         "mean": acc.mean, "min": acc.min, "max": acc.max}
        return out
