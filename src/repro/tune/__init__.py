"""PicoTune: design-space exploration over the detailed simulator.

The repo's ablation axes (SDMA engine count, PIO/SDMA threshold,
descriptor cap, TID window, offload batch size, OS cores, OS config)
become a typed :class:`~repro.tune.space.ParamSpace`; the simulator
becomes a gym-like environment (:class:`~repro.tune.env.PicoEnv`)
whose ``evaluate(point, seed)`` returns scalar+vector
:class:`~repro.tune.env.Fitness`; pluggable seed-deterministic search
(:mod:`repro.tune.search`) drives it through a sharded
``multiprocessing`` runner (:mod:`repro.tune.runner`) whose merged
results are bit-identical to a serial run, backed by a resumable
on-disk cache (:mod:`repro.tune.cache`) keyed on
(params, seed, workload, code-version).

This is the ArchGym pattern over the PicoDriver reproduction: the
"millions of scenarios" workload that justifies the sweep runner, and
the source of the repo's tracked perf trajectory
(``BENCH_PICOTUNE.json``).  See DESIGN.md section 15.
"""

from .cache import CacheEntryError, CacheError, ResultsCache, code_fingerprint
from .env import EnvConfig, EvalJob, EvalProbe, Fitness, PicoEnv, evaluate_job
from .runner import CampaignResult, Trial, map_shards, run_campaign
from .search import (BayesLite, EvolutionarySearch, GridSearch, RandomSearch,
                     SearchError, SearchStrategy, make_search)
from .space import Axis, Design, ParamSpace, SpaceError, default_space

__all__ = [
    "Axis",
    "BayesLite",
    "CacheEntryError",
    "CacheError",
    "CampaignResult",
    "Design",
    "EnvConfig",
    "EvalJob",
    "EvalProbe",
    "EvolutionarySearch",
    "Fitness",
    "GridSearch",
    "ParamSpace",
    "PicoEnv",
    "RandomSearch",
    "ResultsCache",
    "SearchError",
    "SearchStrategy",
    "SpaceError",
    "Trial",
    "code_fingerprint",
    "default_space",
    "evaluate_job",
    "make_search",
    "map_shards",
    "run_campaign",
]
