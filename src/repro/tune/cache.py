"""The resumable on-disk results cache.

JSONL format: a header line carrying a magic string and the code
fingerprint, then one entry per completed evaluation keyed on
``sha256(point, seed, workload, env config)``.  Appends are flushed
per entry, so an interrupted campaign resumes from its last completed
evaluation.

Recovery posture: a corrupted or stale *entry* is never fatal — it is
recorded as a typed :class:`CacheEntryError` on ``cache.errors`` and
the point is simply re-evaluated (the gem5-reproducibility posture:
the artifact store must fail soft).  A cache written by a *different
code version* (fingerprint mismatch) is ignored wholesale: simulator
results are only reusable against the exact code that produced them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError


class CacheError(ReproError):
    """Raised for unusable cache files (unreadable header, bad magic)."""


class CacheEntryError(CacheError):
    """One damaged or stale cache entry (recorded, never raised across
    a campaign: the affected point is re-evaluated)."""


#: format magic: bump on any incompatible layout change
MAGIC = "picotune-cache/1"

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """A stable digest of every ``repro`` source file.

    Cache entries are only valid against the exact simulator code that
    produced them; this fingerprint (sha256 over sorted relative paths
    and per-file content digests) is the "code-version" component of
    the cache key.  Computed once per process.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        entries: List[Tuple[str, str]] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, "rb") as fh:
                    file_digest = hashlib.sha256(fh.read()).hexdigest()
                entries.append((os.path.relpath(path, root), file_digest))
        for rel, file_digest in sorted(entries):
            digest.update(rel.encode())
            digest.update(file_digest.encode())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def entry_key(point: Tuple[Tuple[str, object], ...], seed: int,
              workload: str, config: Dict[str, object]) -> str:
    """The cache key of one evaluation: sha256 over the canonical
    JSON of (point, seed, workload, env config)."""
    payload = json.dumps([list(list(kv) for kv in point), seed, workload,
                          config], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultsCache:
    """A JSONL store of completed evaluations, resumable across runs."""

    def __init__(self, path: str, fingerprint: Optional[str] = None,
                 resume: bool = False):
        self.path = path
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self._entries: Dict[str, Dict[str, object]] = {}
        #: typed errors from damaged/stale entries seen during load
        self.errors: List[CacheEntryError] = []
        self.hits = 0
        self.misses = 0
        self._fh = None
        if resume and os.path.exists(path):
            self._load()
        self._open()

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
            magic = header["magic"]
            version = header["version"]
        except (json.JSONDecodeError, KeyError, TypeError):
            self.errors.append(CacheEntryError(
                f"{self.path}: unreadable header; starting fresh"))
            return
        if magic != MAGIC:
            self.errors.append(CacheEntryError(
                f"{self.path}: bad magic {magic!r}; starting fresh"))
            return
        if version != self.fingerprint:
            self.errors.append(CacheEntryError(
                f"{self.path}: written by code version {version}, "
                f"current is {self.fingerprint}; entries ignored"))
            return
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                float(entry["fitness"]["scalar"])  # shape check
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                self.errors.append(CacheEntryError(
                    f"{self.path}:{lineno}: damaged entry "
                    f"({type(exc).__name__}); will re-evaluate"))
                continue
            self._entries[key] = entry

    def _open(self) -> None:
        # rewrite the whole file: header plus every loaded-good entry,
        # so damaged lines do not survive a resume
        self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(json.dumps(
            {"magic": MAGIC, "version": self.fingerprint}) + "\n")
        for entry in self._entries.values():
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the backing file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultsCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- lookups ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored fitness dict for ``key``, or ``None`` (counts
        toward the hit/miss statistics)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["fitness"]

    def put(self, key: str, fitness: Dict[str, object],
            meta: Optional[Dict[str, object]] = None) -> None:
        """Store one completed evaluation (append + flush)."""
        entry: Dict[str, object] = {"key": key, "fitness": fitness}
        if meta:
            entry["meta"] = meta
        self._entries[key] = entry
        if self._fh is not None:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
