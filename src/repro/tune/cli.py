"""``python -m repro tune`` — run an exploration campaign.

    python -m repro tune pingpong --smoke
    python -m repro tune chaos --search evolution --budget 32 --workers 4
    python -m repro tune synthetic --search bayes --budget 64 --resume

Smoke mode trims the evaluation sizes and defaults to a small
multi-process campaign (budget 8, batch 4, 2 workers).  ``--resume``
reloads the on-disk cache so completed points are answered without
re-simulating; without it the cache starts fresh.
"""

from __future__ import annotations

import os
from typing import List, Optional

from .cache import ResultsCache
from .env import WORKLOADS, EnvConfig
from .report import (bench_payload, measure_fig4_baseline, render_report,
                     write_bench)
from .runner import run_campaign
from .search import STRATEGIES

USAGE = ("usage: python -m repro tune <workload> [--search NAME] "
         "[--budget N] [--batch N] [--workers N] [--seed N] [--smoke] "
         "[--resume] [--cache PATH] [--out PATH] [--baseline-fig4]\n"
         f"workloads: {', '.join(sorted(WORKLOADS))}; "
         f"searches: {', '.join(sorted(STRATEGIES))}")


def _int_opt(argv: List[str], name: str) -> Optional[int]:
    """Pop ``name <value>`` from ``argv``; None when absent."""
    if name not in argv:
        return None
    i = argv.index(name)
    if i + 1 >= len(argv):
        raise ValueError(f"{name} needs a value")
    value = int(argv[i + 1])
    del argv[i:i + 2]
    return value


def _str_opt(argv: List[str], name: str) -> Optional[str]:
    """Pop ``name <value>`` from ``argv``; None when absent."""
    if name not in argv:
        return None
    i = argv.index(name)
    if i + 1 >= len(argv):
        raise ValueError(f"{name} needs a value")
    value = argv[i + 1]
    del argv[i:i + 2]
    return value


def cmd_tune(argv: List[str]) -> int:
    """Entry point for ``python -m repro tune ...``."""
    argv = list(argv)
    smoke = "--smoke" in argv
    resume = "--resume" in argv
    baseline_fig4 = "--baseline-fig4" in argv
    argv = [a for a in argv
            if a not in ("--smoke", "--resume", "--baseline-fig4")]
    try:
        search = _str_opt(argv, "--search") or "random"
        budget = _int_opt(argv, "--budget")
        batch = _int_opt(argv, "--batch")
        workers = _int_opt(argv, "--workers")
        seed = _int_opt(argv, "--seed")
        cache_path = _str_opt(argv, "--cache")
        out = _str_opt(argv, "--out") or "BENCH_TUNE.json"
    except ValueError as exc:
        print(f"{exc}\n{USAGE}")
        return 2
    unknown = [a for a in argv if a.startswith("-")]
    if unknown:
        print(f"unknown option(s) {', '.join(unknown)}\n{USAGE}")
        return 2
    workload = argv[0] if argv else "pingpong"
    if workload not in WORKLOADS:
        print(f"unknown tune workload {workload!r}\n{USAGE}")
        return 2
    if search not in STRATEGIES:
        print(f"unknown search strategy {search!r}\n{USAGE}")
        return 2
    seed = seed if seed is not None else 20180611
    budget = budget if budget is not None else (8 if smoke else 24)
    batch = batch if batch is not None else 4
    workers = workers if workers is not None else (2 if smoke else 1)
    env_config = EnvConfig.smoke() if smoke else EnvConfig()
    if cache_path is None:
        cache_path = os.path.join(
            ".picotune", f"{workload}-{search}-{seed}.jsonl")
    os.makedirs(os.path.dirname(cache_path) or ".", exist_ok=True)
    with ResultsCache(cache_path, resume=resume) as cache:
        for err in cache.errors:
            print(f"cache: {err}")
        result = run_campaign(workload, search=search, budget=budget,
                              batch=batch, seed=seed, workers=workers,
                              cache=cache, env_config=env_config,
                              log=print)
    print()
    print(render_report(result))
    baselines = [measure_fig4_baseline()] if baseline_fig4 else []
    write_bench(out, bench_payload(result, baselines=baselines))
    print(f"\nwrote {out} (cache: {cache_path}, "
          f"{result.cache_hits} hits / {result.evaluations_run} evaluated)")
    return 0
