"""The gym-like environment: ``evaluate(point, seed) -> Fitness``.

:class:`PicoEnv` wraps the repo's detailed-simulator workloads —
fig4-style ping-pong bandwidth, the chaos goodput-under-faults cell,
the replicated-storage cell — into one scalar-plus-vector fitness
surface over a :class:`~repro.tune.space.ParamSpace`.  Every
evaluation builds fresh machines from the materialized design, so an
evaluation is a pure function of ``(point, seed, workload config)``:
that purity is what lets the sharded runner promise bit-identical
parallel/serial results and the cache reuse entries across campaigns.

A ``synthetic`` workload (a closed-form deterministic landscape over
the encoded vector, no simulator) keeps search/runner/cache tests
fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..config import enable_tune_probe
from ..errors import ReproError
from ..sim import RngFactory
from ..units import KiB, MiB
from .space import ParamSpace, default_space


class EnvError(ReproError):
    """Raised for unknown workloads or malformed evaluation requests."""


@dataclass(frozen=True)
class EnvConfig:
    """Per-workload evaluation sizes (kept small: fitness shape, not
    absolute figures, drives the search)."""

    #: ping-pong message sizes; the largest one's bandwidth is the scalar
    pingpong_sizes: Tuple[int, ...] = (16 * KiB, 256 * KiB, 1 * MiB)
    pingpong_repetitions: int = 2
    #: uniform fault rate and message count of the chaos cell
    chaos_rate: float = 0.01
    chaos_messages: int = 12
    #: storage cell: uniform fault rate, write count, replica count
    storage_rate: float = 0.01
    storage_writes: int = 12
    storage_replicas: int = 3

    @classmethod
    def smoke(cls) -> "EnvConfig":
        """The trimmed CI configuration (one rep, fewer messages)."""
        return cls(pingpong_sizes=(16 * KiB, 256 * KiB),
                   pingpong_repetitions=1, chaos_messages=6,
                   storage_writes=6)

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable form (part of the cache key)."""
        return {"pingpong_sizes": list(self.pingpong_sizes),
                "pingpong_repetitions": self.pingpong_repetitions,
                "chaos_rate": self.chaos_rate,
                "chaos_messages": self.chaos_messages,
                "storage_rate": self.storage_rate,
                "storage_writes": self.storage_writes,
                "storage_replicas": self.storage_replicas}


@dataclass(frozen=True)
class Fitness:
    """One evaluation's outcome: a scalar to maximize plus the vector
    of named metrics behind it (and any contract violations, which
    zero the scalar)."""

    scalar: float
    metrics: Tuple[Tuple[str, float], ...] = ()
    violations: Tuple[str, ...] = ()

    def metric(self, name: str) -> float:
        """The named metric (KeyError if absent)."""
        for key, value in self.metrics:
            if key == name:
                return value
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable form (the cache-entry payload)."""
        return {"scalar": self.scalar,
                "metrics": {k: v for k, v in self.metrics},
                "violations": list(self.violations)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fitness":
        """Invert :meth:`to_dict` (cache loads)."""
        return cls(scalar=float(data["scalar"]),
                   metrics=tuple(sorted(
                       (str(k), float(v))
                       for k, v in dict(data["metrics"]).items())),
                   violations=tuple(str(v) for v in data["violations"]))


@dataclass
class EvalProbe:
    """The config-gated machine observer (see lint rule PD016).

    Installed via :func:`repro.config.enable_tune_probe` for the
    duration of one evaluation; :class:`~repro.experiments.common.
    Machine` calls :meth:`on_machine_built` at the end of
    construction, letting the environment count machines and nodes
    without the experiments layer importing anything from tune.
    """

    machines_built: int = 0
    nodes_built: int = 0
    os_configs: List[str] = field(default_factory=list)

    def on_machine_built(self, machine) -> None:
        """Record one fully-constructed machine."""
        self.machines_built += 1
        self.nodes_built += len(machine.nodes)
        self.os_configs.append(machine.os_config.value)


class PicoEnv:
    """The environment: a workload, its config, and the design space."""

    def __init__(self, workload: str, config: Optional[EnvConfig] = None,
                 space: Optional[ParamSpace] = None):
        if workload not in WORKLOADS:
            raise EnvError(f"unknown tune workload {workload!r}; choose "
                           f"from {', '.join(sorted(WORKLOADS))}")
        self.workload = workload
        self.config = config if config is not None else EnvConfig()
        self.space = space if space is not None else default_space()

    def evaluate(self, point: Dict[str, object], seed: int) -> Fitness:
        """Evaluate one design point under one seed.

        Builds the design's machines behind a freshly-installed
        :class:`EvalProbe` (removed again in ``finally``, so nothing
        leaks into later unrelated runs) and returns the workload's
        :class:`Fitness`.
        """
        self.space.validate(point)
        probe = EvalProbe()
        enable_tune_probe(probe)
        try:
            fitness = WORKLOADS[self.workload](self, point, seed)
        finally:
            enable_tune_probe(None)
        if probe.machines_built:
            fitness = replace(fitness, metrics=fitness.metrics + (
                ("machines", float(probe.machines_built)),
                ("nodes", float(probe.nodes_built))))
        return fitness


# -- workloads ---------------------------------------------------------------

def _eval_pingpong(env: PicoEnv, point: Dict[str, object],
                   seed: int) -> Fitness:
    """Fig4-style two-node ping-pong: scalar is the largest-size
    bandwidth; metrics carry the whole curve plus the smallest-size
    one-way latency."""
    from ..apps.imb import PingPong
    from ..experiments.common import build_machine
    cfg = env.config
    design = env.space.materialize(point, seed=seed)
    machine = build_machine(2, design.os_config, params=design.params)
    bandwidth = PingPong(machine, repetitions=cfg.pingpong_repetitions,
                         warmup=1).run(cfg.pingpong_sizes)
    sizes = sorted(bandwidth)
    metrics = [(f"bw_{size}", bandwidth[size]) for size in sizes]
    metrics.append(("latency_small", sizes[0] / bandwidth[sizes[0]]))
    return Fitness(scalar=bandwidth[sizes[-1]],
                   metrics=tuple(sorted(metrics)))


def _eval_chaos(env: PicoEnv, point: Dict[str, object],
                seed: int) -> Fitness:
    """One chaos cell at the configured fault rate: scalar is goodput
    of intact delivery, zeroed on any integrity violation."""
    from ..experiments.chaos import _run_cell
    cfg = env.config
    design = env.space.materialize(point, seed=seed)
    cell = _run_cell(design.os_config, cfg.chaos_rate, cfg.chaos_messages,
                     params=design.params)
    metrics = (("delivered", float(cell.delivered)),
               ("failed_typed", float(cell.failed_typed)),
               ("goodput", cell.goodput))
    scalar = 0.0 if cell.violations else cell.goodput
    return Fitness(scalar=scalar, metrics=tuple(sorted(metrics)),
                   violations=tuple(cell.violations))


def _eval_storage(env: PicoEnv, point: Dict[str, object],
                  seed: int) -> Fitness:
    """One replicated-storage cell: scalar is acked-write goodput,
    zeroed on any contract violation."""
    from ..experiments.storage import _run_cell
    cfg = env.config
    design = env.space.materialize(point, seed=seed)
    params = design.params.with_overrides(
        blk=replace(design.params.blk, replicas=cfg.storage_replicas))
    cell = _run_cell(design.os_config, cfg.storage_rate,
                     cfg.storage_writes, params=params)
    metrics = (("acked", float(cell.acked)),
               ("failed_typed", float(cell.failed_typed)),
               ("goodput", cell.goodput))
    scalar = 0.0 if cell.violations else cell.goodput
    return Fitness(scalar=scalar, metrics=tuple(sorted(metrics)),
                   violations=tuple(cell.violations))


def _eval_synthetic(env: PicoEnv, point: Dict[str, object],
                    seed: int) -> Fitness:
    """A closed-form landscape over the encoded vector (no simulator):
    per-axis quadratic bowls with a deterministic seed-keyed jitter.
    Exists so search/runner/cache tests run in milliseconds."""
    vector = env.space.encode(point)
    value = 0.0
    for axis, idx in zip(env.space.axes, vector):
        span = max(len(axis.values) - 1, 1)
        # bowl peaking at the middle of each axis
        x = idx / span
        value += 1.0 - (2.0 * x - 1.0) ** 2
    rng = RngFactory(seed).stream("tune", "synthetic", *vector)
    jitter = float(rng.normal(0.0, 0.01))
    return Fitness(scalar=value + jitter,
                   metrics=(("jitter", jitter), ("landscape", value)))


#: workload registry: name -> (env, point, seed) -> Fitness
WORKLOADS = {"pingpong": _eval_pingpong, "chaos": _eval_chaos,
             "storage": _eval_storage, "synthetic": _eval_synthetic}


# -- the picklable shard-job form --------------------------------------------

@dataclass(frozen=True)
class EvalJob:
    """One evaluation request in its process-portable form: the
    canonical point tuple plus everything needed to rebuild the
    environment in a worker (the default space is implied)."""

    index: int
    point: Tuple[Tuple[str, object], ...]
    seed: int
    workload: str
    config: EnvConfig


def evaluate_job(job: EvalJob) -> Tuple[int, Fitness]:
    """Run one :class:`EvalJob` (the shard runner's map function).

    Rebuilds a :class:`PicoEnv` over the default space in whatever
    process this lands in; returns ``(index, fitness)`` so merged
    results can be reassembled in submission order.
    """
    env = PicoEnv(job.workload, config=job.config)
    return job.index, env.evaluate(dict(job.point), job.seed)
