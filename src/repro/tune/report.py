"""Trajectory/best-fitness reporting and the ``BENCH_TUNE.json`` artifact.

The JSON schema (``picotune/1``, documented in EXPERIMENTS.md) is the
repo's tracked perf trajectory: every later PR can regenerate the
deterministic smoke campaign and the fig4 wall-clock baseline and diff
them against the committed ``BENCH_PICOTUNE.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from .cache import code_fingerprint
from .runner import CampaignResult

#: artifact schema version: bump on any incompatible payload change
SCHEMA = "picotune/1"


def render_report(result: CampaignResult) -> str:
    """Human-readable campaign report: header, trajectory, best point."""
    lines = [f"PicoTune campaign: workload={result.workload} "
             f"search={result.search} budget={result.budget} "
             f"seed={result.seed} workers={result.workers}",
             f"  {result.evaluations_run} evaluated, "
             f"{result.cache_hits} from cache, "
             f"{result.wall_seconds:.2f}s wall",
             "", "trial  scalar      best-so-far  cached  point"]
    trajectory = result.trajectory
    for t, best in zip(result.trials, trajectory):
        point = ", ".join(f"{k}={v}" for k, v in t.point)
        lines.append(f"{t.index:>5}  {t.fitness.scalar:>10.4g}  "
                     f"{best:>11.4g}  {'yes' if t.cached else 'no':>6}  "
                     f"{point}")
    best = result.best
    lines.append("")
    lines.append(f"best: trial {best.index}, scalar "
                 f"{best.fitness.scalar:.6g}")
    for name, value in best.fitness.metrics:
        lines.append(f"  {name} = {value:.6g}")
    for k, v in best.point:
        lines.append(f"  point.{k} = {v}")
    if best.fitness.violations:
        lines.append(f"  violations: {len(best.fitness.violations)}")
    return "\n".join(lines)


def bench_payload(result: CampaignResult,
                  baselines: Optional[List[Dict[str, object]]] = None) \
        -> Dict[str, object]:
    """The ``picotune/1`` artifact: campaign summary + trajectory +
    wall-clock baselines, JSON-stable for committing and diffing."""
    best = result.best
    return {
        "schema": SCHEMA,
        "code_version": code_fingerprint(),
        "campaign": {
            "workload": result.workload,
            "search": result.search,
            "budget": result.budget,
            "seed": result.seed,
            "workers": result.workers,
            "evaluations_run": result.evaluations_run,
            "cache_hits": result.cache_hits,
        },
        "best": {
            "trial": best.index,
            "scalar": best.fitness.scalar,
            "point": {k: v for k, v in best.point},
            "metrics": {k: v for k, v in best.fitness.metrics},
        },
        "trajectory": result.trajectory,
        "scalars": [t.fitness.scalar for t in result.trials],
        "baselines": baselines if baselines is not None else [],
    }


def write_bench(path: str, payload: Dict[str, object]) -> None:
    """Write the artifact (sorted keys, trailing newline) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def measure_fig4_baseline(repeats: int = 2) -> Dict[str, object]:
    """Best-of-``repeats`` wall clock of one small fig4 regeneration —
    the perf-trajectory entry every PR can compare against.

    Wall seconds vary per machine; the entry also carries the exact
    workload shape so trend comparisons stay apples-to-apples.
    """
    from ..experiments.fig4 import run_fig4
    from ..units import KiB
    sizes = (16 * KiB, 256 * KiB)
    run_fig4(sizes=sizes, repetitions=1)  # warm imports/caches
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run_fig4(sizes=sizes, repetitions=1)
        best = min(best, time.perf_counter() - t0)
    return {"name": "fig4_small_wall_seconds", "value": round(best, 4),
            "sizes": list(sizes), "repetitions": 1, "best_of": repeats}
